//! The `mssp` command-line tool: assemble, inspect, profile, distill and
//! execute programs for the MSSP ISA from the shell.
//!
//! ```text
//! mssp workloads                         list bundled benchmarks
//! mssp asm <file.s>                      assemble + disassemble a source file
//! mssp run <file.s|workload> [scale] [--stats] [--no-predictor] [--adaptive]
//!                                        sequential execution
//!                                        (--stats: also run the threaded
//!                                        executor and report the O(delta)
//!                                        verify/commit counters, the
//!                                        per-cause squash histogram and
//!                                        the live-in predictor counters;
//!                                        --no-predictor: disable live-in
//!                                        value prediction in that run;
//!                                        --adaptive: arm the online
//!                                        re-distillation controller in the
//!                                        threaded run and report its
//!                                        recompile/hot-swap counters)
//! mssp profile <file.s|workload>         dynamic profile summary
//! mssp distill <file.s|workload> [--stats] [--tier fast|full]
//!                                        show distillation at all levels
//!                                        (--stats: per-pass pipeline deltas;
//!                                        --tier: run the named recompilation
//!                                        tier's pass pipeline instead —
//!                                        `fast` is liveness DCE only, `full`
//!                                        the complete optimizing pipeline)
//! mssp lint <file.s|workload|all> [--json]
//!                                        statically check distilled output
//! mssp exec <file.s|workload> [slaves]   full MSSP timing run vs baseline
//! ```
//!
//! `lint` exits non-zero if any error-severity finding is reported;
//! `lint all` checks every bundled workload.

use std::process::ExitCode;

use mssp::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(),
        Some("asm") => with_arg(&args, cmd_asm),
        Some("run") => with_arg(&args, |t| {
            cmd_run(
                t,
                scale_arg(&args),
                args.iter().any(|a| a == "--stats"),
                args.iter().any(|a| a == "--no-predictor"),
                args.iter().any(|a| a == "--adaptive"),
            )
        }),
        Some("profile") => with_arg(&args, cmd_profile),
        Some("distill") => with_arg(&args, |t| {
            cmd_distill(
                t,
                args.iter().any(|a| a == "--stats"),
                flag_value(&args, "--tier"),
            )
        }),
        Some("lint") => with_arg(&args, |t| cmd_lint(t, args.iter().any(|a| a == "--json"))),
        Some("exec") => with_arg(&args, |t| cmd_exec(t, scale_arg(&args))),
        _ => {
            eprintln!(
                "usage: mssp <workloads|asm|run|profile|distill|lint|exec> [target] [n] [--json|--stats|--no-predictor|--adaptive|--tier fast|full]\n\
                 target: an .s file or a bundled workload name (`lint` also accepts `all`)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn with_arg(args: &[String], f: impl FnOnce(&str) -> Result<(), String>) -> Result<(), String> {
    match args.get(1) {
        Some(target) => f(target),
        None => Err("missing target argument".into()),
    }
}

fn scale_arg(args: &[String]) -> Option<u64> {
    args.get(2).and_then(|s| s.parse().ok())
}

/// The value following a `--flag VALUE` pair, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Loads a program from an assembly file or a bundled workload name.
fn load(target: &str, scale: Option<u64>) -> Result<Program, String> {
    if let Some(w) = Workload::by_name(target) {
        return Ok(w.program(scale.unwrap_or(w.default_scale)));
    }
    let src = std::fs::read_to_string(target)
        .map_err(|e| format!("cannot read `{target}`: {e} (and no workload has that name)"))?;
    assemble(&src).map_err(|errs| {
        errs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn cmd_workloads() -> Result<(), String> {
    println!(
        "{:<14} {:<12} {:>10}  description",
        "name", "analog", "scale"
    );
    for w in workloads() {
        println!(
            "{:<14} {:<12} {:>10}  {}",
            w.name, w.analog, w.default_scale, w.description
        );
    }
    Ok(())
}

fn cmd_asm(target: &str) -> Result<(), String> {
    let p = load(target, None)?;
    println!(
        "; {} instructions, entry {:#x}, data {} bytes at {:#x}",
        p.len(),
        p.entry(),
        p.data().len(),
        p.data_base()
    );
    print!("{}", p.disassemble());
    Ok(())
}

fn cmd_run(
    target: &str,
    scale: Option<u64>,
    stats: bool,
    no_predictor: bool,
    adaptive: bool,
) -> Result<(), String> {
    let p = load(target, scale)?;
    let mut m = SeqMachine::boot(&p);
    let summary = m.run(u64::MAX).map_err(|e| e.to_string())?;
    println!("instructions: {}", summary.instructions);
    println!("checksum(s1): {:#x}", m.state().reg(Reg::S1));
    println!("final pc:     {:#x}", m.state().pc());
    if stats || adaptive {
        // Re-run under the threaded executor and report the O(delta)
        // verify/commit counters: how much of the memoization test the
        // coordinator actually performed, and how architected snapshots
        // were published to workers.
        let prof = Profile::collect(&p, u64::MAX).map_err(|e| e.to_string())?;
        let d = distill(&p, &prof, &DistillConfig::default()).map_err(|e| e.to_string())?;
        let engine_config = EngineConfig {
            enable_predictor: !no_predictor,
            ..EngineConfig::default()
        };
        let run = if adaptive {
            // Arm the online controller: divergence from the training
            // profile triggers a lint-gated re-distillation and an epoch
            // hot-swap at the next task boundary.
            let ctl = AdaptiveController::new(AdaptiveConfig::default(), &d, &prof);
            let program = p.clone();
            let dcfg = DistillConfig::default();
            let lcfg = LintConfig::default();
            let boundaries = d.boundaries().clone();
            let crossings = d.crossings_per_task().max(1);
            let rec: Recompiler = Box::new(move |profile, tier| {
                redistill_validated(
                    &program,
                    profile,
                    &dcfg,
                    tier,
                    &boundaries,
                    crossings,
                    &lcfg,
                )
                .map_err(|e| e.to_string())
            });
            run_threaded_adaptive(&p, &d, engine_config, ctl, rec, false)
                .map_err(|e| e.to_string())?
        } else {
            run_threaded(&p, &d, engine_config).map_err(|e| e.to_string())?
        };
        if run.state.reg(Reg::S1) != m.state().reg(Reg::S1) {
            return Err("threaded checksum mismatch — correctness bug".into());
        }
        let s = &run.stats;
        println!("threaded verify/commit ({:?} wall-clock):", run.elapsed);
        println!(
            "  tasks: {} spawned, {} committed, {} pre-verified ({:.1}%)",
            s.spawned_tasks,
            s.committed_tasks,
            s.pre_verified_tasks,
            if s.committed_tasks == 0 {
                0.0
            } else {
                100.0 * s.pre_verified_tasks as f64 / s.committed_tasks as f64
            }
        );
        println!(
            "  live-ins: {} re-checked, {} skipped (re-check ratio {:.3})",
            s.live_ins_rechecked,
            s.live_ins_skipped,
            s.recheck_ratio()
        );
        println!(
            "  snapshots: {} materialized, {} incremental deltas published",
            s.snapshots_materialized, s.deltas_published
        );
        println!(
            "  squashes: {} wrong-path, {} live-in ({} predicted / {} stale), \
             {} overrun, {} fault",
            s.squashes_wrong_path,
            s.squashes_live_in,
            s.squashes_live_in_predicted,
            s.squashes_live_in_stale,
            s.squashes_overrun,
            s.squashes_fault
        );
        println!(
            "  predictor: {} overrides, {} hits, {} misses (accuracy {:.3}); \
             {} spawn vetoes",
            s.predictor_overrides,
            s.predictor_hits,
            s.predictor_misses,
            s.predictor_accuracy(),
            s.spawn_vetoes
        );
        if let Some(report) = &run.adaptive {
            println!(
                "  adaptive: {} fast / {} full recompiles, {} hot-swaps \
                 ({} tasks abandoned), {} failures, {} rejected",
                s.recompilations_fast,
                s.recompilations_full,
                s.swaps_installed,
                s.swap_abandoned_tasks,
                report.recompile_failures,
                report.candidates_rejected
            );
            println!(
                "  adaptive: {} windows observed, {} divergent",
                report.windows, report.divergent_windows
            );
            for marker in &report.swaps {
                println!(
                    "    swap {:?} at task {} ({} us recompile+validate)",
                    marker.tier, marker.at_committed_tasks, marker.latency_micros
                );
            }
        }
    }
    Ok(())
}

fn cmd_profile(target: &str) -> Result<(), String> {
    let p = load(target, None)?;
    let prof = Profile::collect(&p, u64::MAX).map_err(|e| e.to_string())?;
    let n = prof.dynamic_instructions();
    println!("dynamic instructions: {n}");
    println!(
        "loads/stores/branches: {} / {} / {}",
        prof.loads(),
        prof.stores(),
        prof.dynamic_branches()
    );
    println!(
        "weighted branch bias: {:.4}",
        prof.weighted_branch_bias().unwrap_or(0.0)
    );
    let mut branches: Vec<_> = prof.iter_branches().collect();
    branches.sort_by_key(|(_, c)| std::cmp::Reverse(c.total()));
    println!("hottest branches:");
    for (pc, c) in branches.iter().take(10) {
        println!(
            "  {:#08x}: {:>9} execs, bias {:.4} ({})",
            pc,
            c.total(),
            c.bias().unwrap_or(0.0),
            if c.mostly_taken() {
                "taken"
            } else {
                "not taken"
            }
        );
    }
    Ok(())
}

fn cmd_distill(target: &str, stats: bool, tier: Option<String>) -> Result<(), String> {
    let p = load(target, None)?;
    let prof = Profile::collect(&p, u64::MAX).map_err(|e| e.to_string())?;
    if let Some(name) = tier {
        // Show the named recompilation tier — the pass budget the online
        // adaptive controller uses for hot-swap candidates.
        let tier: Tier = name.parse()?;
        let d = distill(&p, &prof, &tier.apply(&DistillConfig::default()))
            .map_err(|e| e.to_string())?;
        let s = d.stats();
        println!(
            "tier {tier:<8} static {:>4} -> {:>4} | asserted {:>2} | blocks -{:>2} | dce {:>3} | stores -{:>2} | boundaries {} x{}",
            s.original_static,
            s.distilled_static,
            s.asserted_branches,
            s.removed_blocks,
            s.dce_removed,
            s.stores_elided,
            d.boundaries().len(),
            d.crossings_per_task(),
        );
        return Ok(());
    }
    for level in DistillLevel::all() {
        let d = distill(&p, &prof, &DistillConfig::at_level(level)).map_err(|e| e.to_string())?;
        let s = d.stats();
        println!(
            "{level:<13} static {:>4} -> {:>4} | asserted {:>2} | blocks -{:>2} | dce {:>3} | stores -{:>2} | boundaries {} x{}",
            s.original_static,
            s.distilled_static,
            s.asserted_branches,
            s.removed_blocks,
            s.dce_removed,
            s.stores_elided,
            d.boundaries().len(),
            d.crossings_per_task(),
        );
        if stats && level == DistillLevel::Aggressive {
            println!("pass pipeline ({level}):");
            for delta in d.pass_trace() {
                let net = delta.after as i64 - delta.before as i64;
                println!(
                    "  iter {}  {:<11} {:>4} -> {:>4}  ({net:+})",
                    delta.iteration, delta.pass, delta.before, delta.after,
                );
            }
            println!(
                "  folded {} (+{} branches), copies {}, threaded {}, iterations {}",
                s.const_folded,
                s.branches_folded,
                s.copies_propagated,
                s.jumps_threaded,
                s.pipeline_iterations,
            );
        }
    }
    Ok(())
}

/// Statically checks the distillation of one target (or, for `all`, of
/// every bundled workload) and reports findings. Error-severity findings
/// fail the command.
fn cmd_lint(target: &str, json: bool) -> Result<(), String> {
    let targets: Vec<String> = if target == "all" {
        workloads().iter().map(|w| w.name.to_string()).collect()
    } else {
        vec![target.to_string()]
    };
    let mut total_errors = 0;
    for t in &targets {
        let p = load(t, None)?;
        let prof = Profile::collect(&p, Profile::UNBOUNDED).map_err(|e| e.to_string())?;
        let d = distill(&p, &prof, &DistillConfig::default()).map_err(|e| e.to_string())?;
        let report = lint(&p, &d, &prof, &LintConfig::default());
        if json {
            println!("{{\"target\":\"{t}\",\"report\":{}}}", report.render_json());
        } else {
            println!("== {t} ==");
            print!("{}", report.render_text());
        }
        total_errors += report.errors();
    }
    if total_errors > 0 {
        return Err(format!(
            "{total_errors} error-severity finding(s) across {} target(s)",
            targets.len()
        ));
    }
    Ok(())
}

fn cmd_exec(target: &str, slaves: Option<u64>) -> Result<(), String> {
    let p = load(target, None)?;
    let prof = Profile::collect(&p, u64::MAX).map_err(|e| e.to_string())?;
    let d = distill(&p, &prof, &DistillConfig::default()).map_err(|e| e.to_string())?;
    let mut cfg = TimingConfig::default();
    if let Some(s) = slaves {
        cfg.engine.num_slaves = s.max(1) as usize;
    }
    let base = run_baseline(&p, &cfg, u64::MAX).map_err(|e| e.to_string())?;
    let mssp = run_mssp(&p, &d, &cfg).map_err(|e| e.to_string())?;
    if base.state.reg(Reg::S1) != mssp.run.state.reg(Reg::S1) {
        return Err("checksum mismatch — correctness bug".into());
    }
    let s = &mssp.run.stats;
    println!(
        "baseline: {:>12} cycles (CPI {:.2})",
        base.cycles,
        base.cpi()
    );
    println!(
        "mssp:     {:>12} cycles with {} slaves  -> speedup {:.3}",
        mssp.run.cycles,
        cfg.engine.num_slaves,
        speedup(base.cycles, mssp.run.cycles)
    );
    println!(
        "tasks: {} spawned, {} committed, {} squash events, {:.1}% recovery",
        s.spawned_tasks,
        s.committed_tasks,
        s.squash_events(),
        100.0 * s.recovery_fraction()
    );
    Ok(())
}
