//! # mssp
//!
//! A from-scratch Rust reproduction of **Master/Slave Speculative
//! Parallelization** (Zilles & Sohi, MICRO 2002): an execution paradigm
//! that runs a sequential program across a chip multiprocessor by letting
//! a fast, *unverified* master core execute an approximate "distilled"
//! program whose state predictions seed speculative tasks on slave cores,
//! with a verify/commit unit that makes the whole machine exactly
//! equivalent to sequential execution.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`isa`] — the 64-bit RISC ISA, assembler and disassembler.
//! * [`machine`] — machine state, partial states (deltas) and the
//!   sequential reference semantics.
//! * [`analysis`] — CFGs, dominators, liveness, dynamic profiles.
//! * [`distill`] — the profile-guided program distiller.
//! * [`lint`] — the static soundness checker for distilled output.
//! * [`core`] — the MSSP engine (tasks, master, verify/commit).
//! * [`sim`] — caches, branch predictors, core latency pipelines.
//! * [`timing`] — the CMP timing model and the baseline uniprocessor.
//! * [`workloads`] — eleven SPECint2000-analog benchmarks.
//! * [`stats`] — statistics and report rendering for the harness.
//!
//! ## Quick start
//!
//! ```
//! use mssp::prelude::*;
//!
//! let w = Workload::by_name("gap_like").unwrap();
//! let program = w.program(2_000);
//! let profile = Profile::collect(&program, u64::MAX).unwrap();
//! let distilled = distill(&program, &profile, &DistillConfig::default()).unwrap();
//!
//! let cfg = TimingConfig::default();
//! let baseline = run_baseline(&program, &cfg, u64::MAX).unwrap();
//! let mssp = run_mssp(&program, &distilled, &cfg).unwrap();
//!
//! // Same architected result, fewer cycles.
//! assert_eq!(
//!     baseline.state.reg(CHECKSUM_REG),
//!     mssp.run.state.reg(CHECKSUM_REG),
//! );
//! ```

#![warn(missing_docs)]

pub use mssp_analysis as analysis;
pub use mssp_core as core;
pub use mssp_distill as distill;
pub use mssp_isa as isa;
pub use mssp_lint as lint;
pub use mssp_machine as machine;
pub use mssp_sim as sim;
pub use mssp_stats as stats;
pub use mssp_timing as timing;
pub use mssp_workloads as workloads;

/// Convenient glob-import surface covering the common workflow:
/// assemble/load → profile → distill → run (functional or timed).
pub mod prelude {
    pub use mssp_analysis::{Cfg, Profile};
    pub use mssp_core::{
        check_refinement, run_threaded, run_threaded_adaptive, AdaptiveConfig, AdaptiveController,
        AdaptiveReport, Engine, EngineConfig, EngineStats, MsspRun, Recompiler, SwapMarker,
        UnitCost,
    };
    pub use mssp_distill::{
        distill, redistill, DistillConfig, DistillLevel, Distilled, PassConfig, PassDelta, Tier,
    };
    pub use mssp_isa::{asm::assemble, Instr, PcSpan, Program, Reg};
    pub use mssp_lint::{
        distill_validated, lint, redistill_validated, LintConfig, LintId, Report, Severity,
    };
    pub use mssp_machine::{Cell, Delta, MachineState, SeqMachine};
    pub use mssp_timing::{run_baseline, run_mssp, speedup, TimingConfig};
    pub use mssp_workloads::{workloads, Workload, CHECKSUM_REG};
}
