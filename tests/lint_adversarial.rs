//! Adversarial tests for `mssp lint`: each check must fire — and only
//! that check must fire — on a `Distilled` deliberately corrupted to
//! violate exactly one structural obligation.
//!
//! `Distilled::from_parts` performs no validation, which is precisely what
//! lets these tests hand the linter outputs no real distiller would
//! produce. Where possible the corruption is built *from* a real
//! distillation (so the scenario stays representative); where the
//! distiller cannot be coaxed into the broken shape, the parts are
//! assembled by hand.

use std::collections::{BTreeMap, BTreeSet};

use mssp::lint::fires_at;
use mssp::prelude::*;

const INSTR_BYTES: u64 = 4;

/// Runs the linter with the default configuration.
fn run_lint(program: &Program, d: &Distilled, profile: &Profile) -> Report {
    lint(program, d, profile, &LintConfig::default())
}

/// Asserts every finding in `report` belongs to `only`, and that there is
/// at least one.
fn assert_fires_only(report: &Report, only: LintId) {
    assert!(
        !report.is_empty(),
        "expected at least one {only} finding, report is empty"
    );
    for d in report.iter() {
        assert_eq!(d.lint, only, "unexpected extra finding: {d}");
    }
}

/// Rebuilds `p` with the instruction at `at` swapped for `instr`, keeping
/// every other property of the binary identical.
fn with_instr_replaced(p: &Program, at: u64, instr: Instr) -> Program {
    let text: Vec<Instr> = p
        .iter_pcs()
        .map(|(pc, i)| if pc == at { instr } else { i })
        .collect();
    Program::new(
        text,
        p.text_base(),
        p.data().to_vec(),
        p.data_base(),
        p.entry(),
        BTreeMap::new(),
    )
}

// ---------------------------------------------------------------------
// boundary-unmapped (error)
// ---------------------------------------------------------------------

#[test]
fn boundary_unmapped_fires_on_boundary_without_dist_pc() {
    let p = assemble("main: addi a0, zero, 1\n halt").unwrap();
    let entry = p.entry();
    let ghost = entry + INSTR_BYTES; // deliberately absent from the map
    let d = Distilled::from_parts(
        p.clone(),
        BTreeSet::from([entry, ghost]),
        BTreeMap::from([(entry, entry)]),
    );
    let report = run_lint(&p, &d, &Profile::empty());

    assert_fires_only(&report, LintId::BoundaryUnmapped);
    assert!(fires_at(&report, LintId::BoundaryUnmapped, ghost));
    assert!(!fires_at(&report, LintId::BoundaryUnmapped, entry));
    assert!(report.has_errors());
    let finding = report.iter().next().unwrap();
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.span, PcSpan::point(ghost));
}

#[test]
fn unsound_error_renders_the_findings() {
    let e = mssp::distill::DistillError::Unsound(vec![
        "error[boundary-unmapped] ...".into(),
        "error[liveins-uncovered] ...".into(),
    ]);
    let text = e.to_string();
    assert!(text.contains("unsound"), "{text}");
    assert!(text.contains("2 findings"), "{text}");
    assert!(text.contains("boundary-unmapped"), "{text}");
}

// ---------------------------------------------------------------------
// liveins-uncovered (error)
// ---------------------------------------------------------------------

#[test]
fn liveins_uncovered_fires_when_a_defining_write_is_lost() {
    let p = assemble(
        "main: addi s0, zero, 5
               addi s2, zero, 7
         loop: add  s1, s1, s2
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    // An honest identity distillation...
    let d = distill(&p, &profile, &DistillConfig::at_level(DistillLevel::None)).unwrap();
    let loop_pc = p.entry() + 2 * INSTR_BYTES;

    // ...then corrupt it: drop the only write to s2 (a task live-in at
    // `loop`) from the distilled image while keeping the block retained.
    let lost_dist_pc = d.to_dist(p.entry()).unwrap() + INSTR_BYTES;
    let corrupted = with_instr_replaced(
        d.program(),
        lost_dist_pc,
        Instr::Addi(Reg::ZERO, Reg::ZERO, 0),
    );
    let d = Distilled::from_parts(
        corrupted,
        BTreeSet::from([loop_pc]),
        d.iter_pc_map().collect(),
    );

    // Sanity: s2 really is a live-in obligation at the boundary.
    assert!(mssp::lint::boundary_live_ins(&p, loop_pc).contains(Reg::S2));

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::LiveinsUncovered);
    assert!(fires_at(&report, LintId::LiveinsUncovered, loop_pc));
    assert!(report.has_errors());
    let finding = report.iter().next().unwrap();
    assert!(finding.message.contains("s2"), "{finding}");
}

#[test]
fn liveins_covered_identity_distillation_is_clean() {
    // The same program, uncorrupted: every live-in stays covered.
    let p = assemble(
        "main: addi s0, zero, 5
               addi s2, zero, 7
         loop: add  s1, s1, s2
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let d = distill(&p, &profile, &DistillConfig::at_level(DistillLevel::None)).unwrap();
    let report = run_lint(&p, &d, &profile);
    assert!(
        !report.of(LintId::LiveinsUncovered).any(|_| true),
        "{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------------
// assert-unjustified (warning)
// ---------------------------------------------------------------------

#[test]
fn assert_unjustified_fires_on_weakly_biased_assertion() {
    // The inner branch is taken 3 times out of 4 (bias 0.75); the loop
    // back-edge is taken 3999/4000 (bias 0.99975, above the default
    // threshold). Distilling under a *weaker* policy than the linter's
    // default asserts both; only the weak one must be reported.
    let p = assemble(
        "main: addi s0, zero, 4000
         loop: andi t0, s0, 3
               bnez t0, skip
               addi s1, s1, 1
         skip: addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let weak_branch = p.entry() + 2 * INSTR_BYTES;
    let strong_branch = p.entry() + 5 * INSTR_BYTES;
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let config = DistillConfig {
        assert_bias: 0.7,
        ..DistillConfig::default()
    };
    let d = distill(&p, &profile, &config).unwrap();
    assert!(d.stats().asserted_branches >= 2, "both branches asserted");

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::AssertUnjustified);
    assert!(fires_at(&report, LintId::AssertUnjustified, weak_branch));
    assert!(!fires_at(&report, LintId::AssertUnjustified, strong_branch));
    assert!(!report.has_errors(), "assert-unjustified is a warning");
}

// ---------------------------------------------------------------------
// cfg-fallthrough-off-end (error)
// ---------------------------------------------------------------------

#[test]
fn fallthrough_off_end_fires_when_text_ends_in_a_plain_op() {
    let p = Program::from_instrs(vec![
        Instr::Addi(Reg::A0, Reg::ZERO, 1),
        Instr::Addi(Reg::A1, Reg::ZERO, 2),
        Instr::Addi(Reg::A2, Reg::ZERO, 3), // no halt: runs off the end
    ]);
    let tb = p.text_base();
    let d = Distilled::from_parts(
        p.clone(),
        BTreeSet::from([tb, tb + INSTR_BYTES]),
        BTreeMap::from([(tb, tb), (tb + INSTR_BYTES, tb + INSTR_BYTES)]),
    );
    let report = run_lint(&p, &d, &Profile::empty());

    assert_fires_only(&report, LintId::CfgFallthroughOffEnd);
    assert!(fires_at(
        &report,
        LintId::CfgFallthroughOffEnd,
        tb + 2 * INSTR_BYTES
    ));
    assert!(report.has_errors());
    let finding = report.iter().next().unwrap();
    assert_eq!(finding.space, mssp::lint::AddrSpace::Distilled);
    assert!(finding.message.contains("addi"), "{finding}");
}

// ---------------------------------------------------------------------
// unreachable-after-assert (warning)
// ---------------------------------------------------------------------

#[test]
fn unreachable_after_assert_fires_on_orphan_distilled_block() {
    let p = assemble(
        "main:   addi a0, zero, 1
                 halt
         orphan: addi a1, a1, 2
                 j orphan",
    )
    .unwrap();
    let entry = p.entry();
    let orphan = entry + 2 * INSTR_BYTES;
    let d = Distilled::from_parts(
        p.clone(),
        BTreeSet::from([entry, entry + INSTR_BYTES]),
        BTreeMap::from([
            (entry, entry),
            (entry + INSTR_BYTES, entry + INSTR_BYTES),
            (orphan, orphan),
        ]),
    );
    let report = run_lint(&p, &d, &Profile::empty());

    assert_fires_only(&report, LintId::UnreachableAfterAssert);
    assert!(fires_at(&report, LintId::UnreachableAfterAssert, orphan));
    assert!(!report.has_errors());
    let finding = report.iter().next().unwrap();
    assert_eq!(finding.space, mssp::lint::AddrSpace::Distilled);
    // The whole orphan region (both instructions) is one merged span.
    assert_eq!(finding.span, PcSpan::new(orphan, orphan + 2 * INSTR_BYTES));
}

// ---------------------------------------------------------------------
// boundary-in-cold-code (warning)
// ---------------------------------------------------------------------

#[test]
fn boundary_in_cold_code_fires_on_never_executed_boundary() {
    // `cold` is statically reachable (the not-taken arm of an always-taken
    // branch) so the distiller retains and maps it, but the training run
    // never crosses it.
    let p = assemble(
        "main: addi s0, zero, 50
         loop: addi s1, s1, 1
               addi s0, s0, -1
               bnez s0, loop
               bnez s1, done
         cold: addi s2, s2, 1
         done: halt",
    )
    .unwrap();
    let loop_pc = p.entry() + INSTR_BYTES;
    let cold_pc = p.entry() + 5 * INSTR_BYTES;
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    assert_eq!(profile.exec_count(cold_pc), 0, "cold code must stay cold");

    let honest = distill(&p, &profile, &DistillConfig::at_level(DistillLevel::None)).unwrap();
    assert!(honest.to_dist(cold_pc).is_some(), "cold block is retained");
    let d = Distilled::from_parts(
        honest.program().clone(),
        BTreeSet::from([loop_pc, cold_pc]),
        honest.iter_pc_map().collect(),
    );

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::BoundaryInColdCode);
    assert!(fires_at(&report, LintId::BoundaryInColdCode, cold_pc));
    assert!(!fires_at(&report, LintId::BoundaryInColdCode, loop_pc));
    assert!(!report.has_errors());
}

// ---------------------------------------------------------------------
// dead-store-in-distilled (warning)
// ---------------------------------------------------------------------

#[test]
fn dead_store_fires_on_write_overwritten_before_use() {
    let p = assemble(
        "main: addi t0, zero, 9
               j body
         body: addi t0, zero, 1
               add  s1, s1, t0
               halt",
    )
    .unwrap();
    let dead_pc = p.entry();
    let body_pc = p.entry() + 2 * INSTR_BYTES;
    let d = Distilled::from_parts(
        p.clone(),
        BTreeSet::from([body_pc]),
        BTreeMap::from([(p.entry(), p.entry()), (body_pc, body_pc)]),
    );

    // t0 is *not* live-in at the boundary (the body re-defines it first),
    // so the boundary floor does not excuse the dead write.
    assert!(!mssp::lint::boundary_live_ins(&p, body_pc).contains(Reg::T0));

    let report = run_lint(&p, &d, &Profile::empty());
    assert_fires_only(&report, LintId::DeadStoreInDistilled);
    assert!(fires_at(&report, LintId::DeadStoreInDistilled, dead_pc));
    assert!(!fires_at(&report, LintId::DeadStoreInDistilled, body_pc));
    assert!(!report.has_errors());
    let finding = report.iter().next().unwrap();
    assert!(finding.message.contains("t0"), "{finding}");
}

// ---------------------------------------------------------------------
// degenerate-boundary-set (warning)
// ---------------------------------------------------------------------

#[test]
fn degenerate_boundary_set_fires_on_entry_only_fallback() {
    // A straight-line program has no recurring site, so boundary selection
    // falls back to the entry PC alone — end-to-end through the real
    // distiller, no hand corruption needed.
    let p = assemble("main: addi a0, zero, 1\n halt").unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    assert_eq!(*d.boundaries(), BTreeSet::from([p.entry()]));

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::DegenerateBoundarySet);
    assert!(fires_at(&report, LintId::DegenerateBoundarySet, p.entry()));
    assert!(!report.has_errors());
}

#[test]
fn recurring_entry_is_not_degenerate() {
    // The entry itself recurs (the program loops back to it), so an
    // entry-only boundary set is a legitimate selection, not a fallback.
    let p = assemble(
        "main: addi s1, s1, 3
               addi s0, s0, 1
               slti t0, s0, 40
               bnez t0, main
               halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let d = distill(&p, &profile, &DistillConfig::at_level(DistillLevel::None)).unwrap();
    assert_eq!(*d.boundaries(), BTreeSet::from([p.entry()]));
    let report = run_lint(&p, &d, &profile);
    assert!(
        !report.of(LintId::DegenerateBoundarySet).any(|_| true),
        "{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------------
// slice-unsound (error)
// ---------------------------------------------------------------------

#[test]
fn slice_unsound_fires_on_undeclared_input() {
    // Start from a distillation that lints clean, then plant a live-in
    // slice whose body reads a register it never declared as an input —
    // a value that simply does not exist at spawn time.
    let p = assemble(
        "main: addi s0, zero, 64
         loop: addi s1, s1, 3
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    let clean = run_lint(&p, &d, &profile);
    assert!(
        clean.is_empty(),
        "fixture must lint clean before corruption:\n{}",
        clean.render_text()
    );

    let boundary = *d.boundaries().iter().next().unwrap();
    let home = p.symbol("loop").unwrap();
    let slice = mssp::distill::Slice {
        kind: mssp::distill::SliceKind::LiveIn { target: Reg::S1 },
        program: assemble("main: add s1, t1, zero\n halt").unwrap(),
        inputs: Vec::new(), // t1 deliberately undeclared
        window: 4,
        home_pc: home,
    };
    let d = d.with_slices(BTreeMap::from([(boundary, vec![slice])]));

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::SliceUnsound);
    assert!(fires_at(&report, LintId::SliceUnsound, home));
    assert!(report.has_errors());
    let finding = report.of(LintId::SliceUnsound).next().unwrap();
    assert!(
        finding.message.contains("not spawn-available"),
        "message should name the obligation: {}",
        finding.message
    );
}

#[test]
fn slice_unsound_fires_on_guard_with_store_or_bad_terminator() {
    let p = assemble(
        "main: addi s0, zero, 64
         loop: addi s1, s1, 3
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    let boundary = *d.boundaries().iter().next().unwrap();
    let home = p.symbol("loop").unwrap();

    // Guards may read memory (the evaluator answers loads from the
    // master's spawn-time view) but must never write it.
    let storing_guard = mssp::distill::Slice {
        kind: mssp::distill::SliceKind::SpawnGuard {
            asserted_taken: true,
        },
        program: assemble(
            "main: sd   s0, -8(sp)
                   bnez s0, main",
        )
        .unwrap(),
        inputs: vec![(Reg::S0, -1), (Reg::SP, 0)],
        window: 4,
        home_pc: home,
    };
    // A guard whose final instruction is not the guarded branch cannot
    // veto anything.
    let branchless_guard = mssp::distill::Slice {
        kind: mssp::distill::SliceKind::SpawnGuard {
            asserted_taken: false,
        },
        program: assemble("main: addi s0, s0, -1\n halt").unwrap(),
        inputs: vec![(Reg::S0, -1)],
        window: 4,
        home_pc: home,
    };
    let d = d.with_slices(BTreeMap::from([(
        boundary,
        vec![storing_guard, branchless_guard],
    )]));

    let report = run_lint(&p, &d, &profile);
    assert_fires_only(&report, LintId::SliceUnsound);
    assert_eq!(report.of(LintId::SliceUnsound).count(), 2);
    assert!(report.has_errors());
}
