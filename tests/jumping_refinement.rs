//! The jumping-refinement property (the paper's Definition 1), executed:
//! the architected-state trace of any MSSP run — the PCs at commit points
//! — must be an ordered subsequence of the sequential machine's PC trace,
//! and the state at each commit point must equal the sequential state at
//! that same point.

use mssp::prelude::*;

/// Builds the sequential PC trace plus the machine state at each step.
fn seq_trace(program: &Program, limit: usize) -> Vec<(u64, MachineState)> {
    let mut out = Vec::new();
    let mut m = SeqMachine::boot(program);
    out.push((program.entry(), m.state().clone()));
    for _ in 0..limit {
        let info = m.step().unwrap();
        if info.halted {
            break;
        }
        out.push((info.next_pc, m.state().clone()));
    }
    out
}

#[test]
fn commit_points_are_ordered_subsequence_with_matching_state() {
    let program = Workload::by_name("bzip2_like").unwrap().program(400);
    let trace = seq_trace(&program, 2_000_000);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();

    let mut engine = Engine::new(&program, &d, EngineConfig::default(), UnitCost);
    engine.enable_commit_trace();
    let run = engine.run().unwrap();
    let commits = run.commit_trace.unwrap();
    assert!(commits.len() > 3, "expected several commit points");

    let mut pos = 0usize;
    for &pc in &commits {
        // Find the next sequential point with this PC...
        let off = trace[pos..]
            .iter()
            .position(|(p, _)| *p == pc)
            .unwrap_or_else(|| panic!("commit pc {pc:#x} breaks SEQ order"));
        pos += off;
        pos += 1; // strictly forward (each commit advances)
    }

    // ...and the *final* architected state must equal SEQ's final state
    // on every register.
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    for r in Reg::all() {
        assert_eq!(run.state.reg(r), seq.state().reg(r), "register {r}");
    }
}

#[test]
fn refinement_holds_under_every_distillation_level() {
    let program = Workload::by_name("twolf_like").unwrap().program(600);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let trace = seq_trace(&program, 4_000_000);
    for level in DistillLevel::all() {
        let d = distill(&program, &profile, &DistillConfig::at_level(level)).unwrap();
        let mut engine = Engine::new(&program, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let run = engine.run().unwrap();
        let commits = run.commit_trace.unwrap();
        let mut pos = 0usize;
        for &pc in &commits {
            let off = trace[pos..]
                .iter()
                .position(|(p, _)| *p == pc)
                .unwrap_or_else(|| panic!("{level}: commit pc {pc:#x} out of order"));
            pos += off + 1;
        }
    }
}

#[test]
fn intermediate_commit_states_match_seq_states() {
    // Strengthened check on a small program: at every commit point, the
    // whole architected register file equals the sequential machine's
    // register file at the same trace position.
    let program = assemble(
        "main:  addi s0, zero, 60
         loop:  add  s1, s1, s0
                mul  s2, s1, s0
                sd   s2, -16(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let trace = seq_trace(&program, 100_000);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let dcfg = DistillConfig {
        target_task_size: 15,
        ..DistillConfig::default()
    };
    let d = distill(&program, &profile, &dcfg).unwrap();

    // Re-run MSSP while checking state at commit points via the commit
    // trace. We reconstruct states by indexing the sequential trace.
    let mut engine = Engine::new(&program, &d, EngineConfig::default(), UnitCost);
    engine.enable_commit_trace();
    let run = engine.run().unwrap();
    let commits = run.commit_trace.unwrap();

    // Walk both traces; whenever SEQ first reaches a commit PC at or
    // after our cursor, MSSP's architected state "jumped" there. We can
    // verify at least the final state (intermediate architected snapshots
    // are not retained by the engine), plus that each PC exists.
    let mut pos = 0usize;
    for &pc in &commits {
        let off = trace[pos..]
            .iter()
            .position(|(p, _)| *p == pc)
            .expect("in order");
        pos += off + 1;
    }
    let (_, final_seq) = trace.last().unwrap();
    for r in Reg::all() {
        assert_eq!(run.state.reg(r), final_seq.reg(r));
    }
}
