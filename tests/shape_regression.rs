//! Performance-shape regression tests: the qualitative results that make
//! this a reproduction of the MICRO-2002 evaluation must keep holding.
//! Bands are intentionally loose — they pin the *shape* (who wins, what
//! direction a knob moves), not exact numbers.

use mssp::prelude::*;
use mssp::timing::run_mssp as timed_mssp;

fn measure(name: &str, level: DistillLevel) -> (f64, f64, u64) {
    let w = Workload::by_name(name).unwrap();
    let program = w.program(w.default_scale / 2);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::at_level(level)).unwrap();
    let tcfg = TimingConfig::default();
    let base = run_baseline(&program, &tcfg, u64::MAX).unwrap();
    let mssp = timed_mssp(&program, &d, &tcfg).unwrap();
    let s = &mssp.run.stats;
    let ratio = s.master_instructions as f64 / s.committed_instructions as f64;
    (
        speedup(base.cycles, mssp.run.cycles),
        ratio,
        s.squash_events(),
    )
}

#[test]
fn distillable_workloads_beat_baseline() {
    for name in [
        "gap_like",
        "vortex_like",
        "crafty_like",
        "gzip_like",
        "bzip2_like",
    ] {
        let (speed, _, _) = measure(name, DistillLevel::Aggressive);
        assert!(
            speed > 1.05,
            "{name}: speedup {speed:.3} regressed below 1.05"
        );
    }
}

#[test]
fn gap_like_is_the_best_case_near_paper_max() {
    let (speed, ratio, _) = measure("gap_like", DistillLevel::Aggressive);
    assert!(speed > 1.4, "gap speedup {speed:.3}");
    assert!(
        ratio < 0.7,
        "gap distilled ratio {ratio:.3} should be strong"
    );
}

#[test]
fn undistillable_workloads_hover_near_one() {
    for name in ["mcf_like", "perlbmk_like"] {
        let (speed, ratio, _) = measure(name, DistillLevel::Aggressive);
        assert!(
            (0.85..1.15).contains(&speed),
            "{name}: {speed:.3} should be ~1.0 (nothing to distill)"
        );
        assert!(ratio > 0.9, "{name}: ratio {ratio:.3} should stay near 1");
    }
}

#[test]
fn aggressiveness_monotonically_helps_on_distillable_code() {
    let (none, _, sq_none) = measure("gap_like", DistillLevel::None);
    let (cons, _, _) = measure("gap_like", DistillLevel::Conservative);
    let (aggr, _, _) = measure("gap_like", DistillLevel::Aggressive);
    assert!(
        cons >= none * 0.98,
        "conservative {cons:.3} < none {none:.3}"
    );
    assert!(
        aggr > cons,
        "aggressive {aggr:.3} <= conservative {cons:.3}"
    );
    assert_eq!(sq_none, 0, "the identity master must never misspeculate");
}

#[test]
fn squash_rates_stay_negligible() {
    for w in workloads() {
        let (_, _, squashes) = measure(w.name, DistillLevel::Aggressive);
        assert!(squashes <= 10, "{}: {squashes} squash events", w.name);
    }
}

#[test]
fn pass_pipeline_never_grows_static_size() {
    // The optimizing pipeline must not emit a bigger master program than
    // the DCE-only distiller it replaced — on any workload. Jump threading
    // in particular is gated on a layout-cost model; this pins that gate.
    for w in workloads() {
        let program = w.program(w.default_scale);
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        let full = distill(&program, &profile, &DistillConfig::default()).unwrap();
        let dce_cfg = DistillConfig {
            passes: PassConfig::dce_only(),
            ..DistillConfig::default()
        };
        let dce = distill(&program, &profile, &dce_cfg).unwrap();
        assert!(
            full.stats().distilled_static <= dce.stats().distilled_static,
            "{}: pipeline grew the distilled program ({} > {} static instructions)",
            w.name,
            full.stats().distilled_static,
            dce.stats().distilled_static,
        );
    }
}

#[test]
fn more_slaves_never_hurt_much_and_help_somewhere() {
    let w = Workload::by_name("gap_like").unwrap();
    let program = w.program(w.default_scale / 2);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    let run_with = |slaves: usize| {
        let mut tcfg = TimingConfig::default();
        tcfg.engine.num_slaves = slaves;
        let base = run_baseline(&program, &tcfg, u64::MAX).unwrap();
        let m = timed_mssp(&program, &d, &tcfg).unwrap();
        speedup(base.cycles, m.run.cycles)
    };
    let one = run_with(1);
    let seven = run_with(7);
    let fifteen = run_with(15);
    assert!(
        seven > one,
        "scaling broken: 7 slaves {seven:.3} <= 1 slave {one:.3}"
    );
    assert!(fifteen >= seven * 0.95, "16 cores should not collapse");
}
