//! Adversarial-master fuzzing: the committed architected state must be
//! independent of the master program — arbitrary code, arbitrary boundary
//! maps, arbitrary boundary sets. This is the paper's decoupling theorem
//! under fire: the fast path can be *anything* and only performance moves.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

use std::collections::{BTreeMap, BTreeSet};

use mssp::prelude::*;
use mssp_testkit::{check, Rng};

fn reference() -> (Program, u64, u64) {
    let p = assemble(
        "main:  addi s0, zero, 300
                li   s2, 0x280000
         loop:  add  s1, s1, s0
                sd   s1, 0(s2)
                addi s2, s2, 8
                andi t0, s0, 3
                beqz t0, bump
         back:  addi s0, s0, -1
                bnez s0, loop
                halt
         bump:  addi s1, s1, 11
                j    back",
    )
    .unwrap();
    let mut m = SeqMachine::boot(&p);
    m.run(u64::MAX).unwrap();
    let s1 = m.state().reg(Reg::S1);
    let loop_pc = p.symbol("loop").unwrap();
    (p, s1, loop_pc)
}

/// A random "master" program: arbitrary ALU/branch soup ending in a
/// spin loop (so it keeps producing garbage predictions forever).
fn arb_master(rng: &mut Rng) -> String {
    let n = rng.gen_range(1, 16);
    let mut src = String::from("main:\n");
    for i in 0..n {
        let op = rng.gen_range(0, 5);
        let reg = rng.gen_range(0, 8);
        let imm = rng.gen_range(0, 1000) as i64 - 500;
        let r = reg + 4;
        match op {
            0 => src.push_str(&format!("  addi r{r}, r{r}, {imm}\n")),
            1 => src.push_str(&format!("  xor  r{r}, r{r}, r{}\n", (reg + 1) % 8 + 4)),
            2 => src.push_str(&format!(
                "  li   t0, {}\n  sd   r{r}, 0(t0)\n",
                0x280000 + (imm.unsigned_abs() % 512) * 8
            )),
            3 => src.push_str(&format!("  mul  r{r}, r{r}, r{}\n", (reg + 3) % 8 + 4)),
            _ => src.push_str(&format!(
                "  andi t1, r{r}, 7\n  beqz t1, sk{i}\n  addi r{r}, r{r}, 1\nsk{i}:\n"
            )),
        }
    }
    src.push_str("spin: addi a7, a7, 1\n  j spin\n");
    src
}

#[test]
fn any_master_any_boundaries_commits_correct_state() {
    check(0xADD5_0001, 40, |rng| {
        let master_src = arb_master(rng);
        let map_loop = rng.gen_bool(1, 2);
        let slaves = rng.gen_index(1, 6);

        let (p, expected, loop_pc) = reference();
        let master = assemble(&master_src).expect("master assembles");
        let mut map = BTreeMap::new();
        map.insert(p.entry(), master.entry());
        let mut boundaries = BTreeSet::from([loop_pc]);
        if map_loop {
            // Map the boundary into the master's spin loop so it spawns
            // garbage tasks forever.
            map.insert(loop_pc, master.symbol("spin").expect("label"));
        } else {
            // Master never spawns at the boundary; starvation recovery
            // must carry the program.
            boundaries.insert(p.symbol("back").expect("label"));
        }
        let d = Distilled::from_parts(master, boundaries, map);
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = Engine::new(&p, &d, cfg, UnitCost)
            .run()
            .expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), expected);
    });
}

#[test]
fn random_boundary_sets_are_harmless() {
    check(0xADD5_0002, 40, |rng| {
        let extra_n = rng.gen_range(0, 12);
        let extra: BTreeSet<u64> = (0..extra_n).map(|_| rng.gen_range(0, 200)).collect();
        let n = rng.gen_range(1, 32);

        let (p, expected, loop_pc) = reference();
        // Random boundary PCs across the text (some valid, some mid-block).
        let mut boundaries: BTreeSet<u64> =
            extra.into_iter().map(|i| p.text_base() + i * 4).collect();
        boundaries.insert(loop_pc);
        let dead = assemble("main: halt").unwrap();
        let mut map = BTreeMap::new();
        map.insert(p.entry(), dead.entry());
        let d = Distilled::from_parts(dead, boundaries, map).with_crossings_per_task(n);
        let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
            .run()
            .expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), expected);
    });
}
