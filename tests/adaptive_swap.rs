//! Epoch hot-swap parity: the discrete engine and the threaded executor
//! must agree when the adaptive controller swaps the distilled program
//! mid-run.
//!
//! A deterministic recompiler (redistilling from the *training* profile,
//! ignoring the live one, so both executors install byte-identical
//! candidates) plus a forced swap schedule pins the swap points to fixed
//! committed-task counts. With synchronous recompilation the two
//! executors must then agree on final state, committed-task count, the
//! full squash histogram, and the swap markers themselves, at every
//! worker count. A second suite forces the swap into the middle of a
//! live-in-mismatch squash storm (a phase-shifting workload running far
//! off its training profile) and checks final state only — mid-storm the
//! executors may partition recovery work differently, but the committed
//! architected state may not diverge.

use mssp::core::{run_threaded_adaptive, AdaptiveConfig, AdaptiveController, Recompiler};
use mssp::prelude::*;

/// A loop with multiplies and memory traffic, long enough for dozens of
/// tasks at the default granularity.
fn fixture() -> (Program, Distilled, Profile) {
    let p = assemble(
        "main:  addi s0, zero, 3000
         loop:  add  s1, s1, s0
                mul  t0, s0, s0
                add  s1, s1, t0
                sd   s1, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    (p, d, profile)
}

/// A recompiler that ignores the live profile and redistills from a
/// fixed training profile: deterministic, so the discrete and threaded
/// executors install identical candidates at identical swap points.
fn deterministic_recompiler(p: &Program, d: &Distilled, training: &Profile) -> Recompiler {
    let program = p.clone();
    let profile = training.clone();
    let dcfg = DistillConfig::default();
    let boundaries = d.boundaries().clone();
    let crossings = d.crossings_per_task().max(1);
    Box::new(move |_live, tier| {
        redistill(
            &program,
            &profile,
            &tier.apply(&dcfg),
            &boundaries,
            crossings,
        )
        .map_err(|e| e.to_string())
    })
}

/// Forced swaps only — windows are effectively disabled so the
/// controller cannot trigger on its own and perturb the schedule.
fn forced_config() -> AdaptiveConfig {
    AdaptiveConfig {
        window_tasks: u64::MAX,
        force_swap_at: vec![(6, Tier::Fast), (14, Tier::Full)],
        ..AdaptiveConfig::default()
    }
}

#[test]
fn forced_swaps_agree_across_executors() {
    let (p, d, training) = fixture();
    let mut seq = SeqMachine::boot(&p);
    seq.run(u64::MAX).unwrap();

    let discrete = {
        let ctl = AdaptiveController::new(forced_config(), &d, &training);
        let rec = deterministic_recompiler(&p, &d, &training);
        let mut e = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        e.enable_adaptive(ctl, rec);
        e.run().unwrap()
    };
    assert_eq!(discrete.state.reg(Reg::S1), seq.state().reg(Reg::S1));
    assert_eq!(discrete.stats.swaps_installed, 2, "{:?}", discrete.stats);
    let dreport = discrete.adaptive.as_ref().unwrap();

    for workers in [1usize, 2, 4, 8] {
        let ctl = AdaptiveController::new(forced_config(), &d, &training);
        let rec = deterministic_recompiler(&p, &d, &training);
        let cfg = EngineConfig {
            num_slaves: workers,
            ..EngineConfig::default()
        };
        let run = run_threaded_adaptive(&p, &d, cfg, ctl, rec, true).unwrap();

        // Final architected state.
        assert_eq!(
            run.state.reg(Reg::S1),
            seq.state().reg(Reg::S1),
            "{workers} workers: committed state diverged"
        );
        assert_eq!(run.state.pc(), seq.state().pc());

        // Commit count and the full squash histogram.
        assert_eq!(
            run.stats.committed_tasks, discrete.stats.committed_tasks,
            "{workers} workers: committed-task count diverged"
        );
        assert_eq!(
            run.stats.committed_instructions,
            discrete.stats.committed_instructions
        );
        assert_eq!(
            run.stats.squashes_wrong_path,
            discrete.stats.squashes_wrong_path
        );
        assert_eq!(run.stats.squashes_live_in, discrete.stats.squashes_live_in);
        assert_eq!(run.stats.squashes_overrun, discrete.stats.squashes_overrun);
        assert_eq!(run.stats.squashes_fault, discrete.stats.squashes_fault);

        // The swap schedule itself: same tiers at the same commit points.
        assert_eq!(run.stats.swaps_installed, 2, "{workers} workers");
        assert_eq!(run.stats.recompilations_fast, 1);
        assert_eq!(run.stats.recompilations_full, 1);
        let report = run.adaptive.as_ref().unwrap();
        assert_eq!(report.swaps.len(), dreport.swaps.len());
        for (t, d_marker) in report.swaps.iter().zip(&dreport.swaps) {
            assert_eq!(t.tier, d_marker.tier);
            assert_eq!(
                t.at_committed_tasks, d_marker.at_committed_tasks,
                "{workers} workers: swap landed at a different commit point"
            );
        }
    }
}

#[test]
fn mid_storm_swap_preserves_state() {
    // A phase-shifting workload far off its training profile: the frozen
    // distillation asserts away a branch that fires on every post-shift
    // iteration, so the run is a wall-to-wall live-in-mismatch squash
    // storm when the controller decides to swap. Divergence detection is
    // left on its defaults — the swap lands mid-storm, wherever the
    // windows put it.
    let w = mssp::workloads::phase_workloads()
        .iter()
        .find(|w| w.name == "phase_flip")
        .unwrap();
    let scale = 600;
    let train = w.phase_program(scale, 0);
    let reference = w.phase_program(scale, scale);
    let profile = Profile::collect(&train, u64::MAX).unwrap();
    let d = distill(&reference, &profile, &DistillConfig::default()).unwrap();

    let mut seq = SeqMachine::boot(&reference);
    seq.run(u64::MAX).unwrap();

    let discrete = {
        let ctl = AdaptiveController::new(AdaptiveConfig::default(), &d, &profile);
        let rec = deterministic_recompiler(&reference, &d, &profile);
        let mut e = Engine::new(&reference, &d, EngineConfig::default(), UnitCost);
        e.enable_adaptive(ctl, rec);
        e.run().unwrap()
    };
    assert_eq!(
        discrete.state.reg(CHECKSUM_REG),
        seq.state().reg(CHECKSUM_REG),
        "discrete: mid-storm swap corrupted state"
    );

    for workers in [1usize, 2, 4, 8] {
        let ctl = AdaptiveController::new(AdaptiveConfig::default(), &d, &profile);
        let rec = deterministic_recompiler(&reference, &d, &profile);
        let cfg = EngineConfig {
            num_slaves: workers,
            ..EngineConfig::default()
        };
        let run = run_threaded_adaptive(&reference, &d, cfg, ctl, rec, true).unwrap();
        assert_eq!(
            run.state.reg(CHECKSUM_REG),
            seq.state().reg(CHECKSUM_REG),
            "{workers} workers: mid-storm swap corrupted state"
        );
        assert_eq!(run.state.pc(), seq.state().pc());
    }
}
