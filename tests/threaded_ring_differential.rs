//! Differential suite for the ring-based threaded executor.
//!
//! The lock-free rebuild (per-worker SPSC task rings, one MPSC result
//! ring, arena-recycled deltas, a pooled committed-view per task) must
//! be observationally identical to the discrete [`Engine`]: same final
//! state, same committed instruction count, same squash-reason
//! histogram, at 1/2/4/8 workers. The fixtures here are chosen to lean
//! on exactly the machinery the rebuild touched:
//!
//! * a **memory recurrence** — every task's live-ins include a cell the
//!   *previous* task wrote, so correctness hinges on the pooled
//!   committed-view delta shipped with each spawn (a stale or
//!   mis-recycled view is an instant live-in squash or, worse, a wrong
//!   committed value);
//! * a **long run** far past `MAX_PENDING_DELTAS`, cycling snapshot
//!   materialization, commit-log compaction, and arena recycling many
//!   times;
//! * an **adversarial master** asserting the wrong branch arm, driving
//!   squash/recovery (and its buffer-reclamation paths) under real
//!   thread interleavings.
//!
//! `cross_check_commits` replays every verify/commit decision through
//! the shared `verify_and_commit` oracle in-run and panics on any
//! divergence — so a pass here certifies each decision, not just the
//! end state.

use std::collections::{BTreeMap, BTreeSet};

use mssp::core::{run_threaded, EngineConfig, EngineStats, UnitCost};
use mssp::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn squash_histogram(stats: &EngineStats) -> [u64; 6] {
    [
        stats.squashes_wrong_path,
        stats.squashes_live_in,
        stats.squashes_live_in_predicted,
        stats.squashes_live_in_stale,
        stats.squashes_overrun,
        stats.squashes_fault,
    ]
}

/// Runs `program` under both executors at every worker count and
/// asserts full observational equivalence against the sequential
/// machine and each other.
fn assert_differential(program: &Program, d: &Distilled, label: &str) {
    let mut seq = SeqMachine::boot(program);
    seq.run(u64::MAX).expect("fixture halts");

    for slaves in WORKER_COUNTS {
        let reference = Engine::new(
            program,
            d,
            EngineConfig {
                num_slaves: slaves,
                ..EngineConfig::default()
            },
            UnitCost,
        )
        .run()
        .expect("engine terminates");

        let cfg = EngineConfig {
            num_slaves: slaves,
            cross_check_commits: true,
            ..EngineConfig::default()
        };
        let run = run_threaded(program, d, cfg).expect("threaded terminates");

        // State: threaded == engine == sequential, including memory.
        assert_eq!(
            run.state.reg(Reg::S1),
            seq.state().reg(Reg::S1),
            "{label}: s1, {slaves} workers"
        );
        assert_eq!(run.state.pc(), seq.state().pc(), "{label}: pc");
        let sp = seq.state().reg(Reg::SP);
        for w in ((sp - 64) >> 3)..(sp >> 3) {
            assert_eq!(
                run.state.load_word(w),
                seq.state().load_word(w),
                "{label}: stack word {w}, {slaves} workers"
            );
        }
        assert_eq!(run.state.reg(Reg::S1), reference.state.reg(Reg::S1));

        // Commit counts, in instruction terms.
        assert_eq!(
            run.stats.committed_instructions,
            seq.instructions(),
            "{label}: committed instructions, {slaves} workers"
        );
        assert_eq!(
            run.stats.committed_instructions,
            reference.stats.committed_instructions
        );

        // Squash-reason histogram: forced by architected state, which
        // both executors walk identically. The predicted/stale split and
        // the hit/miss counters are deterministic too — the predictor
        // trains only at verify time (in-order on both sides) and is
        // frozen within a master epoch, so every *verified* task's
        // injections depend only on the commit/squash history, never on
        // spawn-ahead timing. (Raw spawned_tasks / spawn_vetoes /
        // predictor_overrides DO depend on run-ahead depth and are
        // deliberately not compared.)
        assert_eq!(
            squash_histogram(&run.stats),
            squash_histogram(&reference.stats),
            "{label}: squash histogram, {slaves} workers"
        );
        assert_eq!(
            (run.stats.predictor_hits, run.stats.predictor_misses),
            (
                reference.stats.predictor_hits,
                reference.stats.predictor_misses
            ),
            "{label}: predictor hit/miss, {slaves} workers"
        );
    }
}

#[test]
fn memory_recurrence_flows_through_the_committed_view() {
    // Each iteration reads -8(sp) written by the previous one: every
    // task's live-ins include its predecessor's freshest write, which
    // the worker can only have observed through the pooled committed
    // view shipped at dispatch.
    let program = assemble(
        "main:  addi s0, zero, 400
         loop:  ld   t0, -8(sp)
                add  t0, t0, s0
                sd   t0, -8(sp)
                add  s1, s1, t0
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    assert_differential(&program, &d, "memory recurrence");
}

#[test]
fn long_run_cycles_snapshots_compaction_and_arena_recycling() {
    // Thousands of commits: far past MAX_PENDING_DELTAS, so the
    // coordinator materializes snapshots, compacts the commit log, and
    // recycles pooled deltas hundreds of times over.
    let program = assemble(
        "main:  addi s0, zero, 3000
         loop:  add  s1, s1, s0
                mul  t0, s0, s0
                add  s1, s1, t0
                sd   s1, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();

    for slaves in WORKER_COUNTS {
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        // The run must actually have exercised the snapshot/delta cycle.
        assert!(
            run.stats.snapshots_materialized > 2,
            "{slaves} workers: expected repeated materialization, got {:?}",
            run.stats
        );
        assert!(run.stats.deltas_published > run.stats.snapshots_materialized);
    }
}

/// A fixture whose master clobbers `s2` inside the loop while the
/// original holds it constant at `truth`: every spawned checkpoint
/// carries the wrong `s2`, so every task live-in-mismatches until the
/// last-value predictor saturates on the (constant) architected value
/// and starts overriding the checkpoint at spawn — after which tasks
/// commit on the strength of the injected prediction alone.
fn predictor_fixture(iters: u64, junk: u64, truth: u64) -> (Program, Distilled) {
    let original = assemble(&format!(
        "main:  addi s2, zero, {truth}
                addi s0, zero, {iters}
         loop:  add  t0, s2, s0
                sd   t0, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                ld   s1, -8(sp)
                halt"
    ))
    .unwrap();
    let wrong = assemble(&format!(
        "main:  addi s2, zero, {truth}
                addi s0, zero, {iters}
         loop:  addi s2, zero, {junk}
                addi s0, s0, -1
                j    loop"
    ))
    .unwrap();
    let boundary = original.symbol("loop").unwrap();
    let map = BTreeMap::from([
        (original.entry(), wrong.entry()),
        (boundary, wrong.symbol("loop").unwrap()),
    ]);
    let d = Distilled::from_parts(wrong, BTreeSet::from([boundary]), map);
    (original, d)
}

#[test]
fn predictor_rescue_and_attribution_match_across_executors() {
    // Deterministic fuzz: vary iteration count and the junk/truth values
    // with a fixed-seed LCG. Each variant must (a) actually exercise the
    // rescue path in the discrete engine, and (b) agree with the
    // threaded executor on state, commits, the predicted/stale squash
    // split, and the hit/miss counters at every worker count.
    let mut seed = 0x5eed_cafe_u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    for variant in 0..4 {
        let iters = 120 + next() % 200;
        let junk = 1 + next() % 1000;
        let truth = junk + 1 + next() % 97; // always distinct from junk
        let (program, d) = predictor_fixture(iters, junk, truth);

        let probe = Engine::new(&program, &d, EngineConfig::default(), UnitCost)
            .run()
            .expect("engine terminates");
        assert!(
            probe.stats.predictor_hits > 0,
            "variant {variant}: the predictor must rescue commits (stats: {:?})",
            probe.stats
        );
        assert!(
            probe.stats.squashes_live_in_stale > 0,
            "variant {variant}: pre-saturation squashes must be attributed stale"
        );
        assert_eq!(
            probe.stats.squashes_live_in,
            probe.stats.squashes_live_in_predicted + probe.stats.squashes_live_in_stale,
            "variant {variant}: attribution must partition live-in squashes"
        );

        // With the predictor off, the same fixture squash-storms: the
        // rescue above is the predictor's doing, not an accident of the
        // fixture.
        let off = Engine::new(
            &program,
            &d,
            EngineConfig {
                enable_predictor: false,
                ..EngineConfig::default()
            },
            UnitCost,
        )
        .run()
        .expect("engine terminates");
        assert!(
            off.stats.squashes_live_in > probe.stats.squashes_live_in,
            "variant {variant}: disabling the predictor must cost squashes \
             (off {} vs on {})",
            off.stats.squashes_live_in,
            probe.stats.squashes_live_in
        );
        assert_eq!(off.stats.predictor_hits, 0);

        assert_differential(&program, &d, &format!("predictor fuzz variant {variant}"));
    }
}

#[test]
fn adversarial_master_squashes_identically_across_executors() {
    // The master asserts the odd arm unconditionally — wrong whenever
    // the original takes the even arm — driving constant squash and
    // recovery through the ring/arena reclamation paths.
    let program = assemble(
        "main:  addi s0, zero, 300
         loop:  andi t0, s0, 1
                beqz t0, even
                addi s1, s1, 3
                j    next
         even:  addi s1, s1, 7
         next:  sd   s1, -16(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let wrong = assemble(
        "main:  addi s0, zero, 300
         loop:  addi s1, s1, 3
                addi s0, s0, -1
                j    loop",
    )
    .unwrap();
    let mut map = BTreeMap::new();
    map.insert(program.entry(), wrong.entry());
    map.insert(
        program.symbol("loop").unwrap(),
        wrong.symbol("loop").unwrap(),
    );
    let d = Distilled::from_parts(
        wrong,
        BTreeSet::from([program.symbol("loop").unwrap()]),
        map,
    );
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    // The fixture must be squash-heavy for the comparison to mean much.
    let probe = run_threaded(
        &program,
        &d,
        EngineConfig {
            num_slaves: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(probe.stats.squashed_tasks > 0, "fixture must squash");
    assert_differential(&program, &d, "adversarial master");
}
