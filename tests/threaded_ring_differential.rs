//! Differential suite for the ring-based threaded executor.
//!
//! The lock-free rebuild (per-worker SPSC task rings, one MPSC result
//! ring, arena-recycled deltas, a pooled committed-view per task) must
//! be observationally identical to the discrete [`Engine`]: same final
//! state, same committed instruction count, same squash-reason
//! histogram, at 1/2/4/8 workers. The fixtures here are chosen to lean
//! on exactly the machinery the rebuild touched:
//!
//! * a **memory recurrence** — every task's live-ins include a cell the
//!   *previous* task wrote, so correctness hinges on the pooled
//!   committed-view delta shipped with each spawn (a stale or
//!   mis-recycled view is an instant live-in squash or, worse, a wrong
//!   committed value);
//! * a **long run** far past `MAX_PENDING_DELTAS`, cycling snapshot
//!   materialization, commit-log compaction, and arena recycling many
//!   times;
//! * an **adversarial master** asserting the wrong branch arm, driving
//!   squash/recovery (and its buffer-reclamation paths) under real
//!   thread interleavings.
//!
//! `cross_check_commits` replays every verify/commit decision through
//! the shared `verify_and_commit` oracle in-run and panics on any
//! divergence — so a pass here certifies each decision, not just the
//! end state.

use std::collections::{BTreeMap, BTreeSet};

use mssp::core::{run_threaded, EngineConfig, EngineStats, UnitCost};
use mssp::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn squash_histogram(stats: &EngineStats) -> [u64; 4] {
    [
        stats.squashes_wrong_path,
        stats.squashes_live_in,
        stats.squashes_overrun,
        stats.squashes_fault,
    ]
}

/// Runs `program` under both executors at every worker count and
/// asserts full observational equivalence against the sequential
/// machine and each other.
fn assert_differential(program: &Program, d: &Distilled, label: &str) {
    let mut seq = SeqMachine::boot(program);
    seq.run(u64::MAX).expect("fixture halts");

    for slaves in WORKER_COUNTS {
        let reference = Engine::new(
            program,
            d,
            EngineConfig {
                num_slaves: slaves,
                ..EngineConfig::default()
            },
            UnitCost,
        )
        .run()
        .expect("engine terminates");

        let cfg = EngineConfig {
            num_slaves: slaves,
            cross_check_commits: true,
            ..EngineConfig::default()
        };
        let run = run_threaded(program, d, cfg).expect("threaded terminates");

        // State: threaded == engine == sequential, including memory.
        assert_eq!(
            run.state.reg(Reg::S1),
            seq.state().reg(Reg::S1),
            "{label}: s1, {slaves} workers"
        );
        assert_eq!(run.state.pc(), seq.state().pc(), "{label}: pc");
        let sp = seq.state().reg(Reg::SP);
        for w in ((sp - 64) >> 3)..(sp >> 3) {
            assert_eq!(
                run.state.load_word(w),
                seq.state().load_word(w),
                "{label}: stack word {w}, {slaves} workers"
            );
        }
        assert_eq!(run.state.reg(Reg::S1), reference.state.reg(Reg::S1));

        // Commit counts, in instruction terms.
        assert_eq!(
            run.stats.committed_instructions,
            seq.instructions(),
            "{label}: committed instructions, {slaves} workers"
        );
        assert_eq!(
            run.stats.committed_instructions,
            reference.stats.committed_instructions
        );

        // Squash-reason histogram: forced by architected state, which
        // both executors walk identically.
        assert_eq!(
            squash_histogram(&run.stats),
            squash_histogram(&reference.stats),
            "{label}: squash histogram, {slaves} workers"
        );
    }
}

#[test]
fn memory_recurrence_flows_through_the_committed_view() {
    // Each iteration reads -8(sp) written by the previous one: every
    // task's live-ins include its predecessor's freshest write, which
    // the worker can only have observed through the pooled committed
    // view shipped at dispatch.
    let program = assemble(
        "main:  addi s0, zero, 400
         loop:  ld   t0, -8(sp)
                add  t0, t0, s0
                sd   t0, -8(sp)
                add  s1, s1, t0
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    assert_differential(&program, &d, "memory recurrence");
}

#[test]
fn long_run_cycles_snapshots_compaction_and_arena_recycling() {
    // Thousands of commits: far past MAX_PENDING_DELTAS, so the
    // coordinator materializes snapshots, compacts the commit log, and
    // recycles pooled deltas hundreds of times over.
    let program = assemble(
        "main:  addi s0, zero, 3000
         loop:  add  s1, s1, s0
                mul  t0, s0, s0
                add  s1, s1, t0
                sd   s1, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();

    for slaves in WORKER_COUNTS {
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        // The run must actually have exercised the snapshot/delta cycle.
        assert!(
            run.stats.snapshots_materialized > 2,
            "{slaves} workers: expected repeated materialization, got {:?}",
            run.stats
        );
        assert!(run.stats.deltas_published > run.stats.snapshots_materialized);
    }
}

#[test]
fn adversarial_master_squashes_identically_across_executors() {
    // The master asserts the odd arm unconditionally — wrong whenever
    // the original takes the even arm — driving constant squash and
    // recovery through the ring/arena reclamation paths.
    let program = assemble(
        "main:  addi s0, zero, 300
         loop:  andi t0, s0, 1
                beqz t0, even
                addi s1, s1, 3
                j    next
         even:  addi s1, s1, 7
         next:  sd   s1, -16(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let wrong = assemble(
        "main:  addi s0, zero, 300
         loop:  addi s1, s1, 3
                addi s0, s0, -1
                j    loop",
    )
    .unwrap();
    let mut map = BTreeMap::new();
    map.insert(program.entry(), wrong.entry());
    map.insert(
        program.symbol("loop").unwrap(),
        wrong.symbol("loop").unwrap(),
    );
    let d = Distilled::from_parts(
        wrong,
        BTreeSet::from([program.symbol("loop").unwrap()]),
        map,
    );
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    // The fixture must be squash-heavy for the comparison to mean much.
    let probe = run_threaded(
        &program,
        &d,
        EngineConfig {
            num_slaves: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(probe.stats.squashed_tasks > 0, "fixture must squash");
    assert_differential(&program, &d, "adversarial master");
}
