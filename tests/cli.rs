//! End-to-end tests of the `mssp` command-line tool.

use std::process::Command;

fn mssp(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mssp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn workloads_lists_the_suite() {
    let (stdout, _, ok) = mssp(&["workloads"]);
    assert!(ok);
    for name in ["gzip_like", "eon_like", "twolf_like"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn run_reports_checksum() {
    let (stdout, _, ok) = mssp(&["run", "gap_like", "300"]);
    assert!(ok);
    assert!(stdout.contains("checksum(s1):"));
    assert!(stdout.contains("instructions:"));
}

#[test]
fn asm_accepts_a_source_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("mssp_cli_test.s");
    std::fs::write(&path, "main: addi a0, zero, 5\n halt\n").unwrap();
    let (stdout, _, ok) = mssp(&["asm", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("addi a0, zero, 5"));
}

#[test]
fn profile_shows_branch_summary() {
    let (stdout, _, ok) = mssp(&["profile", "mcf_like"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("weighted branch bias"));
    assert!(stdout.contains("hottest branches"));
}

#[test]
fn distill_prints_all_levels() {
    let (stdout, _, ok) = mssp(&["distill", "gap_like"]);
    assert!(ok);
    for level in ["none", "conservative", "aggressive"] {
        assert!(stdout.contains(level), "missing {level}");
    }
}

#[test]
fn distill_stats_prints_per_pass_deltas() {
    let (stdout, _, ok) = mssp(&["distill", "gap_like", "--stats"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("pass pipeline (aggressive):"), "{stdout}");
    for pass in ["const-fold", "copy-prop", "dce", "jump-thread"] {
        assert!(stdout.contains(pass), "missing {pass} delta: {stdout}");
    }
    assert!(stdout.contains("iterations"), "{stdout}");
}

#[test]
fn lint_is_clean_on_a_workload() {
    let (stdout, _, ok) = mssp(&["lint", "gzip_like"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("== gzip_like =="));
    assert!(stdout.contains("0 errors"));
}

#[test]
fn lint_all_emits_json_per_workload() {
    let (stdout, _, ok) = mssp(&["lint", "all", "--json"]);
    assert!(ok, "{stdout}");
    // One JSON object per bundled workload, all error-free.
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines.len() >= 10, "expected every workload, got {lines:?}");
    for line in lines {
        assert!(line.starts_with("{\"target\":\""), "{line}");
        assert!(line.contains("\"errors\":0"), "{line}");
    }
}

#[test]
fn lint_rejects_unknown_target() {
    let (_, stderr, ok) = mssp(&["lint", "no_such_thing"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn unknown_target_fails_cleanly() {
    let (_, stderr, ok) = mssp(&["run", "no_such_thing"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn missing_subcommand_prints_usage() {
    let (_, stderr, ok) = mssp(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}
