//! End-to-end equivalence: for every workload and every distillation
//! level, the MSSP machine's committed architected state must equal the
//! sequential machine's — the jumping-refinement theorem, executed.

use mssp::prelude::*;

fn seq_checksum(program: &Program) -> (u64, u64) {
    let mut m = SeqMachine::boot(program);
    m.run(u64::MAX).expect("workloads do not fault");
    (m.state().reg(CHECKSUM_REG), m.instructions())
}

#[test]
fn all_workloads_all_levels_match_sequential() {
    for w in workloads() {
        let program = w.program(1_500);
        let (expected, seq_instrs) = seq_checksum(&program);
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        for level in DistillLevel::all() {
            let d = distill(&program, &profile, &DistillConfig::at_level(level)).unwrap();
            let run = Engine::new(&program, &d, EngineConfig::default(), UnitCost)
                .run()
                .unwrap_or_else(|e| panic!("{} @{level}: {e}", w.name));
            assert_eq!(
                run.state.reg(CHECKSUM_REG),
                expected,
                "{} @{level}: wrong checksum",
                w.name
            );
            assert_eq!(
                run.stats.committed_instructions, seq_instrs,
                "{} @{level}: committed instruction count diverges",
                w.name
            );
        }
    }
}

#[test]
fn slave_count_never_affects_results() {
    for w in workloads() {
        let program = w.program(800);
        let (expected, _) = seq_checksum(&program);
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
        for slaves in [1, 2, 3, 8, 16] {
            let cfg = EngineConfig {
                num_slaves: slaves,
                ..EngineConfig::default()
            };
            let run = Engine::new(&program, &d, cfg, UnitCost).run().unwrap();
            assert_eq!(
                run.state.reg(CHECKSUM_REG),
                expected,
                "{} with {slaves} slaves",
                w.name
            );
        }
    }
}

#[test]
fn timing_model_never_affects_results() {
    for w in workloads() {
        let program = w.program(800);
        let (expected, _) = seq_checksum(&program);
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
        let timed = run_mssp(&program, &d, &TimingConfig::default()).unwrap();
        assert_eq!(
            timed.run.state.reg(CHECKSUM_REG),
            expected,
            "{} under detailed timing",
            w.name
        );
        let functional = Engine::new(&program, &d, EngineConfig::default(), UnitCost)
            .run()
            .unwrap();
        // Cost-model independence of committed state, bit for bit.
        assert_eq!(
            functional.state.reg(CHECKSUM_REG),
            timed.run.state.reg(CHECKSUM_REG),
            "{}",
            w.name
        );
    }
}

#[test]
fn task_size_never_affects_results() {
    for w in workloads().iter().take(4) {
        let program = w.program(800);
        let (expected, _) = seq_checksum(&program);
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        for target in [16, 64, 512, 4096] {
            let dcfg = DistillConfig {
                target_task_size: target,
                ..DistillConfig::default()
            };
            let d = distill(&program, &profile, &dcfg).unwrap();
            let run = Engine::new(&program, &d, EngineConfig::default(), UnitCost)
                .run()
                .unwrap();
            assert_eq!(
                run.state.reg(CHECKSUM_REG),
                expected,
                "{} at task size {target}",
                w.name
            );
        }
    }
}
