//! Byte-granular verification: adjacent tasks writing different bytes of
//! the same word must not squash each other (false sharing), and partial
//! writes must commit exactly.

use mssp::prelude::*;

/// Each loop iteration stores one byte; consecutive iterations hit
/// consecutive bytes, so tasks share words at their boundaries.
const BYTE_WRITER: &str = "
    main:  li   s2, 0x300000
           addi s0, zero, 4000
    loop:  andi t0, s0, 255
           add  t1, s2, s0
           sb   t0, 0(t1)
           add  s1, s1, t0
           addi s0, s0, -1
           bnez s0, loop
           halt";

#[test]
fn byte_writes_commit_exactly() {
    let p = assemble(BYTE_WRITER).unwrap();
    let mut seq = SeqMachine::boot(&p);
    seq.run(u64::MAX).unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let dcfg = DistillConfig {
        target_task_size: 24, // tiny tasks: maximize word sharing
        ..DistillConfig::default()
    };
    let d = distill(&p, &profile, &dcfg).unwrap();
    let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
    for w in (0x300000u64 >> 3)..((0x300000 + 4008) >> 3) {
        assert_eq!(
            run.state.load_word(w),
            seq.state().load_word(w),
            "word {w:#x}"
        );
    }
}

#[test]
fn byte_writes_do_not_false_share_under_timing() {
    let p = assemble(BYTE_WRITER).unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let dcfg = DistillConfig {
        target_task_size: 24,
        ..DistillConfig::default()
    };
    let d = distill(&p, &profile, &dcfg).unwrap();
    let run = run_mssp(&p, &d, &TimingConfig::default()).unwrap();
    let s = &run.run.stats;
    // With byte-masked live-ins there is no systematic word-boundary
    // conflict: squashes should be negligible.
    assert!(
        s.squash_events() <= 3,
        "false sharing suspected: {} squashes over {} tasks",
        s.squash_events(),
        s.spawned_tasks
    );
}

#[test]
fn unaligned_word_straddles_are_exact() {
    // Stores an 8-byte value at an odd address every iteration, straddling
    // two words; verifies bit-exact commit.
    let p = assemble(
        "main:  li   s2, 0x300001
                addi s0, zero, 500
         loop:  mul  t0, s0, s0
                sd   t0, 0(s2)
                ld   t1, 0(s2)
                add  s1, s1, t1
                addi s2, s2, 16
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let mut seq = SeqMachine::boot(&p);
    seq.run(u64::MAX).unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
}
