//! Property-based end-to-end equivalence: random structured programs
//! (nested loops, data-dependent branches, memory traffic) run under MSSP
//! with random engine configurations must commit exactly the sequential
//! machine's state. This is the strongest correctness net in the suite:
//! it exercises distillation, task grouping, squash/recovery and the
//! verify unit against arbitrary program shapes.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

mod common;

use common::arb_loop_nest;
use mssp::prelude::*;
use mssp_testkit::check;

#[test]
fn random_programs_commit_sequential_state() {
    check(0xF022_0001, 48, |rng| {
        let src = arb_loop_nest(rng);
        let slaves = rng.gen_index(1, 9);
        let target = *rng.choose(&[8u64, 64, 256, 1024]);
        let level = *rng.choose(&[
            DistillLevel::None,
            DistillLevel::Conservative,
            DistillLevel::Aggressive,
        ]);

        let program = assemble(&src).expect("generated programs assemble");
        let mut seq = SeqMachine::boot(&program);
        seq.run(20_000_000).expect("no faults");
        assert!(seq.halted(), "generated programs halt within bound");

        let profile = Profile::collect(&program, u64::MAX).expect("profiles");
        let dcfg = DistillConfig {
            level,
            target_task_size: target,
            ..DistillConfig::default()
        };
        let d = distill(&program, &profile, &dcfg).expect("distills");
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(&program, &d, cfg, UnitCost);
        engine.enable_commit_trace();
        let run = engine.run().expect("terminates");
        // Independent oracle: the full jumping-refinement check.
        check_refinement(&program, &run).expect("refinement holds");

        // Full-state equivalence: registers and all touched memory.
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert_eq!(run.state.reg(Reg::S3), seq.state().reg(Reg::S3));
        for w in (0x300000u64 >> 3)..(0x300000u64 >> 3) + 64 {
            assert_eq!(run.state.load_word(w), seq.state().load_word(w));
        }
        assert_eq!(run.stats.committed_instructions, seq.instructions());
    });
}

/// Differential fuzz over the optimizing pass pipeline: whatever subset of
/// passes runs, the architected state MSSP commits must be exactly the
/// sequential machine's. A pass whose output diverges only in *speed*
/// costs squashes; one that diverges in committed state is a correctness
/// bug this test exists to catch.
#[test]
fn pass_ablations_commit_identical_state() {
    let variants: [PassConfig; 6] = [
        PassConfig::all(),
        PassConfig {
            const_fold: false,
            ..PassConfig::all()
        },
        PassConfig {
            copy_prop: false,
            ..PassConfig::all()
        },
        PassConfig {
            dce: false,
            ..PassConfig::all()
        },
        PassConfig {
            jump_thread: false,
            ..PassConfig::all()
        },
        PassConfig::dce_only(),
    ];
    check(0xF022_0002, 16, |rng| {
        let src = arb_loop_nest(rng);
        let target = *rng.choose(&[8u64, 64, 256]);
        let program = assemble(&src).expect("generated programs assemble");
        let mut seq = SeqMachine::boot(&program);
        seq.run(20_000_000).expect("no faults");
        assert!(seq.halted(), "generated programs halt within bound");
        let profile = Profile::collect(&program, u64::MAX).expect("profiles");

        for passes in variants {
            let dcfg = DistillConfig {
                target_task_size: target,
                passes,
                ..DistillConfig::default()
            };
            let d = distill(&program, &profile, &dcfg).expect("distills");
            let mut engine = Engine::new(&program, &d, EngineConfig::default(), UnitCost);
            engine.enable_commit_trace();
            let run = engine.run().expect("terminates");
            check_refinement(&program, &run).expect("refinement holds");
            assert_eq!(
                run.state.reg(Reg::S1),
                seq.state().reg(Reg::S1),
                "checksum diverged under {passes:?}"
            );
            assert_eq!(
                run.state.reg(Reg::S3),
                seq.state().reg(Reg::S3),
                "S3 diverged under {passes:?}"
            );
            for w in (0x300000u64 >> 3)..(0x300000u64 >> 3) + 64 {
                assert_eq!(
                    run.state.load_word(w),
                    seq.state().load_word(w),
                    "memory diverged under {passes:?}"
                );
            }
            assert_eq!(run.stats.committed_instructions, seq.instructions());
        }
    });
}
