//! Property-based end-to-end equivalence: random structured programs
//! (nested loops, data-dependent branches, memory traffic) run under MSSP
//! with random engine configurations must commit exactly the sequential
//! machine's state. This is the strongest correctness net in the suite:
//! it exercises distillation, task grouping, squash/recovery and the
//! verify unit against arbitrary program shapes.

use mssp::prelude::*;
use proptest::prelude::*;

/// Generates a random but well-formed two-level loop nest with
/// data-dependent branches and stack traffic.
fn arb_program() -> impl Strategy<Value = String> {
    (
        2u64..40,            // outer trip count
        1u64..20,            // inner trip count
        0u64..4,             // number of conditional diamonds
        any::<u16>(),        // seed-ish constant
        proptest::collection::vec(0u8..6, 1..8), // body ops
    )
        .prop_map(|(outer, inner, diamonds, seed, body)| {
            let mut src = String::new();
            src.push_str(&format!(
                "main:\n  addi s0, zero, {outer}\n  li   s2, 0x300000\n  li   s3, {seed}\n"
            ));
            src.push_str("outer:\n  addi s4, zero, ");
            src.push_str(&format!("{inner}\n"));
            src.push_str("inner:\n");
            for (i, op) in body.iter().enumerate() {
                match op {
                    0 => src.push_str("  add  s1, s1, s3\n"),
                    1 => src.push_str("  mul  s3, s3, s0\n  addi s3, s3, 7\n"),
                    2 => src.push_str(&format!(
                        "  sd   s1, {}(s2)\n  ld   t1, {}(s2)\n  add  s1, s1, t1\n",
                        i * 8,
                        i * 8
                    )),
                    3 => src.push_str("  xor  s3, s3, s1\n"),
                    4 => src.push_str(&format!(
                        "  andi t2, s3, 1\n  beqz t2, skip{i}\n  addi s1, s1, 3\nskip{i}:\n"
                    )),
                    _ => src.push_str(&format!("  sb   s1, {}(s2)\n", 256 + i)),
                }
            }
            for d in 0..diamonds {
                src.push_str(&format!(
                    "  andi t3, s1, {}\n  bnez t3, d{d}\n  addi s3, s3, 1\nd{d}:\n",
                    (1 << (d + 1)) - 1
                ));
            }
            src.push_str(
                "  addi s4, s4, -1\n  bnez s4, inner\n  addi s0, s0, -1\n  bnez s0, outer\n  halt\n",
            );
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_commit_sequential_state(
        src in arb_program(),
        slaves in 1usize..9,
        target in prop_oneof![Just(8u64), Just(64), Just(256), Just(1024)],
        level in prop_oneof![
            Just(DistillLevel::None),
            Just(DistillLevel::Conservative),
            Just(DistillLevel::Aggressive),
        ],
    ) {
        let program = assemble(&src).expect("generated programs assemble");
        let mut seq = SeqMachine::boot(&program);
        seq.run(20_000_000).expect("no faults");
        prop_assume!(seq.halted());

        let profile = Profile::collect(&program, u64::MAX).expect("profiles");
        let dcfg = DistillConfig {
            level,
            target_task_size: target,
            ..DistillConfig::default()
        };
        let d = distill(&program, &profile, &dcfg).expect("distills");
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(&program, &d, cfg, UnitCost);
        engine.enable_commit_trace();
        let run = engine.run().expect("terminates");
        // Independent oracle: the full jumping-refinement check.
        check_refinement(&program, &run).expect("refinement holds");

        // Full-state equivalence: registers and all touched memory.
        prop_assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        prop_assert_eq!(run.state.reg(Reg::S3), seq.state().reg(Reg::S3));
        for w in (0x300000u64 >> 3)..(0x300000u64 >> 3) + 64 {
            prop_assert_eq!(run.state.load_word(w), seq.state().load_word(w));
        }
        prop_assert_eq!(run.stats.committed_instructions, seq.instructions());
    }
}
