//! Property-based equivalence for the threaded executor: across random
//! structured programs and worker counts {1, 2, 4, 8}, `run_threaded`
//! must commit exactly the sequential machine's state — registers and all
//! touched memory. A second suite feeds it adversarially mis-distilled
//! programs (wrong asserted branches) so the squash/recovery path runs
//! under real thread interleavings.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::arb_loop_nest;
use mssp::core::{run_threaded, EngineConfig};
use mssp::prelude::*;
use mssp_testkit::check;

#[test]
fn threaded_random_programs_commit_sequential_state() {
    check(0x7EAD_0001, 24, |rng| {
        let src = arb_loop_nest(rng);
        let slaves = *rng.choose(&[1usize, 2, 4, 8]);
        let target = *rng.choose(&[8u64, 64, 256]);
        let level = *rng.choose(&[
            DistillLevel::None,
            DistillLevel::Conservative,
            DistillLevel::Aggressive,
        ]);

        let program = assemble(&src).expect("generated programs assemble");
        let mut seq = SeqMachine::boot(&program);
        seq.run(20_000_000).expect("no faults");
        assert!(seq.halted(), "generated programs halt within bound");

        let profile = Profile::collect(&program, u64::MAX).expect("profiles");
        let dcfg = DistillConfig {
            level,
            target_task_size: target,
            ..DistillConfig::default()
        };
        let d = distill(&program, &profile, &dcfg).expect("distills");
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");

        // Full-state equivalence: registers and all touched memory.
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert_eq!(run.state.reg(Reg::S3), seq.state().reg(Reg::S3));
        assert_eq!(run.state.pc(), seq.state().pc());
        for w in (0x300000u64 >> 3)..(0x300000u64 >> 3) + 64 {
            assert_eq!(run.state.load_word(w), seq.state().load_word(w));
        }
    });
}

#[test]
fn threaded_survives_wrong_asserted_branches() {
    // An adversarial distillation: the "distilled" program takes the
    // *opposite* branch of the original at the diamond, so its overlay
    // predictions (and spawn PCs after the first commit) are routinely
    // wrong. Every mis-prediction must be caught by verify, squashed, and
    // repaired by recovery — on every worker count.
    let program = assemble(
        "main:  addi s0, zero, 500
         loop:  andi t0, s0, 1
                beqz t0, even
                addi s1, s1, 3
                j    next
         even:  addi s1, s1, 7
         next:  addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    let expected = seq.state().reg(Reg::S1);

    // Master asserts the branch is *always* taken (always the odd arm) —
    // wrong half the time — and never decrements, so it predicts a wrong
    // s1 evolution and wrong loop exit forever.
    let wrong = assemble(
        "main:  addi s0, zero, 500
         loop:  addi s1, s1, 3
                addi s0, s0, -1
                j    loop",
    )
    .unwrap();
    let mut map = BTreeMap::new();
    map.insert(program.entry(), wrong.entry());
    map.insert(
        program.symbol("loop").unwrap(),
        wrong.symbol("loop").unwrap(),
    );
    let d = Distilled::from_parts(
        wrong,
        BTreeSet::from([program.symbol("loop").unwrap()]),
        map,
    );

    check(0x7EAD_0002, 8, |rng| {
        let slaves = *rng.choose(&[1usize, 2, 4, 8]);
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), expected, "{slaves} workers");
        // The mis-distillation must actually have exercised the
        // squash/recovery machinery, not been silently ignored.
        assert!(
            run.stats.squashed_tasks > 0 || run.stats.recovery_segments > 0,
            "adversarial distillation never triggered a squash or recovery"
        );
    });
}

#[test]
fn fast_path_matches_engine_on_squash_heavy_wrong_branch_fuzz() {
    // Differential test for the O(delta) commit pipeline: on adversarial
    // distillations whose overlay predictions are wrong roughly half the
    // time (squash-heavy by construction), the threaded fast path must
    // agree with the discrete `Engine` on final state, committed
    // instruction count, and the squash-reason histogram at 1/2/4/8
    // workers. `cross_check_commits` additionally replays every single
    // verify/commit decision through the shared `verify_and_commit`
    // oracle *in-run* and panics on any divergence in verdict or
    // committed state — the per-decision guarantee the end-of-run
    // comparison cannot give.
    check(0x7EAD_0003, 6, |rng| {
        let iters = 100 + 37 * rng.gen_index(0, 12) as u64;
        let src = format!(
            "main:  addi s0, zero, {iters}
             loop:  andi t0, s0, 1
                    beqz t0, even
                    addi s1, s1, 3
                    j    next
             even:  addi s1, s1, 7
             next:  sd   s1, -16(sp)
                    addi s0, s0, -1
                    bnez s0, loop
                    halt"
        );
        let program = assemble(&src).expect("fixture assembles");
        let mut seq = SeqMachine::boot(&program);
        seq.run(u64::MAX).unwrap();

        // The master asserts the odd arm unconditionally: its predicted
        // s1 evolution is wrong whenever the original takes the even arm.
        let wrong = assemble(&format!(
            "main:  addi s0, zero, {iters}
             loop:  addi s1, s1, 3
                    addi s0, s0, -1
                    j    loop"
        ))
        .unwrap();
        let mut map = BTreeMap::new();
        map.insert(program.entry(), wrong.entry());
        map.insert(
            program.symbol("loop").unwrap(),
            wrong.symbol("loop").unwrap(),
        );
        let d = Distilled::from_parts(
            wrong,
            BTreeSet::from([program.symbol("loop").unwrap()]),
            map,
        );
        let stack_widx = (seq.state().reg(Reg::SP) - 16) >> 3;

        for slaves in [1usize, 2, 4, 8] {
            let reference = Engine::new(
                &program,
                &d,
                EngineConfig {
                    num_slaves: slaves,
                    ..EngineConfig::default()
                },
                UnitCost,
            )
            .run()
            .expect("engine terminates");
            let ref_hist = [
                reference.stats.squashes_wrong_path,
                reference.stats.squashes_live_in,
                reference.stats.squashes_overrun,
                reference.stats.squashes_fault,
            ];
            assert!(
                ref_hist.iter().sum::<u64>() > 0,
                "fixture must be squash-heavy ({iters} iters, {slaves} workers)"
            );

            let cfg = EngineConfig {
                num_slaves: slaves,
                cross_check_commits: true,
                ..EngineConfig::default()
            };
            let run = run_threaded(&program, &d, cfg).expect("terminates");

            // Identical final state: threaded == engine == sequential.
            assert_eq!(run.state.reg(Reg::S0), seq.state().reg(Reg::S0));
            assert_eq!(
                run.state.reg(Reg::S1),
                seq.state().reg(Reg::S1),
                "{slaves} workers, {iters} iters"
            );
            assert_eq!(run.state.pc(), seq.state().pc());
            assert_eq!(
                run.state.load_word(stack_widx),
                seq.state().load_word(stack_widx)
            );
            assert_eq!(run.state.reg(Reg::S1), reference.state.reg(Reg::S1));

            // Identical commit counts, in instruction terms: every
            // committed instruction is exactly one sequential instruction
            // in both executors.
            assert_eq!(run.stats.committed_instructions, seq.instructions());
            assert_eq!(
                run.stats.committed_instructions,
                reference.stats.committed_instructions
            );

            // Identical squash-reason histograms: the commit/squash
            // alternation is forced by architected state, which both
            // executors walk identically.
            let hist = [
                run.stats.squashes_wrong_path,
                run.stats.squashes_live_in,
                run.stats.squashes_overrun,
                run.stats.squashes_fault,
            ];
            assert_eq!(hist, ref_hist, "{slaves} workers, {iters} iters");
        }
    });
}
