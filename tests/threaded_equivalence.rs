//! Property-based equivalence for the threaded executor: across random
//! structured programs and worker counts {1, 2, 4, 8}, `run_threaded`
//! must commit exactly the sequential machine's state — registers and all
//! touched memory. A second suite feeds it adversarially mis-distilled
//! programs (wrong asserted branches) so the squash/recovery path runs
//! under real thread interleavings.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::arb_loop_nest;
use mssp::core::{run_threaded, EngineConfig};
use mssp::prelude::*;
use mssp_testkit::check;

#[test]
fn threaded_random_programs_commit_sequential_state() {
    check(0x7EAD_0001, 24, |rng| {
        let src = arb_loop_nest(rng);
        let slaves = *rng.choose(&[1usize, 2, 4, 8]);
        let target = *rng.choose(&[8u64, 64, 256]);
        let level = *rng.choose(&[
            DistillLevel::None,
            DistillLevel::Conservative,
            DistillLevel::Aggressive,
        ]);

        let program = assemble(&src).expect("generated programs assemble");
        let mut seq = SeqMachine::boot(&program);
        seq.run(20_000_000).expect("no faults");
        assert!(seq.halted(), "generated programs halt within bound");

        let profile = Profile::collect(&program, u64::MAX).expect("profiles");
        let dcfg = DistillConfig {
            level,
            target_task_size: target,
            ..DistillConfig::default()
        };
        let d = distill(&program, &profile, &dcfg).expect("distills");
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");

        // Full-state equivalence: registers and all touched memory.
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert_eq!(run.state.reg(Reg::S3), seq.state().reg(Reg::S3));
        assert_eq!(run.state.pc(), seq.state().pc());
        for w in (0x300000u64 >> 3)..(0x300000u64 >> 3) + 64 {
            assert_eq!(run.state.load_word(w), seq.state().load_word(w));
        }
    });
}

#[test]
fn threaded_survives_wrong_asserted_branches() {
    // An adversarial distillation: the "distilled" program takes the
    // *opposite* branch of the original at the diamond, so its overlay
    // predictions (and spawn PCs after the first commit) are routinely
    // wrong. Every mis-prediction must be caught by verify, squashed, and
    // repaired by recovery — on every worker count.
    let program = assemble(
        "main:  addi s0, zero, 500
         loop:  andi t0, s0, 1
                beqz t0, even
                addi s1, s1, 3
                j    next
         even:  addi s1, s1, 7
         next:  addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    let expected = seq.state().reg(Reg::S1);

    // Master asserts the branch is *always* taken (always the odd arm) —
    // wrong half the time — and never decrements, so it predicts a wrong
    // s1 evolution and wrong loop exit forever.
    let wrong = assemble(
        "main:  addi s0, zero, 500
         loop:  addi s1, s1, 3
                addi s0, s0, -1
                j    loop",
    )
    .unwrap();
    let mut map = BTreeMap::new();
    map.insert(program.entry(), wrong.entry());
    map.insert(
        program.symbol("loop").unwrap(),
        wrong.symbol("loop").unwrap(),
    );
    let d = Distilled::from_parts(
        wrong,
        BTreeSet::from([program.symbol("loop").unwrap()]),
        map,
    );

    check(0x7EAD_0002, 8, |rng| {
        let slaves = *rng.choose(&[1usize, 2, 4, 8]);
        let cfg = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).expect("terminates");
        assert_eq!(run.state.reg(Reg::S1), expected, "{slaves} workers");
        // The mis-distillation must actually have exercised the
        // squash/recovery machinery, not been silently ignored.
        assert!(
            run.stats.squashed_tasks > 0 || run.stats.recovery_segments > 0,
            "adversarial distillation never triggered a squash or recovery"
        );
    });
}
