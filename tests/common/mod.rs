//! Shared random-program generation for the workspace equivalence
//! suites, seeded via `mssp-testkit`.

use mssp_testkit::Rng;

/// Generates a random but well-formed two-level loop nest with
/// data-dependent branches and stack/heap memory traffic. Every
/// generated program halts.
pub fn arb_loop_nest(rng: &mut Rng) -> String {
    let outer = rng.gen_range(2, 40);
    let inner = rng.gen_range(1, 20);
    let diamonds = rng.gen_range(0, 4);
    let seed = rng.next_u64() as u16;
    let body_len = rng.gen_range(1, 8);
    let body: Vec<u64> = (0..body_len).map(|_| rng.gen_range(0, 6)).collect();

    let mut src = String::new();
    src.push_str(&format!(
        "main:\n  addi s0, zero, {outer}\n  li   s2, 0x300000\n  li   s3, {seed}\n"
    ));
    src.push_str(&format!("outer:\n  addi s4, zero, {inner}\n"));
    src.push_str("inner:\n");
    for (i, op) in body.iter().enumerate() {
        match op {
            0 => src.push_str("  add  s1, s1, s3\n"),
            1 => src.push_str("  mul  s3, s3, s0\n  addi s3, s3, 7\n"),
            2 => src.push_str(&format!(
                "  sd   s1, {}(s2)\n  ld   t1, {}(s2)\n  add  s1, s1, t1\n",
                i * 8,
                i * 8
            )),
            3 => src.push_str("  xor  s3, s3, s1\n"),
            4 => src.push_str(&format!(
                "  andi t2, s3, 1\n  beqz t2, skip{i}\n  addi s1, s1, 3\nskip{i}:\n"
            )),
            _ => src.push_str(&format!("  sb   s1, {}(s2)\n", 256 + i)),
        }
    }
    for d in 0..diamonds {
        src.push_str(&format!(
            "  andi t3, s1, {}\n  bnez t3, d{d}\n  addi s3, s3, 1\nd{d}:\n",
            (1u64 << (d + 1)) - 1
        ));
    }
    src.push_str(
        "  addi s4, s4, -1\n  bnez s4, inner\n  addi s0, s0, -1\n  bnez s0, outer\n  halt\n",
    );
    src
}
