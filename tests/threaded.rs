//! The threaded executor (real OS-thread slaves) must commit exactly the
//! sequential state for every workload, any worker count — MSSP's
//! correctness does not depend on scheduling.

use mssp::core::{run_threaded, EngineConfig};
use mssp::prelude::*;

#[test]
fn threaded_matches_sequential_for_all_workloads() {
    for w in workloads() {
        let program = w.program(1_000);
        let mut seq = SeqMachine::boot(&program);
        seq.run(u64::MAX).unwrap();
        let profile = Profile::collect(&program, u64::MAX).unwrap();
        let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
        let run = run_threaded(&program, &d, EngineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            run.state.reg(CHECKSUM_REG),
            seq.state().reg(CHECKSUM_REG),
            "{} diverged under the threaded executor",
            w.name
        );
    }
}

#[test]
fn threaded_worker_count_does_not_affect_state() {
    let w = Workload::by_name("vortex_like").unwrap();
    let program = w.program(2_000);
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    let expected = seq.state().reg(CHECKSUM_REG);
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    for workers in [1usize, 2, 4, 8] {
        let cfg = EngineConfig {
            num_slaves: workers,
            ..EngineConfig::default()
        };
        let run = run_threaded(&program, &d, cfg).unwrap();
        assert_eq!(run.state.reg(CHECKSUM_REG), expected, "{workers} workers");
    }
}

#[test]
fn threaded_survives_garbage_master() {
    use std::collections::{BTreeMap, BTreeSet};
    let program = assemble(
        "main: addi s0, zero, 400
         loop: add  s1, s1, s0
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).unwrap();
    let garbage = assemble("main: addi s1, s1, 1\n evil: addi s0, s0, 3\n j evil").unwrap();
    let mut map = BTreeMap::new();
    map.insert(program.entry(), garbage.entry());
    map.insert(program.entry() + 4, garbage.symbol("evil").unwrap());
    let d = Distilled::from_parts(garbage, BTreeSet::from([program.entry() + 4]), map);
    let run = run_threaded(&program, &d, EngineConfig::default()).unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
}
