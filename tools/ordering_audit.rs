//! Ordering audit: every `Ordering::` use on the transport hot path must
//! justify itself.
//!
//! The lock-free files (`ring.rs`, `chan.rs`, `threaded.rs`, and the
//! arena) encode their correctness argument in memory orderings, and an
//! ordering without a rationale is exactly the kind of line a later
//! refactor weakens "because the test still passed". This test walks the
//! audited files and fails if any code line mentioning `Ordering::` lacks
//! a `// why:` comment — on the same line, or anywhere in the contiguous
//! comment block immediately above it.
//!
//! The model checker (`crates/check`) proves the orderings are sufficient;
//! this audit keeps the human-readable argument attached to each one.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Files under the workspace root whose `Ordering::` uses are audited.
const AUDITED: &[&str] = &[
    "crates/core/src/ring.rs",
    "crates/core/src/chan.rs",
    "crates/core/src/threaded.rs",
    "crates/core/src/adaptive.rs",
    "crates/machine/src/arena.rs",
];

/// True when the code portion of `line` (text left of any `//`) uses an
/// `Ordering::` variant. Mentions inside comments or docs don't count.
fn code_uses_ordering(line: &str) -> bool {
    let code = match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    };
    code.contains("Ordering::")
}

fn has_why(line: &str) -> bool {
    line.contains("// why:")
}

/// True when the contiguous run of comment-only lines directly above
/// `idx` contains a `// why:` marker (multi-line justifications put the
/// marker at the top of the block).
fn block_above_has_why(lines: &[&str], idx: usize) -> bool {
    lines[..idx]
        .iter()
        .rev()
        .take_while(|prev| prev.trim_start().starts_with("//"))
        .any(|prev| has_why(prev))
}

#[test]
fn every_hot_path_ordering_has_a_why_comment() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = String::new();
    let mut audited_uses = 0usize;

    for rel in AUDITED {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("ordering_audit: cannot read {}: {e}", path.display()));
        let lines: Vec<&str> = text.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if !code_uses_ordering(line) {
                continue;
            }
            audited_uses += 1;
            let justified = has_why(line) || block_above_has_why(&lines, idx);
            if !justified {
                writeln!(violations, "  {}:{}: {}", rel, idx + 1, line.trim()).unwrap();
            }
        }
    }

    assert!(
        violations.is_empty(),
        "Ordering:: uses without an adjacent `// why:` justification \
         (same line or in the comment block above):\n{violations}\
         Every memory ordering on the audited hot path must state what \
         it synchronizes with; see DESIGN.md §6d for the model."
    );

    // The audit must be looking at real uses — if the hot path ever moves
    // and these files stop containing orderings, this test should be
    // re-pointed rather than silently passing on nothing.
    assert!(
        audited_uses >= 10,
        "ordering_audit: only {audited_uses} Ordering:: uses found across \
         audited files; the audit list in tools/ordering_audit.rs is stale"
    );
}
