//! The formal model, interactively: superimposition, consistency, task
//! safety (Theorem 2 of the companion verification paper), and the
//! jumping refinement — demonstrated on concrete states rather than
//! proved on abstract ones.
//!
//! Run with: `cargo run --release --example formal_model`

use mssp::core::check_refinement;
use mssp::machine::{cumulative_writes, seq_n, Cell, Delta};
use mssp::prelude::*;

fn main() {
    // ---- Definition 8: superimposition algebra --------------------------
    let s1: Delta = [(Cell::Mem(0), 1u64), (Cell::Mem(1), 2)]
        .into_iter()
        .collect();
    let s2: Delta = [(Cell::Mem(1), 9u64), (Cell::Mem(2), 3)]
        .into_iter()
        .collect();
    let s3: Delta = [(Cell::Mem(2), 4u64), (Cell::Pc, 0x40)]
        .into_iter()
        .collect();
    assert_eq!(
        s1.superimpose(&s2).superimpose(&s3),
        s1.superimpose(&s2.superimpose(&s3)),
    );
    println!("Definition 8.1 (associativity): (S1<-S2)<-S3 == S1<-(S2<-S3)   OK");

    let sub: Delta = [(Cell::Mem(1), 2u64)].into_iter().collect();
    assert!(sub.consistent_with(&s1));
    assert_eq!(s1.superimpose(&sub), s1);
    println!("Definition 8.3 (idempotency):   S2 (= S1  =>  S1<-S2 == S1     OK");

    // ---- Lemma 3: seq(S, n) = S <- delta(S, n) --------------------------
    let program = assemble(
        "main:  addi s0, zero, 40
         loop:  add  s1, s1, s0
                sd   s1, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let s0 = MachineState::boot(&program);
    for n in [0u64, 7, 60, 161] {
        let direct = seq_n(&program, s0.clone(), n).unwrap();
        let mut via = s0.clone();
        via.apply(&cumulative_writes(&program, s0.clone(), n).unwrap());
        assert_eq!(direct, via);
    }
    println!("Lemma 3:                        seq(S,n) == S <- delta(S,n)    OK");

    // ---- Theorem 2: consistency + completeness => task safety -----------
    // A task's recorded live-ins that match architected state guarantee
    // its live-outs advance the state exactly as SEQ would. Run MSSP and
    // let the independent checker confirm the refinement end to end.
    let profile = Profile::collect(&program, u64::MAX).unwrap();
    let distilled = distill(&program, &profile, &DistillConfig::default()).unwrap();
    let mut engine = Engine::new(&program, &distilled, EngineConfig::default(), UnitCost);
    engine.enable_commit_trace();
    let run = engine.run().unwrap();
    let commits = run.commit_trace.as_ref().map_or(0, Vec::len);
    check_refinement(&program, &run).unwrap();
    println!("Jumping refinement:             {commits} commit points (= SEQ states) OK");

    println!("\nEvery claim of the formal model held on concrete executions.");
}
