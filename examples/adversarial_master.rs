//! The decoupling demonstration: run a workload under masters of varying
//! quality — honest, mediocre, garbage, and dead — and show that the
//! committed result never changes; only performance does. This is the
//! paper's central claim, executable.
//!
//! Run with: `cargo run --release --example adversarial_master`

use std::collections::{BTreeMap, BTreeSet};

use mssp::prelude::*;

fn run_with(label: &str, program: &Program, d: &Distilled, expected: u64) {
    let tcfg = TimingConfig::default();
    let mssp = run_mssp(program, d, &tcfg).expect("terminates");
    let baseline = run_baseline(program, &tcfg, u64::MAX).expect("baseline");
    assert_eq!(
        mssp.run.state.reg(CHECKSUM_REG),
        expected,
        "{label}: architected state corrupted!"
    );
    println!(
        "{label:<20} checksum OK, speedup {:.3}, {} commits, {} squashes, {:.1}% recovery",
        speedup(baseline.cycles, mssp.run.cycles),
        mssp.run.stats.committed_tasks,
        mssp.run.stats.squash_events(),
        100.0 * mssp.run.stats.recovery_fraction(),
    );
}

fn main() {
    let w = Workload::by_name("gzip_like").expect("registry");
    let program = w.program(8_192);

    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).expect("runs");
    let expected = seq.state().reg(CHECKSUM_REG);
    println!("reference checksum: {expected:#x}\n");

    let profile = Profile::collect(&program, u64::MAX).expect("profiles");

    // 1. The honest, profile-guided master.
    let honest = distill(&program, &profile, &DistillConfig::default()).expect("distills");
    run_with("honest master", &program, &honest, expected);

    // 2. An identity master (no approximation): pure paradigm overhead.
    let identity = distill(
        &program,
        &profile,
        &DistillConfig::at_level(DistillLevel::None),
    )
    .expect("distills");
    run_with("identity master", &program, &identity, expected);

    // 3. A garbage master: scribbles nonsense and spawns at one boundary.
    let boundary = *honest.boundaries().iter().next().expect("has boundaries");
    let garbage_src = "
        main: addi s1, zero, 666
        evil: addi s7, s7, 13
              xor  s1, s1, s7
              j    evil";
    let garbage = assemble(garbage_src).expect("assembles");
    let mut map = BTreeMap::new();
    map.insert(program.entry(), garbage.entry());
    map.insert(boundary, garbage.symbol("evil").expect("label"));
    let evil = Distilled::from_parts(garbage, BTreeSet::from([boundary]), map);
    run_with("garbage master", &program, &evil, expected);

    // 4. A dead master (halts immediately): sequential recovery does all
    //    the work — slow, but still exactly correct.
    let dead = assemble("main: halt").expect("assembles");
    let mut map = BTreeMap::new();
    map.insert(program.entry(), dead.entry());
    let dead_master = Distilled::from_parts(dead, BTreeSet::new(), map);
    run_with("dead master", &program, &dead_master, expected);

    println!("\nCorrectness was never at the master's mercy — only speed.");
}
