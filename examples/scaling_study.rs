//! Scaling study: one workload across slave counts and task sizes,
//! printing a small grid — a condensed interactive version of experiments
//! F4 and F5.
//!
//! Run with: `cargo run --release --example scaling_study [workload]`

use mssp::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex_like".into());
    let w = Workload::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; available:");
        for w in workloads() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    });
    let program = w.program(w.default_scale / 2);
    let profile = Profile::collect(&program, u64::MAX).expect("profiles");
    let tref = TimingConfig::default();
    let baseline = run_baseline(&program, &tref, u64::MAX).expect("baseline");
    println!(
        "{}: baseline {} cycles (CPI {:.2})\n",
        w.name,
        baseline.cycles,
        baseline.cpi()
    );

    print!("{:>10}", "task size");
    for slaves in [1usize, 3, 7, 15] {
        print!("{:>10}", format!("{}+1c", slaves));
    }
    println!();
    for task_size in [50u64, 200, 800, 3200] {
        let dcfg = DistillConfig {
            target_task_size: task_size,
            ..DistillConfig::default()
        };
        let d = distill(&program, &profile, &dcfg).expect("distills");
        print!("{task_size:>10}");
        for slaves in [1usize, 3, 7, 15] {
            let mut tcfg = TimingConfig::default();
            tcfg.engine.num_slaves = slaves;
            let run = run_mssp(&program, &d, &tcfg).expect("runs");
            assert_eq!(
                run.run.state.reg(CHECKSUM_REG),
                baseline.state.reg(CHECKSUM_REG)
            );
            print!("{:>10.3}", speedup(baseline.cycles, run.run.cycles));
        }
        println!();
    }
    println!("\n(each cell: speedup over the single-core baseline)");
}
