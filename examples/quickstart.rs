//! Quickstart: assemble a program, profile it, distill it, and run it
//! both sequentially and under MSSP — verifying they agree and comparing
//! cycle counts.
//!
//! Run with: `cargo run --release --example quickstart`

use mssp::prelude::*;

fn main() {
    // A small program: sum of i*i for i in 1..=50_000, with an
    // error-check the distiller will assert away.
    let program = assemble(
        "main:   addi s0, zero, 0        ; i
                 li   s2, 50000          ; n
         loop:   addi s0, s0, 1
                 mul  t0, s0, s0
                 ; overflow guard: never fires for this n
                 li   t1, 0x7FFFFFFFFFFFFFFF
                 bgtu t0, t1, overflow
                 add  s1, s1, t0         ; checksum
                 blt  s0, s2, loop
                 halt
         overflow:
                 addi s1, zero, -1
                 halt",
    )
    .expect("assembles");

    // 1. Sequential reference run.
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).expect("runs");
    println!(
        "sequential: {} instructions, checksum {}",
        seq.instructions(),
        seq.state().reg(Reg::S1)
    );

    // 2. Profile-guided distillation.
    let profile = Profile::collect(&program, u64::MAX).expect("profiles");
    let distilled = distill(&program, &profile, &DistillConfig::default()).expect("distills");
    println!(
        "distilled:  {} -> {} static instructions ({} branches asserted, {} DCE'd)",
        distilled.stats().original_static,
        distilled.stats().distilled_static,
        distilled.stats().asserted_branches,
        distilled.stats().dce_removed,
    );

    // 3. MSSP timing run vs. single-core baseline.
    let tcfg = TimingConfig::default();
    let baseline = run_baseline(&program, &tcfg, u64::MAX).expect("baseline");
    let mssp = run_mssp(&program, &distilled, &tcfg).expect("mssp");

    assert_eq!(
        baseline.state.reg(Reg::S1),
        mssp.run.state.reg(Reg::S1),
        "MSSP must match sequential execution exactly"
    );
    println!(
        "baseline:   {} cycles (CPI {:.2})",
        baseline.cycles,
        baseline.cpi()
    );
    println!(
        "mssp:       {} cycles with {} slaves -> speedup {:.3}",
        mssp.run.cycles,
        tcfg.engine.num_slaves,
        speedup(baseline.cycles, mssp.run.cycles)
    );
    println!(
        "            {} tasks committed, {} squash events",
        mssp.run.stats.committed_tasks,
        mssp.run.stats.squash_events()
    );
}
