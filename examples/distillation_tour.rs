//! A tour of the distiller: shows, for one workload, what each
//! distillation level removes — asserted branches, elided cold blocks,
//! dead code, write-only stores — and prints the before/after disassembly
//! of the hot loop.
//!
//! Run with: `cargo run --release --example distillation_tour`

use mssp::prelude::*;

fn main() {
    let w = Workload::by_name("gap_like").expect("registry");
    let program = w.program(4_096);
    let profile = Profile::collect(&program, u64::MAX).expect("profiles");

    println!(
        "workload {} ({}): {} static instructions, {} dynamic\n",
        w.name,
        w.analog,
        program.len(),
        profile.dynamic_instructions()
    );

    for level in DistillLevel::all() {
        let d = distill(&program, &profile, &DistillConfig::at_level(level)).expect("distills");
        let s = d.stats();
        println!(
            "level {level:<13} static {:>3} -> {:>3} | asserted {} | blocks elided {} | DCE {} | stores elided {}",
            s.original_static,
            s.distilled_static,
            s.asserted_branches,
            s.removed_blocks,
            s.dce_removed,
            s.stores_elided,
        );
    }

    let aggressive = distill(
        &program,
        &profile,
        &DistillConfig::at_level(DistillLevel::Aggressive),
    )
    .expect("distills");

    println!("\n--- original program ---\n{}", program.disassemble());
    println!(
        "--- distilled (aggressive) ---\n{}",
        aggressive.program().disassemble()
    );
    println!(
        "task boundaries: {:?} (every {} crossings = one task)",
        aggressive
            .boundaries()
            .iter()
            .map(|b| format!("{b:#x}"))
            .collect::<Vec<_>>(),
        aggressive.crossings_per_task(),
    );
}
