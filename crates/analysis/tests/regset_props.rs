//! Property tests for `RegSet`, the bit-set the dataflow framework joins
//! millions of times per solve. Each property cross-checks the bit-set
//! against a reference `BTreeSet<Reg>` model under random operation
//! sequences, using the workspace's seeded `mssp-testkit` runner.

use std::collections::BTreeSet;

use mssp_analysis::RegSet;
use mssp_isa::{Reg, NUM_REGS};
use mssp_testkit::{check, Rng};

/// Draws a random register (any of the 32, including `zero`).
fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_index(0, NUM_REGS) as u8)
}

/// Builds a random set plus its reference model.
fn random_set(rng: &mut Rng) -> (RegSet, BTreeSet<Reg>) {
    let mut set = RegSet::empty();
    let mut model = BTreeSet::new();
    for _ in 0..rng.gen_index(0, 2 * NUM_REGS) {
        let r = any_reg(rng);
        set.insert(r);
        model.insert(r);
    }
    (set, model)
}

fn assert_matches_model(set: RegSet, model: &BTreeSet<Reg>) {
    assert_eq!(set.len(), model.len());
    assert_eq!(set.is_empty(), model.is_empty());
    for r in Reg::all() {
        assert_eq!(set.contains(r), model.contains(&r), "disagree on {r}");
    }
    let listed: Vec<Reg> = set.iter().collect();
    let expected: Vec<Reg> = model.iter().copied().collect();
    assert_eq!(listed, expected, "iter() must yield index order");
}

#[test]
fn insert_remove_tracks_reference_model() {
    check(0x5e75_0001, 200, |rng| {
        let mut set = RegSet::empty();
        let mut model = BTreeSet::new();
        for _ in 0..200 {
            let r = any_reg(rng);
            if rng.gen_bool(2, 3) {
                set.insert(r);
                model.insert(r);
            } else {
                set.remove(r);
                model.remove(&r);
            }
            assert_matches_model(set, &model);
        }
    });
}

#[test]
fn union_is_setwise() {
    check(0x5e75_0002, 300, |rng| {
        let (a, ma) = random_set(rng);
        let (b, mb) = random_set(rng);
        let expected: BTreeSet<Reg> = ma.union(&mb).copied().collect();
        assert_matches_model(a.union(b), &expected);
    });
}

#[test]
fn union_is_commutative_associative_idempotent() {
    check(0x5e75_0003, 300, |rng| {
        let (a, _) = random_set(rng);
        let (b, _) = random_set(rng);
        let (c, _) = random_set(rng);
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        assert_eq!(a.union(a), a);
        assert_eq!(a.union(RegSet::empty()), a);
        assert_eq!(a.union(RegSet::all()), RegSet::all());
    });
}

#[test]
fn insert_then_remove_roundtrips() {
    check(0x5e75_0004, 300, |rng| {
        let (mut set, mut model) = random_set(rng);
        let r = any_reg(rng);
        let had = set.contains(r);
        set.insert(r);
        assert!(set.contains(r));
        set.remove(r);
        assert!(!set.contains(r));
        if !had {
            model.remove(&r);
            assert_matches_model(set, &model);
        }
    });
}

#[test]
fn all_and_empty_are_extremes() {
    assert_eq!(RegSet::all().len(), NUM_REGS);
    assert_eq!(RegSet::empty().len(), 0);
    for r in Reg::all() {
        assert!(RegSet::all().contains(r));
        assert!(!RegSet::empty().contains(r));
    }
}
