//! Register liveness analysis.
//!
//! Backward may-liveness over the CFG, used by the distiller's dead-code
//! elimination: an instruction writing a register that is dead at that
//! point (and performing no store or control transfer) can be removed from
//! the distilled program without changing the values the master predicts
//! for any live-in.
//!
//! Indirect jumps have unknown successors, so every register is
//! conservatively live across them; likewise `halt` treats every register
//! as live-out, because the whole final register file is the program's
//! observable result.

use mssp_isa::{Instr, Program, Reg, NUM_REGS};

use crate::dataflow::{solve, Analysis, DataflowResults, Direction};
use crate::Cfg;

/// A set of registers, represented as a 32-bit mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegSet(u32);

impl RegSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> RegSet {
        RegSet(0)
    }

    /// The set of all registers.
    #[must_use]
    pub fn all() -> RegSet {
        RegSet(u32::MAX)
    }

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Whether `r` is in the set.
    #[must_use]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the registers in the set, in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).filter_map(move |i| {
            if self.0 & (1 << i) != 0 {
                Some(Reg::new(i))
            } else {
                None
            }
        })
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Per-program-point liveness: for each instruction address, the set of
/// registers live *after* it executes.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::Reg;
/// use mssp_analysis::{Cfg, Liveness};
///
/// let p = assemble(
///     "main: addi a0, zero, 1   ; a0 dead after: overwritten next
///            addi a0, zero, 2
///            halt",
/// ).unwrap();
/// let live = Liveness::compute(&p, &Cfg::build(&p));
/// assert!(!live.live_out(p.entry()).contains(Reg::A0));
/// ```
#[derive(Debug, Clone)]
pub struct Liveness {
    results: DataflowResults<RegSet>,
}

/// May-liveness as a [`Analysis`] instance: backward, union join, all-live
/// at `Halt`/`Indirect` exits.
struct LiveAnalysis;

impl Analysis for LiveAnalysis {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self) -> RegSet {
        RegSet::empty()
    }

    fn boundary(&self) -> RegSet {
        RegSet::all()
    }

    fn join(&self, into: &mut RegSet, other: &RegSet) -> bool {
        let merged = into.union(*other);
        let changed = merged != *into;
        *into = merged;
        changed
    }

    fn transfer(&self, _pc: u64, instr: Instr, live: &mut RegSet) {
        if let Some(rd) = instr.def_reg() {
            live.remove(rd);
        }
        for r in instr.use_regs().into_iter().flatten() {
            if !r.is_zero() {
                live.insert(r);
            }
        }
    }
}

impl Liveness {
    /// Computes backward liveness over the CFG of `program`.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        Liveness {
            results: solve(program, cfg, &LiveAnalysis),
        }
    }

    /// The registers live immediately *before* the instruction at `pc` —
    /// i.e. the registers that may be read before being written from `pc`
    /// onward. This is exactly the set of register live-ins a speculative
    /// task starting at `pc` can have, which the MSSP distiller must keep
    /// the master able to predict.
    ///
    /// Returns the conservative all-live set for unanalyzed addresses.
    #[must_use]
    pub fn live_in(&self, pc: u64) -> RegSet {
        self.results.before(pc).copied().unwrap_or_else(RegSet::all)
    }

    /// The registers live immediately after the instruction at `pc`.
    ///
    /// Returns the conservative all-live set for addresses outside the
    /// analyzed text.
    #[must_use]
    pub fn live_out(&self, pc: u64) -> RegSet {
        self.results.after(pc).copied().unwrap_or_else(RegSet::all)
    }

    /// Whether the write performed by the instruction at `pc` (if any) is
    /// dead — its destination is not live out.
    #[must_use]
    pub fn write_is_dead(&self, program: &Program, pc: u64) -> bool {
        match program.fetch(pc).and_then(|i| i.def_reg()) {
            Some(rd) => !self.live_out(pc).contains(rd),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn live_of(src: &str) -> (mssp_isa::Program, Liveness) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let l = Liveness::compute(&p, &cfg);
        (p, l)
    }

    #[test]
    fn regset_operations() {
        let mut s = RegSet::empty();
        assert!(s.is_empty());
        s.insert(Reg::A0);
        s.insert(Reg::T3);
        assert!(s.contains(Reg::A0) && s.contains(Reg::T3));
        assert_eq!(s.len(), 2);
        s.remove(Reg::A0);
        assert!(!s.contains(Reg::A0));
        let collected: Vec<Reg> = s.iter().collect();
        assert_eq!(collected, vec![Reg::T3]);
    }

    #[test]
    fn overwritten_register_is_dead() {
        let (p, l) = live_of(
            "main: addi a0, zero, 1
                   addi a0, zero, 2
                   halt",
        );
        assert!(l.write_is_dead(&p, p.entry()));
        // The second write is live (halt keeps all registers live).
        assert!(!l.write_is_dead(&p, p.entry() + 4));
    }

    #[test]
    fn value_used_in_branch_is_live() {
        let (p, l) = live_of(
            "main: addi a0, zero, 1
                   beqz a0, main
                   halt",
        );
        assert!(l.live_out(p.entry()).contains(Reg::A0));
        assert!(!l.write_is_dead(&p, p.entry()));
    }

    #[test]
    fn liveness_flows_around_loops() {
        let (p, l) = live_of(
            "main: addi a1, zero, 5
             loop: addi a0, a0, 1
                   addi a1, a1, -1
                   bnez a1, loop
                   halt",
        );
        // a1 written at entry is consumed by the loop.
        assert!(l.live_out(p.entry()).contains(Reg::A1));
        // Inside the loop, a1 stays live across the back edge.
        let loop_pc = p.symbol("loop").unwrap();
        assert!(l.live_out(loop_pc).contains(Reg::A1));
    }

    #[test]
    fn halt_keeps_all_registers_live() {
        let (p, l) = live_of("main: addi t5, zero, 1\n halt");
        // t5 is never read again but remains observable machine state.
        assert!(l.live_out(p.entry()).contains(Reg::T5));
        assert!(!l.write_is_dead(&p, p.entry()));
    }

    #[test]
    fn indirect_jump_is_a_barrier() {
        let (p, l) = live_of(
            "main: addi t0, zero, 9
                   jalr zero, 0(ra)
                   halt",
        );
        assert!(l.live_out(p.entry()).contains(Reg::T0));
    }

    #[test]
    fn stores_never_dead() {
        let (p, l) = live_of("main: sd a0, 0(sp)\n halt");
        assert!(!l.write_is_dead(&p, p.entry()));
    }
}
