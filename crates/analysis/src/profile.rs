//! Dynamic execution profiles.
//!
//! The distiller is profile-guided, as in the paper: a training run of the
//! original program collects per-PC execution counts, branch outcome
//! counts, and control-flow edge counts. The profile also powers the
//! workload-characterization experiment (T1).

use std::collections::{BTreeMap, BTreeSet};

use mssp_isa::{Program, Reg};
use mssp_machine::{SeqError, SeqMachine, StepInfo};

/// Outcome counts for one conditional branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounts {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

impl BranchCounts {
    /// Total executions of the branch.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// The bias toward the dominant direction, in `[0.5, 1.0]`
    /// (`None` if never executed).
    #[must_use]
    pub fn bias(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some(self.taken.max(self.not_taken) as f64 / total as f64)
        }
    }

    /// Whether the dominant direction is "taken".
    #[must_use]
    pub fn mostly_taken(&self) -> bool {
        self.taken >= self.not_taken
    }
}

/// A dynamic profile of one training run.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::Profile;
///
/// let p = assemble(
///     "main: addi a0, zero, 10
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let profile = Profile::collect(&p, 1_000_000).unwrap();
/// assert_eq!(profile.dynamic_instructions(), 1 + 10 * 2);
/// let branch_pc = p.entry() + 8;
/// assert!(profile.branch(branch_pc).unwrap().bias().unwrap() >= 0.9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profile {
    exec: BTreeMap<u64, u64>,
    branches: BTreeMap<u64, BranchCounts>,
    edges: BTreeMap<(u64, u64), u64>,
    instructions: u64,
    loads: u64,
    stores: u64,
    branch_instrs: u64,
    /// Word indices ever read by a load.
    loaded_words: BTreeSet<u64>,
    /// Per-store-PC footprint of written word indices.
    store_words: BTreeMap<u64, BTreeSet<u64>>,
    /// Slice feedback: registers whose live-in values the run-time
    /// predictor flagged as hard to predict (observed in live-in
    /// mismatch squashes).
    hard_live_ins: BTreeSet<Reg>,
    /// Slice feedback: architected PCs where wrong-path squashes landed
    /// (the master's asserted control flow departed from reality here).
    wrong_path_pcs: BTreeSet<u64>,
}

impl Profile {
    /// Step budget meaning "run the training program to completion":
    /// [`Profile::collect`] with this bound never cuts a run short.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::asm::assemble;
    /// use mssp_analysis::Profile;
    ///
    /// let p = assemble("main: halt").unwrap();
    /// let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
    /// assert_eq!(profile.dynamic_instructions(), 0);
    /// ```
    pub const UNBOUNDED: u64 = u64::MAX;

    /// An empty profile (used when distilling without training data).
    #[must_use]
    pub fn empty() -> Profile {
        Profile::default()
    }

    /// Collects a profile by running `program` to completion (or to
    /// `max_steps`).
    ///
    /// # Errors
    ///
    /// Propagates faults from the sequential machine.
    pub fn collect(program: &Program, max_steps: u64) -> Result<Profile, SeqError> {
        let mut machine = SeqMachine::boot(program);
        let mut profile = Profile::default();
        machine.run_observed(max_steps, |info| profile.observe(info))?;
        Ok(profile)
    }

    /// Records one executed instruction. Exposed so callers embedding their
    /// own execution loops (e.g. the MSSP engine's recovery path) can feed
    /// profiles too.
    pub fn observe(&mut self, info: &StepInfo) {
        if info.halted {
            return;
        }
        self.instructions += 1;
        *self.exec.entry(info.pc).or_insert(0) += 1;
        *self.edges.entry((info.pc, info.next_pc)).or_insert(0) += 1;
        if let Some(taken) = info.taken {
            self.branch_instrs += 1;
            let counts = self.branches.entry(info.pc).or_default();
            if taken {
                counts.taken += 1;
            } else {
                counts.not_taken += 1;
            }
        }
        if let Some(mem) = info.mem {
            let first = mem.addr >> 3;
            let last = (mem.addr + mem.bytes as u64 - 1) >> 3;
            if mem.is_store {
                self.stores += 1;
                let footprint = self.store_words.entry(info.pc).or_default();
                footprint.insert(first);
                footprint.insert(last);
            } else {
                self.loads += 1;
                self.loaded_words.insert(first);
                self.loaded_words.insert(last);
            }
        }
    }

    /// Total dynamic instructions in the training run.
    #[must_use]
    pub fn dynamic_instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic load count.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Dynamic store count.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Dynamic conditional-branch count.
    #[must_use]
    pub fn dynamic_branches(&self) -> u64 {
        self.branch_instrs
    }

    /// Times the instruction at `pc` executed.
    #[must_use]
    pub fn exec_count(&self, pc: u64) -> u64 {
        self.exec.get(&pc).copied().unwrap_or(0)
    }

    /// Outcome counts for the branch at `pc`, if it ever executed.
    #[must_use]
    pub fn branch(&self, pc: u64) -> Option<BranchCounts> {
        self.branches.get(&pc).copied()
    }

    /// Times the dynamic edge `from → to` was traversed.
    #[must_use]
    pub fn edge_count(&self, from: u64, to: u64) -> u64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Iterates over `(pc, count)` execution counts.
    pub fn iter_exec(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.exec.iter().map(|(&pc, &n)| (pc, n))
    }

    /// Iterates over all profiled branches.
    pub fn iter_branches(&self) -> impl Iterator<Item = (u64, BranchCounts)> + '_ {
        self.branches.iter().map(|(&pc, &c)| (pc, c))
    }

    /// Whether the store at `pc` only ever wrote words that no load in
    /// the training run ever read — a *write-only* store (result buffers,
    /// logs). The distiller may elide such stores from the master's
    /// program: slaves still perform them (architected state is
    /// unaffected), and no slave can consume them as live-ins unless the
    /// program's runtime behaviour departs from training, in which case
    /// verification squashes.
    #[must_use]
    pub fn store_is_write_only(&self, pc: u64) -> bool {
        match self.store_words.get(&pc) {
            Some(words) => words.iter().all(|w| !self.loaded_words.contains(w)),
            None => false, // never executed: leave it to cold-code elision
        }
    }

    /// Marks a register as a hard-to-predict live-in (squash feedback
    /// from a previous MSSP run; consumed by the distiller's slice pass).
    pub fn mark_hard_live_in(&mut self, reg: Reg) {
        self.hard_live_ins.insert(reg);
    }

    /// Marks an architected PC where a wrong-path squash landed (squash
    /// feedback from a previous MSSP run; consumed by the slice pass).
    pub fn mark_wrong_path(&mut self, pc: u64) {
        self.wrong_path_pcs.insert(pc);
    }

    /// Registers flagged as hard-to-predict live-ins.
    #[must_use]
    pub fn hard_live_ins(&self) -> &BTreeSet<Reg> {
        &self.hard_live_ins
    }

    /// Architected PCs of observed wrong-path squashes.
    #[must_use]
    pub fn wrong_path_pcs(&self) -> &BTreeSet<u64> {
        &self.wrong_path_pcs
    }

    /// Whether any slice feedback is present. When `false`, the
    /// distiller's pre-computation slice pass is a no-op, so profiles
    /// without feedback distill exactly as before.
    #[must_use]
    pub fn has_slice_feedback(&self) -> bool {
        !self.hard_live_ins.is_empty() || !self.wrong_path_pcs.is_empty()
    }

    /// Accumulates another profile into this one: counts add, footprints
    /// and slice-feedback sets union. Used by the online adaptive loop to
    /// fold per-segment observations into a long-lived live profile.
    pub fn merge(&mut self, other: &Profile) {
        for (&pc, &n) in &other.exec {
            *self.exec.entry(pc).or_insert(0) += n;
        }
        for (&pc, c) in &other.branches {
            let e = self.branches.entry(pc).or_default();
            e.taken += c.taken;
            e.not_taken += c.not_taken;
        }
        for (&edge, &n) in &other.edges {
            *self.edges.entry(edge).or_insert(0) += n;
        }
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branch_instrs += other.branch_instrs;
        self.loaded_words.extend(&other.loaded_words);
        for (&pc, words) in &other.store_words {
            self.store_words.entry(pc).or_default().extend(words);
        }
        self.hard_live_ins.extend(&other.hard_live_ins);
        self.wrong_path_pcs.extend(&other.wrong_path_pcs);
    }

    /// Exponentially decays every count by halving it, pruning entries
    /// that reach zero, so a live profile forgets old program phases.
    /// Memory footprints and slice-feedback sets are *sticky*: they carry
    /// no weight, only membership, and keeping them is conservative (a
    /// stale write-only word can only suppress an elision; a stale
    /// hard-live-in only adds a validated pre-computation slice).
    pub fn decay(&mut self) {
        for n in self.exec.values_mut() {
            *n >>= 1;
        }
        self.exec.retain(|_, n| *n > 0);
        for c in self.branches.values_mut() {
            c.taken >>= 1;
            c.not_taken >>= 1;
        }
        self.branches.retain(|_, c| c.total() > 0);
        for n in self.edges.values_mut() {
            *n >>= 1;
        }
        self.edges.retain(|_, n| *n > 0);
        self.instructions >>= 1;
        self.loads >>= 1;
        self.stores >>= 1;
        self.branch_instrs >>= 1;
    }

    /// The average bias of all executed conditional branches, weighted by
    /// execution count (`None` if the run had no branches). One of the
    /// workload-characterization columns: high average bias predicts good
    /// distillability.
    #[must_use]
    pub fn weighted_branch_bias(&self) -> Option<f64> {
        let mut weighted = 0.0;
        let mut total = 0u64;
        for c in self.branches.values() {
            weighted += c.bias().unwrap_or(0.5) * c.total() as f64;
            total += c.total();
        }
        if total == 0 {
            None
        } else {
            Some(weighted / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn profiled(src: &str) -> (mssp_isa::Program, Profile) {
        let p = assemble(src).unwrap();
        let prof = Profile::collect(&p, 1_000_000).unwrap();
        (p, prof)
    }

    #[test]
    fn counts_match_loop_trip_count() {
        let (p, prof) = profiled(
            "main: addi a0, zero, 7
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let loop_pc = p.symbol("loop").unwrap();
        assert_eq!(prof.exec_count(loop_pc), 7);
        let b = prof.branch(loop_pc + 4).unwrap();
        assert_eq!(b.taken, 6);
        assert_eq!(b.not_taken, 1);
        assert!(b.mostly_taken());
        assert_eq!(prof.dynamic_instructions(), 1 + 14);
    }

    #[test]
    fn edges_recorded_for_taken_and_fallthrough() {
        let (p, prof) = profiled(
            "main: addi a0, zero, 2
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let loop_pc = p.symbol("loop").unwrap();
        let branch_pc = loop_pc + 4;
        assert_eq!(prof.edge_count(branch_pc, loop_pc), 1);
        assert_eq!(prof.edge_count(branch_pc, branch_pc + 4), 1);
    }

    #[test]
    fn memory_op_counts() {
        let (_, prof) = profiled(
            "main: sd a0, -8(sp)
                   ld a1, -8(sp)
                   ld a2, -8(sp)
                   halt",
        );
        assert_eq!(prof.stores(), 1);
        assert_eq!(prof.loads(), 2);
    }

    #[test]
    fn bias_of_unexecuted_branch_is_none() {
        let (p, prof) = profiled(
            "main: j end
             skip: beqz a0, skip
             end:  halt",
        );
        let skip = p.symbol("skip").unwrap();
        assert!(prof.branch(skip).is_none());
        assert_eq!(prof.exec_count(skip), 0);
    }

    #[test]
    fn merge_adds_counts_and_unions_sets() {
        let (p, mut a) = profiled(
            "main: addi a0, zero, 3
             loop: sd a0, -8(sp)
                   ld a1, -8(sp)
                   addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let b = a.clone();
        let loop_pc = p.symbol("loop").unwrap();
        let branch_pc = loop_pc + 12;
        let before_exec = a.exec_count(loop_pc);
        let before_branch = a.branch(branch_pc).unwrap();
        a.mark_hard_live_in(Reg::A0);
        let mut other = b.clone();
        other.mark_wrong_path(branch_pc);
        a.merge(&other);
        assert_eq!(a.exec_count(loop_pc), 2 * before_exec);
        assert_eq!(a.branch(branch_pc).unwrap().taken, 2 * before_branch.taken);
        assert_eq!(
            a.edge_count(branch_pc, loop_pc),
            2 * b.edge_count(branch_pc, loop_pc)
        );
        assert_eq!(a.dynamic_instructions(), 2 * b.dynamic_instructions());
        assert_eq!(a.loads(), 2 * b.loads());
        assert_eq!(a.stores(), 2 * b.stores());
        assert_eq!(a.dynamic_branches(), 2 * b.dynamic_branches());
        assert!(a.hard_live_ins().contains(&Reg::A0));
        assert!(a.wrong_path_pcs().contains(&branch_pc));
        assert!(a.has_slice_feedback());
    }

    #[test]
    fn merge_into_empty_is_identity_on_counts() {
        let (p, prof) = profiled(
            "main: addi a0, zero, 5
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let mut merged = Profile::empty();
        merged.merge(&prof);
        let loop_pc = p.symbol("loop").unwrap();
        assert_eq!(merged.exec_count(loop_pc), prof.exec_count(loop_pc));
        assert_eq!(merged.dynamic_instructions(), prof.dynamic_instructions());
        assert_eq!(
            merged.branch(loop_pc + 4).unwrap(),
            prof.branch(loop_pc + 4).unwrap()
        );
    }

    #[test]
    fn decay_halves_counts_and_prunes_zeros() {
        let (p, mut prof) = profiled(
            "main: addi a0, zero, 9
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let loop_pc = p.symbol("loop").unwrap();
        let main_pc = p.symbol("main").unwrap();
        assert_eq!(prof.exec_count(main_pc), 1);
        assert_eq!(prof.exec_count(loop_pc), 9);
        prof.mark_hard_live_in(Reg::A0);
        prof.decay();
        // 9 execs halve to 4; the single main exec decays to nothing and
        // its entry is pruned (so reachability roots stop seeing it).
        assert_eq!(prof.exec_count(loop_pc), 4);
        assert_eq!(prof.exec_count(main_pc), 0);
        assert!(prof.iter_exec().all(|(_, n)| n > 0));
        assert_eq!(prof.dynamic_instructions(), 18_u64.div_ceil(2));
        // Feedback sets are sticky.
        assert!(prof.hard_live_ins().contains(&Reg::A0));
        // Enough decay rounds forget the phase entirely.
        for _ in 0..8 {
            prof.decay();
        }
        assert_eq!(prof.exec_count(loop_pc), 0);
        assert_eq!(prof.dynamic_branches(), 0);
        assert!(prof.branch(loop_pc + 4).is_none());
    }

    #[test]
    fn store_footprints_survive_merge() {
        let (p, prof) = profiled(
            "main: sd a0, -8(sp)
                   halt",
        );
        let main_pc = p.symbol("main").unwrap();
        assert!(prof.store_is_write_only(main_pc));
        let mut merged = Profile::empty();
        merged.merge(&prof);
        assert!(merged.store_is_write_only(main_pc));
    }

    #[test]
    fn weighted_bias_reflects_hot_branches() {
        let (_, prof) = profiled(
            "main: addi a0, zero, 100
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        assert!(prof.weighted_branch_bias().unwrap() > 0.98);
    }
}
