//! Dominators and natural-loop detection.
//!
//! The distiller's task-boundary selection favours loop headers, and its
//! cold-code elision must know loop membership to avoid asserting away a
//! loop's own back edge. Both build on a classic iterative dominator
//! analysis over the recovered CFG.

use std::collections::BTreeSet;

use crate::{BlockId, Cfg};

/// Dominator sets for every block of a CFG.
///
/// Blocks unreachable from the entry dominate nothing and report an empty
/// dominator set.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::{Cfg, Dominators};
///
/// let p = assemble(
///     "main: addi a0, zero, 4
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let cfg = Cfg::build(&p);
/// let dom = Dominators::compute(&cfg);
/// let header = cfg.block_at(p.symbol("loop").unwrap()).unwrap();
/// assert!(dom.dominates(cfg.entry(), header));
/// ```
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `doms[b]` = set of blocks dominating `b` (including `b` itself);
    /// empty iff `b` is unreachable.
    doms: Vec<BTreeSet<BlockId>>,
}

impl Dominators {
    /// Computes dominators with the standard iterative dataflow algorithm.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks().len();
        let entry = cfg.entry();
        let all: BTreeSet<BlockId> = (0..n).collect();
        let mut doms: Vec<BTreeSet<BlockId>> = vec![all; n];
        doms[entry] = BTreeSet::from([entry]);

        // Reachability first, so unreachable blocks end with empty sets.
        let mut reachable = vec![false; n];
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b], true) {
                continue;
            }
            stack.extend(cfg.successors(b));
        }

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == entry || !reachable[b] {
                    continue;
                }
                let mut new: Option<BTreeSet<BlockId>> = None;
                for &p in cfg.predecessors(b) {
                    if !reachable[p] {
                        continue;
                    }
                    new = Some(match new {
                        None => doms[p].clone(),
                        Some(acc) => acc.intersection(&doms[p]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b);
                if new != doms[b] {
                    doms[b] = new;
                    changed = true;
                }
            }
        }
        for b in 0..n {
            if !reachable[b] {
                doms[b].clear();
            }
        }
        Dominators { doms }
    }

    /// Whether `a` dominates `b`.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms[b].contains(&a)
    }

    /// The dominator set of `b` (empty if unreachable).
    #[must_use]
    pub fn dominators_of(&self, b: BlockId) -> &BTreeSet<BlockId> {
        &self.doms[b]
    }
}

/// A natural loop: a back edge `tail → header` plus the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// The source of the back edge.
    pub back_edge_tail: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
}

/// Finds all natural loops of a CFG (one per back edge).
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::{natural_loops, Cfg, Dominators};
///
/// let p = assemble(
///     "main: addi a0, zero, 4
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let cfg = Cfg::build(&p);
/// let loops = natural_loops(&cfg, &Dominators::compute(&cfg));
/// assert_eq!(loops.len(), 1);
/// ```
#[must_use]
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for tail in 0..cfg.blocks().len() {
        for header in cfg.successors(tail) {
            if dom.dominates(header, tail) {
                // Collect the body by walking predecessors from the tail.
                let mut body = BTreeSet::from([header, tail]);
                let mut stack = vec![tail];
                while let Some(b) = stack.pop() {
                    if b == header {
                        continue;
                    }
                    for &p in cfg.predecessors(b) {
                        if body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop {
                    header,
                    back_edge_tail: tail,
                    body,
                });
            }
        }
    }
    loops
}

/// Loop-nesting depth per block: the number of natural loops whose body
/// contains the block (0 = not in any loop). The distiller's boundary
/// heuristics prefer shallower headers at equal expected task size —
/// outer loops make steadier tasks.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::{loop_depths, natural_loops, Cfg, Dominators};
///
/// let p = assemble(
///     "main:  addi s0, zero, 3
///      outer: addi s1, zero, 3
///      inner: addi s1, s1, -1
///             bnez s1, inner
///             addi s0, s0, -1
///             bnez s0, outer
///             halt",
/// ).unwrap();
/// let cfg = Cfg::build(&p);
/// let dom = Dominators::compute(&cfg);
/// let loops = natural_loops(&cfg, &dom);
/// let depths = loop_depths(&cfg, &loops);
/// let inner = cfg.block_at(p.symbol("inner").unwrap()).unwrap();
/// assert_eq!(depths[inner], 2);
/// ```
#[must_use]
pub fn loop_depths(cfg: &Cfg, loops: &[NaturalLoop]) -> Vec<usize> {
    let mut depths = vec![0usize; cfg.blocks().len()];
    // Count distinct headers whose loop body contains the block (two back
    // edges to one header are one loop level, not two).
    for (bid, depth) in depths.iter_mut().enumerate() {
        let mut headers = BTreeSet::new();
        for l in loops {
            if l.body.contains(&bid) {
                headers.insert(l.header);
            }
        }
        *depth = headers.len();
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn build(src: &str) -> (mssp_isa::Program, Cfg, Dominators) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p);
        let d = Dominators::compute(&c);
        (p, c, d)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_, c, d) = build(
            "main: beqz a0, x
                   addi a1, zero, 1
             x:    halt",
        );
        for b in 0..c.blocks().len() {
            assert!(d.dominates(c.entry(), b));
        }
    }

    #[test]
    fn diamond_join_not_dominated_by_arms() {
        let (p, c, d) = build(
            "main: beqz a0, else
             then: addi a1, zero, 1
                   j join
             else: addi a1, zero, 2
             join: halt",
        );
        let then_b = c.block_at(p.symbol("then").unwrap()).unwrap();
        let else_b = c.block_at(p.symbol("else").unwrap()).unwrap();
        let join_b = c.block_at(p.symbol("join").unwrap()).unwrap();
        assert!(!d.dominates(then_b, join_b));
        assert!(!d.dominates(else_b, join_b));
        assert!(d.dominates(c.entry(), join_b));
    }

    #[test]
    fn simple_loop_detected_with_correct_body() {
        let (p, c, d) = build(
            "main: addi a0, zero, 4
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let loops = natural_loops(&c, &d);
        assert_eq!(loops.len(), 1);
        let header = c.block_at(p.symbol("loop").unwrap()).unwrap();
        assert_eq!(loops[0].header, header);
        assert_eq!(loops[0].body, BTreeSet::from([header]));
    }

    #[test]
    fn nested_loops_detected() {
        let (p, c, d) = build(
            "main:  addi a0, zero, 3
             outer: addi a1, zero, 3
             inner: addi a1, a1, -1
                    bnez a1, inner
                    addi a0, a0, -1
                    bnez a0, outer
                    halt",
        );
        let loops = natural_loops(&c, &d);
        assert_eq!(loops.len(), 2);
        let outer_h = c.block_at(p.symbol("outer").unwrap()).unwrap();
        let inner_h = c.block_at(p.symbol("inner").unwrap()).unwrap();
        let outer = loops.iter().find(|l| l.header == outer_h).unwrap();
        let inner = loops.iter().find(|l| l.header == inner_h).unwrap();
        // The inner loop body is contained in the outer loop body.
        assert!(inner.body.is_subset(&outer.body));
    }

    #[test]
    fn loop_depths_zero_outside_loops() {
        let (p, c, d) = build(
            "main: addi a0, zero, 2
             loop: addi a0, a0, -1
                   bnez a0, loop
             tail: halt",
        );
        let loops = natural_loops(&c, &d);
        let depths = loop_depths(&c, &loops);
        assert_eq!(depths[c.entry()], 0);
        let tail = c.block_at(p.symbol("tail").unwrap()).unwrap();
        assert_eq!(depths[tail], 0);
        let header = c.block_at(p.symbol("loop").unwrap()).unwrap();
        assert_eq!(depths[header], 1);
    }

    #[test]
    fn multiple_back_edges_count_as_one_level() {
        let (p, c, d) = build(
            "main: addi a0, zero, 8
             head: addi a0, a0, -1
                   andi t0, a0, 1
                   beqz t0, even
                   bnez a0, head
                   halt
             even: bnez a0, head
                   halt",
        );
        let loops = natural_loops(&c, &d);
        // Two back edges, one header.
        assert_eq!(loops.len(), 2);
        let depths = loop_depths(&c, &loops);
        let head = c.block_at(p.symbol("head").unwrap()).unwrap();
        assert_eq!(depths[head], 1);
    }

    #[test]
    fn unreachable_block_has_empty_dominators() {
        let (p, c, d) = build(
            "main: j end
             dead: addi a0, zero, 1
             end:  halt",
        );
        let dead = c.block_at(p.symbol("dead").unwrap()).unwrap();
        assert!(d.dominators_of(dead).is_empty());
    }
}
