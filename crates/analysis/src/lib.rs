//! # mssp-analysis
//!
//! Static and dynamic program analyses over MSSP ISA binaries — the
//! substrate of the program distiller:
//!
//! * [`Cfg`] — control-flow graph recovery from a binary.
//! * [`Dominators`] / [`natural_loops`] — dominance and loop structure.
//! * [`Analysis`] / [`solve`] — a generic forward/backward worklist
//!   dataflow framework over [`Cfg`]s.
//! * [`Liveness`] — backward register liveness (for dead-code elimination),
//!   an instance of the framework.
//! * [`ReachingDefs`] / [`ConstProp`] / [`CopyProp`] — forward
//!   reaching-definitions, constant propagation and copy propagation (the
//!   static soundness linter and the distiller's optimizing pass pipeline
//!   are built on these).
//! * [`Profile`] — dynamic edge/branch/instruction profiles from a
//!   training run (the distiller is profile-guided, as in the paper).
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::{natural_loops, Cfg, Dominators, Profile};
//!
//! let program = assemble(
//!     "main: addi a0, zero, 100
//!      loop: addi a0, a0, -1
//!            bnez a0, loop
//!            halt",
//! ).unwrap();
//!
//! let cfg = Cfg::build(&program);
//! let dom = Dominators::compute(&cfg);
//! assert_eq!(natural_loops(&cfg, &dom).len(), 1);
//!
//! let profile = Profile::collect(&program, Profile::UNBOUNDED).unwrap();
//! assert!(profile.weighted_branch_bias().unwrap() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cfg;
mod dataflow;
mod dom;
mod live;
mod profile;

pub use cfg::{BasicBlock, BlockId, Cfg, Terminator};
pub use dataflow::{
    as_reg_copy, eval_branch, solve, Analysis, ConstFacts, ConstProp, ConstPropAnalysis, ConstVal,
    CopyFacts, CopyProp, CopyPropAnalysis, CopyVal, DataflowResults, DefSites, Direction,
    ReachingDefs,
};
pub use dom::{loop_depths, natural_loops, Dominators, NaturalLoop};
pub use live::{Liveness, RegSet};
pub use profile::{BranchCounts, Profile};
