//! Control-flow graph recovery from a program's text segment.
//!
//! The distiller operates on whole-program CFGs recovered directly from the
//! binary, exactly as the paper's binary re-optimizer did. Basic-block
//! leaders are: the program entry, every static branch/jump target, and
//! every instruction following a control transfer. Indirect jumps (`jalr`)
//! have statically unknown successors; their blocks are flagged so client
//! analyses treat them as barriers.

use std::collections::{BTreeMap, BTreeSet};

use mssp_isa::{Instr, Program, INSTR_BYTES};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Falls through to the next block (no control instruction).
    FallThrough,
    /// Conditional branch: `taken` target and fall-through.
    Branch {
        /// Block targeted when the branch is taken.
        taken: BlockId,
        /// Block reached when it is not.
        fallthrough: BlockId,
    },
    /// Unconditional direct jump (`jal`).
    Jump {
        /// The jump target block.
        target: BlockId,
    },
    /// Indirect jump (`jalr`): successors statically unknown.
    Indirect,
    /// `halt`.
    Halt,
}

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// Address one past the last instruction.
    pub end: u64,
    /// How the block ends.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        ((self.end - self.start) / INSTR_BYTES) as usize
    }

    /// Whether the block is empty (never true for recovered blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the instruction addresses of this block.
    pub fn pcs(&self) -> impl Iterator<Item = u64> {
        (self.start..self.end).step_by(INSTR_BYTES as usize)
    }
}

/// A whole-program control-flow graph.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::Cfg;
///
/// let p = assemble(
///     "main: addi a0, zero, 4
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let cfg = Cfg::build(&p);
/// assert_eq!(cfg.blocks().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// start address -> block id.
    by_start: BTreeMap<u64, BlockId>,
    preds: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl Cfg {
    /// Recovers the CFG of `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty or its entry is out of range
    /// (guaranteed not to happen for [`Program`]s built by the assembler).
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        assert!(
            !program.is_empty(),
            "cannot build a CFG of an empty program"
        );

        // 1. Find leaders.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(program.entry());
        leaders.insert(program.text_base());
        for (pc, instr) in program.iter_pcs() {
            if let Some(target) = instr.static_target(pc) {
                leaders.insert(target);
            }
            if instr.is_control() {
                let next = pc + INSTR_BYTES;
                if program.contains_pc(next) {
                    leaders.insert(next);
                }
            }
        }

        // 2. Slice into blocks.
        let leader_list: Vec<u64> = leaders.iter().copied().collect();
        let mut blocks = Vec::new();
        let mut by_start = BTreeMap::new();
        for (i, &start) in leader_list.iter().enumerate() {
            let end_limit = leader_list
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| program.text_end());
            // The block ends at the first control instruction or the next
            // leader, whichever comes first.
            let mut end = start;
            while end < end_limit {
                let instr = program.fetch(end).expect("leader within text");
                end += INSTR_BYTES;
                if instr.is_control() {
                    break;
                }
            }
            by_start.insert(start, blocks.len());
            blocks.push(BasicBlock {
                start,
                end,
                terminator: Terminator::Halt, // patched below
            });
        }

        // 3. Resolve terminators.
        let ids: Vec<(u64, Instr)> = blocks
            .iter()
            .map(|b| {
                let last_pc = b.end - INSTR_BYTES;
                (last_pc, program.fetch(last_pc).expect("block instr"))
            })
            .collect();
        let lookup = |pc: u64| -> Option<BlockId> { by_start.get(&pc).copied() };
        for (bid, (last_pc, last)) in ids.into_iter().enumerate() {
            let next_pc = blocks[bid].end;
            let term = if last.is_branch() {
                let taken = last
                    .static_target(last_pc)
                    .and_then(lookup)
                    .expect("validated branch target");
                match lookup(next_pc) {
                    Some(fallthrough) => Terminator::Branch { taken, fallthrough },
                    // Branch as the last instruction of the program: treat
                    // fall-through off the end as Halt-like via Indirect.
                    None => Terminator::Indirect,
                }
            } else if last.is_jump() {
                let target = last
                    .static_target(last_pc)
                    .and_then(lookup)
                    .expect("validated jump target");
                Terminator::Jump { target }
            } else if last.is_indirect_jump() {
                Terminator::Indirect
            } else if last.is_halt() {
                Terminator::Halt
            } else {
                match lookup(next_pc) {
                    Some(_) => Terminator::FallThrough,
                    None => Terminator::Halt, // runs off the end; SEQ would fault
                }
            };
            blocks[bid].terminator = term;
        }

        // 4. Predecessors.
        let mut preds = vec![Vec::new(); blocks.len()];
        for (bid, block) in blocks.iter().enumerate() {
            for succ in successors_of(block, &by_start) {
                preds[succ].push(bid);
            }
        }

        let entry = by_start[&program.entry()];
        Cfg {
            blocks,
            by_start,
            preds,
            entry,
        }
    }

    /// All basic blocks, ordered by start address.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The block starting at `pc`, if any.
    #[must_use]
    pub fn block_at(&self, pc: u64) -> Option<BlockId> {
        self.by_start.get(&pc).copied()
    }

    /// The block *containing* `pc`, if any.
    #[must_use]
    pub fn block_containing(&self, pc: u64) -> Option<BlockId> {
        let (_, &bid) = self.by_start.range(..=pc).next_back()?;
        if pc < self.blocks[bid].end {
            Some(bid)
        } else {
            None
        }
    }

    /// Successor block ids of `bid` (empty for `Halt` and `Indirect`).
    #[must_use]
    pub fn successors(&self, bid: BlockId) -> Vec<BlockId> {
        successors_of(&self.blocks[bid], &self.by_start)
    }

    /// Predecessor block ids of `bid` (indirect-jump edges are not
    /// represented).
    #[must_use]
    pub fn predecessors(&self, bid: BlockId) -> &[BlockId] {
        &self.preds[bid]
    }

    /// Every block that is the target of a `jal` with a live link register
    /// — a call — plus the entry block: the function-entry heuristic used
    /// when selecting task boundaries.
    #[must_use]
    pub fn call_targets(&self, program: &Program) -> BTreeSet<BlockId> {
        let mut out = BTreeSet::new();
        out.insert(self.entry);
        for (pc, instr) in program.iter_pcs() {
            if let Instr::Jal(rd, _) = instr {
                if !rd.is_zero() {
                    if let Some(bid) = instr.static_target(pc).and_then(|t| self.block_at(t)) {
                        out.insert(bid);
                    }
                }
            }
        }
        out
    }
}

fn successors_of(block: &BasicBlock, by_start: &BTreeMap<u64, BlockId>) -> Vec<BlockId> {
    match block.terminator {
        Terminator::FallThrough => by_start
            .get(&block.end)
            .map(|&b| vec![b])
            .unwrap_or_default(),
        Terminator::Branch { taken, fallthrough } => {
            if taken == fallthrough {
                vec![taken]
            } else {
                vec![taken, fallthrough]
            }
        }
        Terminator::Jump { target } => vec![target],
        Terminator::Indirect | Terminator::Halt => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn cfg_of(src: &str) -> (mssp_isa::Program, Cfg) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("main: addi a0, zero, 1\n addi a1, zero, 2\n halt");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].terminator, Terminator::Halt);
        assert_eq!(c.blocks()[0].len(), 3);
    }

    #[test]
    fn loop_recovers_three_blocks() {
        let (p, c) = cfg_of(
            "main: addi a0, zero, 4
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        assert_eq!(c.blocks().len(), 3);
        let loop_bid = c.block_at(p.symbol("loop").unwrap()).unwrap();
        match c.blocks()[loop_bid].terminator {
            Terminator::Branch { taken, fallthrough } => {
                assert_eq!(taken, loop_bid);
                assert_ne!(fallthrough, loop_bid);
            }
            other => panic!("expected branch, got {other:?}"),
        }
        // The loop block has two predecessors: entry and itself.
        assert_eq!(c.predecessors(loop_bid).len(), 2);
    }

    #[test]
    fn diamond_has_four_blocks() {
        let (_, c) = cfg_of(
            "main: beqz a0, else
                   addi a1, zero, 1
                   j join
             else: addi a1, zero, 2
             join: halt",
        );
        assert_eq!(c.blocks().len(), 4);
        let entry_succs = c.successors(c.entry());
        assert_eq!(entry_succs.len(), 2);
    }

    #[test]
    fn indirect_jump_has_no_successors() {
        let (_, c) = cfg_of("main: jalr ra, 0(a0)\n halt");
        assert_eq!(c.blocks()[c.entry()].terminator, Terminator::Indirect);
        assert!(c.successors(c.entry()).is_empty());
    }

    #[test]
    fn call_targets_found() {
        let (p, c) = cfg_of(
            "main: call f
                   halt
             f:    ret",
        );
        let f = c.block_at(p.symbol("f").unwrap()).unwrap();
        let targets = c.call_targets(&p);
        assert!(targets.contains(&f));
        assert!(targets.contains(&c.entry()));
    }

    #[test]
    fn block_containing_finds_interior_pcs() {
        let (p, c) = cfg_of("main: addi a0, zero, 1\n addi a1, zero, 2\n halt");
        let mid = p.entry() + 4;
        assert_eq!(c.block_containing(mid), Some(c.entry()));
        assert_eq!(c.block_containing(p.text_end()), None);
    }

    #[test]
    fn blocks_partition_the_text() {
        let (p, c) = cfg_of(
            "main: beqz a0, x
                   addi a1, zero, 1
             x:    addi a2, zero, 2
                   bnez a2, main
                   halt",
        );
        let total: usize = c.blocks().iter().map(BasicBlock::len).sum();
        assert_eq!(total, p.len());
        // Blocks are disjoint and ordered.
        for w in c.blocks().windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }
}
