//! A generic worklist dataflow framework over [`Cfg`]s.
//!
//! Every static analysis in this workspace — liveness for dead-code
//! elimination, reaching definitions and constant propagation for the
//! static soundness linter — is an instance of the same scheme: facts from
//! a join-semilattice, a transfer function per instruction, and a worklist
//! solver that iterates block-level facts to a fixpoint before recording
//! per-instruction results. [`Analysis`] captures the lattice (via
//! [`Analysis::join`]) and the transfer; [`solve`] runs it in either
//! direction.
//!
//! Indirect control flow is approximated conservatively and uniformly:
//!
//! * **Backward** analyses receive the [`Analysis::boundary`] fact at
//!   `Halt` and `Indirect` block exits (successors unknown or the program's
//!   whole final state observable).
//! * **Forward** analyses receive the boundary fact at the entry block and
//!   at every block with no static predecessors — the stand-ins for
//!   indirect-jump targets, whose in-edges the CFG cannot represent.
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::{Cfg, ConstProp, ConstVal, ReachingDefs};
//! use mssp_isa::Reg;
//!
//! let p = assemble(
//!     "main: addi a0, zero, 7
//!            addi a1, a0, 1
//!            halt",
//! ).unwrap();
//! let cfg = Cfg::build(&p);
//! let consts = ConstProp::compute(&p, &cfg);
//! assert_eq!(consts.value_after(p.entry() + 4, Reg::A1), ConstVal::Const(8));
//!
//! let defs = ReachingDefs::compute(&p, &cfg);
//! let sites: Vec<u64> = defs.defs_before(p.entry() + 4, Reg::A0).collect();
//! assert_eq!(sites, vec![p.entry()]);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mssp_isa::{Instr, Program, Reg, NUM_REGS};

use crate::live::RegSet;
use crate::{BlockId, Cfg, Terminator};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry toward exits (e.g. reaching definitions).
    Forward,
    /// Facts flow from exits toward the entry (e.g. liveness).
    Backward,
}

/// One dataflow analysis: a join-semilattice of facts plus a transfer
/// function. See the module docs for the solver's treatment of indirect
/// control flow.
pub trait Analysis {
    /// The lattice element propagated through the CFG.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The optimistic starting fact — the identity of [`Analysis::join`].
    fn init(&self) -> Self::Fact;

    /// The fact at the analysis boundary: program entry (forward) or
    /// `Halt`/`Indirect` exits (backward), plus pred-less blocks for
    /// forward analyses (conservative indirect-target stand-ins).
    fn boundary(&self) -> Self::Fact;

    /// Joins `other` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Transfers `fact` across the instruction at `pc`, in the analysis
    /// direction (for backward analyses, `fact` is the post-instruction
    /// fact on entry and the pre-instruction fact on return).
    fn transfer(&self, pc: u64, instr: Instr, fact: &mut Self::Fact);
}

/// The solved facts of one analysis over one CFG.
///
/// Facts are indexed in *execution* order regardless of the analysis
/// direction: [`DataflowResults::before`] is the program point immediately
/// preceding an instruction, [`DataflowResults::after`] the one following
/// it.
#[derive(Debug, Clone)]
pub struct DataflowResults<F> {
    block_entry: Vec<F>,
    block_exit: Vec<F>,
    before: BTreeMap<u64, F>,
    after: BTreeMap<u64, F>,
}

impl<F> DataflowResults<F> {
    /// The fact holding just before the instruction at `pc` executes.
    #[must_use]
    pub fn before(&self, pc: u64) -> Option<&F> {
        self.before.get(&pc)
    }

    /// The fact holding just after the instruction at `pc` executes.
    #[must_use]
    pub fn after(&self, pc: u64) -> Option<&F> {
        self.after.get(&pc)
    }

    /// The fact at a block's entry (execution order).
    #[must_use]
    pub fn block_entry(&self, bid: BlockId) -> &F {
        &self.block_entry[bid]
    }

    /// The fact at a block's exit (execution order).
    #[must_use]
    pub fn block_exit(&self, bid: BlockId) -> &F {
        &self.block_exit[bid]
    }
}

/// Runs `analysis` over `cfg` to a fixpoint and records per-instruction
/// facts.
pub fn solve<A: Analysis>(program: &Program, cfg: &Cfg, analysis: &A) -> DataflowResults<A::Fact> {
    let n = cfg.blocks().len();
    let direction = analysis.direction();

    // `input[b]` is the fact at the block's analysis-order start: block
    // entry for forward analyses, block exit for backward ones.
    let mut input: Vec<A::Fact> = Vec::with_capacity(n);
    for bid in 0..n {
        let mut fact = analysis.init();
        if at_boundary(cfg, bid, direction) {
            analysis.join(&mut fact, &analysis.boundary());
        }
        input.push(fact);
    }
    let mut output: Vec<A::Fact> = (0..n)
        .map(|bid| transfer_block(program, cfg, bid, direction, analysis, &input[bid]))
        .collect();

    // Worklist over blocks: seed in analysis order, then chase changes.
    let mut queue: VecDeque<BlockId> = match direction {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut queued = vec![true; n];
    while let Some(bid) = queue.pop_front() {
        queued[bid] = false;
        // Re-join this block's input from its analysis-order sources, then
        // re-transfer; a changed output re-enqueues the destinations.
        for src in flow_sources(cfg, bid, direction) {
            analysis.join(&mut input[bid], &output[src]);
        }
        let out = transfer_block(program, cfg, bid, direction, analysis, &input[bid]);
        if out != output[bid] {
            output[bid] = out;
            for dst in flow_dests(cfg, bid, direction) {
                if !queued[dst] {
                    queued[dst] = true;
                    queue.push_back(dst);
                }
            }
        }
    }

    // Final sweep: per-instruction facts.
    let mut before = BTreeMap::new();
    let mut after = BTreeMap::new();
    let mut block_entry = Vec::with_capacity(n);
    let mut block_exit = Vec::with_capacity(n);
    for (bid, block) in cfg.blocks().iter().enumerate() {
        match direction {
            Direction::Forward => {
                let mut fact = input[bid].clone();
                block_entry.push(fact.clone());
                for pc in block.pcs() {
                    before.insert(pc, fact.clone());
                    let instr = program.fetch(pc).expect("pc within text");
                    analysis.transfer(pc, instr, &mut fact);
                    after.insert(pc, fact.clone());
                }
                block_exit.push(fact);
            }
            Direction::Backward => {
                let mut fact = input[bid].clone();
                block_exit.push(fact.clone());
                for pc in block.pcs().collect::<Vec<_>>().into_iter().rev() {
                    after.insert(pc, fact.clone());
                    let instr = program.fetch(pc).expect("pc within text");
                    analysis.transfer(pc, instr, &mut fact);
                    before.insert(pc, fact.clone());
                }
                block_entry.push(fact);
            }
        }
    }

    DataflowResults {
        block_entry,
        block_exit,
        before,
        after,
    }
}

/// Whether the boundary fact applies at block `bid`'s analysis-order start.
fn at_boundary(cfg: &Cfg, bid: BlockId, direction: Direction) -> bool {
    match direction {
        Direction::Forward => bid == cfg.entry() || cfg.predecessors(bid).is_empty(),
        Direction::Backward => matches!(
            cfg.blocks()[bid].terminator,
            Terminator::Halt | Terminator::Indirect
        ),
    }
}

fn flow_sources(cfg: &Cfg, bid: BlockId, direction: Direction) -> Vec<BlockId> {
    match direction {
        Direction::Forward => cfg.predecessors(bid).to_vec(),
        Direction::Backward => cfg.successors(bid),
    }
}

fn flow_dests(cfg: &Cfg, bid: BlockId, direction: Direction) -> Vec<BlockId> {
    match direction {
        Direction::Forward => cfg.successors(bid),
        Direction::Backward => cfg.predecessors(bid).to_vec(),
    }
}

fn transfer_block<A: Analysis>(
    program: &Program,
    cfg: &Cfg,
    bid: BlockId,
    direction: Direction,
    analysis: &A,
    input: &A::Fact,
) -> A::Fact {
    let block = &cfg.blocks()[bid];
    let mut fact = input.clone();
    match direction {
        Direction::Forward => {
            for pc in block.pcs() {
                let instr = program.fetch(pc).expect("pc within text");
                analysis.transfer(pc, instr, &mut fact);
            }
        }
        Direction::Backward => {
            for pc in block.pcs().collect::<Vec<_>>().into_iter().rev() {
                let instr = program.fetch(pc).expect("pc within text");
                analysis.transfer(pc, instr, &mut fact);
            }
        }
    }
    fact
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// Per-register reaching-definition sites at one program point.
///
/// A register's value may come from any of the instruction addresses in
/// [`DefSites::defs_of`], and/or from outside the analyzed code
/// ([`DefSites::may_be_external`]) — the boot state, or writes preceding an
/// indirect-jump entry the CFG cannot see.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefSites {
    defs: BTreeMap<Reg, BTreeSet<u64>>,
    external: RegSet,
}

impl DefSites {
    /// The instruction addresses whose definition of `r` may reach this
    /// point.
    pub fn defs_of(&self, r: Reg) -> impl Iterator<Item = u64> + '_ {
        self.defs.get(&r).into_iter().flatten().copied()
    }

    /// Whether any *instruction* definition of `r` reaches this point.
    #[must_use]
    pub fn has_instr_def(&self, r: Reg) -> bool {
        self.defs.get(&r).is_some_and(|s| !s.is_empty())
    }

    /// Whether `r` may still carry a value from outside the analyzed code.
    #[must_use]
    pub fn may_be_external(&self, r: Reg) -> bool {
        self.external.contains(r)
    }
}

struct ReachingDefsAnalysis;

impl Analysis for ReachingDefsAnalysis {
    type Fact = DefSites;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self) -> DefSites {
        DefSites::default()
    }

    fn boundary(&self) -> DefSites {
        DefSites {
            defs: BTreeMap::new(),
            external: RegSet::all(),
        }
    }

    fn join(&self, into: &mut DefSites, other: &DefSites) -> bool {
        let mut changed = false;
        for (&r, sites) in &other.defs {
            let entry = into.defs.entry(r).or_default();
            for &s in sites {
                changed |= entry.insert(s);
            }
        }
        let merged = into.external.union(other.external);
        if merged != into.external {
            into.external = merged;
            changed = true;
        }
        changed
    }

    fn transfer(&self, pc: u64, instr: Instr, fact: &mut DefSites) {
        if let Some(rd) = instr.def_reg() {
            fact.defs.insert(rd, BTreeSet::from([pc]));
            fact.external.remove(rd);
        }
    }
}

/// Forward reaching-definitions over a program's CFG.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::Reg;
/// use mssp_analysis::{Cfg, ReachingDefs};
///
/// let p = assemble(
///     "main: addi a0, zero, 1
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let defs = ReachingDefs::compute(&p, &Cfg::build(&p));
/// // Both the init and the loop-body definition reach the branch.
/// let loop_pc = p.symbol("loop").unwrap();
/// let sites: Vec<u64> = defs.defs_before(loop_pc, Reg::A0).collect();
/// assert_eq!(sites, vec![p.entry(), loop_pc]);
/// ```
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    results: DataflowResults<DefSites>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `program`.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> ReachingDefs {
        ReachingDefs {
            results: solve(program, cfg, &ReachingDefsAnalysis),
        }
    }

    /// The definition sites reaching the point just before `pc`.
    #[must_use]
    pub fn before(&self, pc: u64) -> Option<&DefSites> {
        self.results.before(pc)
    }

    /// The instruction addresses whose definition of `r` may reach the
    /// point just before `pc` (empty for unanalyzed addresses).
    pub fn defs_before(&self, pc: u64, r: Reg) -> impl Iterator<Item = u64> + '_ {
        self.results
            .before(pc)
            .into_iter()
            .flat_map(move |f| f.defs_of(r))
    }
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// The constant-propagation lattice for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstVal {
    /// No path has assigned the register yet (optimistic top).
    Unknown,
    /// Every path reaching this point assigns the same value.
    Const(u64),
    /// Paths disagree, or the value is data-dependent (loads, boundary).
    Varying,
}

impl ConstVal {
    fn join(self, other: ConstVal) -> ConstVal {
        match (self, other) {
            (ConstVal::Unknown, x) | (x, ConstVal::Unknown) => x,
            (ConstVal::Const(a), ConstVal::Const(b)) if a == b => self,
            _ => ConstVal::Varying,
        }
    }

    /// The constant value, if known.
    #[must_use]
    pub fn as_const(self) -> Option<u64> {
        match self {
            ConstVal::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Per-register constness at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstFacts {
    vals: [ConstVal; NUM_REGS],
}

impl ConstFacts {
    /// The lattice value of `r` (the zero register is always `Const(0)`).
    #[must_use]
    pub fn get(&self, r: Reg) -> ConstVal {
        if r.is_zero() {
            ConstVal::Const(0)
        } else {
            self.vals[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: ConstVal) {
        if !r.is_zero() {
            self.vals[r.index()] = v;
        }
    }
}

/// The constant-propagation [`Analysis`] instance.
///
/// Exported (alongside [`CopyPropAnalysis`]) so clients with their own
/// CFG-like structures — the distiller's relocatable IR in particular —
/// can drive the same lattice and transfer functions through a custom
/// solver instead of [`solve`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstPropAnalysis;

impl Analysis for ConstPropAnalysis {
    type Fact = ConstFacts;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self) -> ConstFacts {
        ConstFacts {
            vals: [ConstVal::Unknown; NUM_REGS],
        }
    }

    fn boundary(&self) -> ConstFacts {
        ConstFacts {
            vals: [ConstVal::Varying; NUM_REGS],
        }
    }

    fn join(&self, into: &mut ConstFacts, other: &ConstFacts) -> bool {
        let mut changed = false;
        for i in 0..NUM_REGS {
            let j = into.vals[i].join(other.vals[i]);
            if j != into.vals[i] {
                into.vals[i] = j;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, pc: u64, instr: Instr, fact: &mut ConstFacts) {
        let Some(rd) = instr.def_reg() else { return };
        fact.set(rd, eval(pc, instr, fact));
    }
}

/// Evaluates the value `instr` (known to define a register) writes, given
/// the facts before it. Mirrors the interpreter's ALU semantics exactly —
/// including zero-extension of logical immediates and the RISC-V division
/// conventions.
fn eval(pc: u64, instr: Instr, facts: &ConstFacts) -> ConstVal {
    use Instr::*;

    let bin = |a: Reg, b: Reg, f: fn(u64, u64) -> u64| -> ConstVal {
        match (facts.get(a), facts.get(b)) {
            (ConstVal::Const(x), ConstVal::Const(y)) => ConstVal::Const(f(x, y)),
            (ConstVal::Varying, _) | (_, ConstVal::Varying) => ConstVal::Varying,
            _ => ConstVal::Unknown,
        }
    };
    let un = |a: Reg, f: &dyn Fn(u64) -> u64| -> ConstVal {
        match facts.get(a) {
            ConstVal::Const(x) => ConstVal::Const(f(x)),
            other => other,
        }
    };

    match instr {
        Add(_, a, b) => bin(a, b, |x, y| x.wrapping_add(y)),
        Sub(_, a, b) => bin(a, b, |x, y| x.wrapping_sub(y)),
        And(_, a, b) => bin(a, b, |x, y| x & y),
        Or(_, a, b) => bin(a, b, |x, y| x | y),
        Xor(_, a, b) => bin(a, b, |x, y| x ^ y),
        Sll(_, a, b) => bin(a, b, |x, y| x.wrapping_shl((y & 63) as u32)),
        Srl(_, a, b) => bin(a, b, |x, y| x.wrapping_shr((y & 63) as u32)),
        Sra(_, a, b) => bin(a, b, |x, y| {
            ((x as i64).wrapping_shr((y & 63) as u32)) as u64
        }),
        Slt(_, a, b) => bin(a, b, |x, y| ((x as i64) < (y as i64)) as u64),
        Sltu(_, a, b) => bin(a, b, |x, y| (x < y) as u64),
        Mul(_, a, b) => bin(a, b, |x, y| x.wrapping_mul(y)),
        Div(_, a, b) => bin(a, b, |x, y| {
            let (x, y) = (x as i64, y as i64);
            if y == 0 {
                -1i64 as u64
            } else if x == i64::MIN && y == -1 {
                x as u64
            } else {
                x.wrapping_div(y) as u64
            }
        }),
        Divu(_, a, b) => bin(a, b, |x, y| x.checked_div(y).unwrap_or(u64::MAX)),
        Rem(_, a, b) => bin(a, b, |x, y| {
            let (x, y) = (x as i64, y as i64);
            if y == 0 {
                x as u64
            } else if x == i64::MIN && y == -1 {
                0
            } else {
                x.wrapping_rem(y) as u64
            }
        }),
        Remu(_, a, b) => bin(a, b, |x, y| if y == 0 { x } else { x % y }),
        Addi(_, a, i) => un(a, &move |x| x.wrapping_add(i as i64 as u64)),
        Andi(_, a, i) => un(a, &move |x| x & (i as u16 as u64)),
        Ori(_, a, i) => un(a, &move |x| x | (i as u16 as u64)),
        Xori(_, a, i) => un(a, &move |x| x ^ (i as u16 as u64)),
        Slti(_, a, i) => un(a, &move |x| ((x as i64) < i as i64) as u64),
        Sltiu(_, a, i) => un(a, &move |x| (x < (i as i64 as u64)) as u64),
        Slli(_, a, s) => un(a, &move |x| x.wrapping_shl(s as u32)),
        Srli(_, a, s) => un(a, &move |x| x.wrapping_shr(s as u32)),
        Srai(_, a, s) => un(a, &move |x| ((x as i64).wrapping_shr(s as u32)) as u64),
        Lui(_, i) => ConstVal::Const(((i as i64) << 16) as u64),
        // Link registers hold the (statically known) return address.
        Jal(..) | Jalr(..) => ConstVal::Const(pc.wrapping_add(mssp_isa::INSTR_BYTES)),
        // Loads are data-dependent.
        _ => ConstVal::Varying,
    }
}

/// Evaluates a conditional branch's outcome under the given constant
/// facts: `Some(taken)` when both operands are known, `None` when either
/// operand varies (or the instruction is not a branch).
///
/// The distiller's constant-folding pass uses this to collapse branches
/// whose direction is decided on the asserted CFG.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::{Instr, Reg};
/// use mssp_analysis::{eval_branch, Cfg, ConstProp};
///
/// let p = assemble("main: addi a0, zero, 3\n beqz a0, main\n halt").unwrap();
/// let c = ConstProp::compute(&p, &Cfg::build(&p));
/// let facts = c.before(p.entry() + 4).unwrap();
/// // a0 == 3, so `beqz a0` is decidedly not taken.
/// assert_eq!(eval_branch(Instr::Beq(Reg::A0, Reg::ZERO, -8), facts), Some(false));
/// ```
#[must_use]
pub fn eval_branch(instr: Instr, facts: &ConstFacts) -> Option<bool> {
    use Instr::*;
    let (a, b) = match instr {
        Beq(a, b, _)
        | Bne(a, b, _)
        | Blt(a, b, _)
        | Bge(a, b, _)
        | Bltu(a, b, _)
        | Bgeu(a, b, _) => (a, b),
        _ => return None,
    };
    let (x, y) = (facts.get(a).as_const()?, facts.get(b).as_const()?);
    Some(match instr {
        Beq(..) => x == y,
        Bne(..) => x != y,
        Blt(..) => (x as i64) < (y as i64),
        Bge(..) => (x as i64) >= (y as i64),
        Bltu(..) => x < y,
        Bgeu(..) => x >= y,
        _ => unreachable!("matched above"),
    })
}

/// Forward constant propagation over a program's CFG.
///
/// Used by the linter to resolve materialized code addresses (`li`
/// sequences, link values) when approximating indirect control flow.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::Reg;
/// use mssp_analysis::{Cfg, ConstProp, ConstVal};
///
/// let p = assemble(
///     "main: lui a0, 2
///            ori a0, a0, 0x34
///            halt",
/// ).unwrap();
/// let c = ConstProp::compute(&p, &Cfg::build(&p));
/// assert_eq!(c.value_after(p.entry() + 4, Reg::A0), ConstVal::Const(0x20034));
/// ```
#[derive(Debug, Clone)]
pub struct ConstProp {
    results: DataflowResults<ConstFacts>,
}

impl ConstProp {
    /// Computes constant propagation for `program`.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> ConstProp {
        ConstProp {
            results: solve(program, cfg, &ConstPropAnalysis),
        }
    }

    /// The facts holding just before the instruction at `pc`.
    #[must_use]
    pub fn before(&self, pc: u64) -> Option<&ConstFacts> {
        self.results.before(pc)
    }

    /// The facts holding just after the instruction at `pc`.
    #[must_use]
    pub fn after(&self, pc: u64) -> Option<&ConstFacts> {
        self.results.after(pc)
    }

    /// The lattice value of `r` just before `pc` executes
    /// ([`ConstVal::Varying`] for unanalyzed addresses).
    #[must_use]
    pub fn value_before(&self, pc: u64, r: Reg) -> ConstVal {
        self.results
            .before(pc)
            .map_or(ConstVal::Varying, |f| f.get(r))
    }

    /// The lattice value of `r` just after `pc` executes.
    #[must_use]
    pub fn value_after(&self, pc: u64, r: Reg) -> ConstVal {
        self.results
            .after(pc)
            .map_or(ConstVal::Varying, |f| f.get(r))
    }

    /// Every constant a register provably holds after some instruction —
    /// the *materialized* constants of the program. The linter uses these
    /// to over-approximate indirect-jump targets: any materialized value
    /// that decodes as a code address may be jumped to.
    #[must_use]
    pub fn materialized(&self, program: &Program) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        for (pc, instr) in program.iter_pcs() {
            if let Some(rd) = instr.def_reg() {
                if let ConstVal::Const(v) = self.value_after(pc, rd) {
                    out.insert(v);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------------

/// The copy-propagation lattice for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyVal {
    /// No path has assigned the register yet (optimistic top).
    Unknown,
    /// On every path, the register currently holds the same value as the
    /// named register (whose own definition is still live).
    Of(Reg),
    /// Paths disagree, the value is original, or the copy source was
    /// overwritten.
    Fresh,
}

impl CopyVal {
    fn join(self, other: CopyVal) -> CopyVal {
        match (self, other) {
            (CopyVal::Unknown, x) | (x, CopyVal::Unknown) => x,
            (CopyVal::Of(a), CopyVal::Of(b)) if a == b => self,
            _ => CopyVal::Fresh,
        }
    }

    /// The copy source, if this register is a live copy.
    #[must_use]
    pub fn source(self) -> Option<Reg> {
        match self {
            CopyVal::Of(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-register copy relations at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyFacts {
    vals: [CopyVal; NUM_REGS],
}

impl CopyFacts {
    /// The lattice value of `r` (the zero register is never a copy).
    #[must_use]
    pub fn get(&self, r: Reg) -> CopyVal {
        if r.is_zero() {
            CopyVal::Fresh
        } else {
            self.vals[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: CopyVal) {
        if !r.is_zero() {
            self.vals[r.index()] = v;
        }
    }

    /// Invalidates every copy whose source is `killed`, then records the
    /// new binding for `killed` itself.
    fn kill_and_bind(&mut self, killed: Reg, binding: CopyVal) {
        for v in &mut self.vals {
            if *v == CopyVal::Of(killed) {
                *v = CopyVal::Fresh;
            }
        }
        self.set(killed, binding);
    }
}

/// If `instr` is a register-to-register move, the `(dest, source)` pair.
///
/// Recognized forms: `addi rd, rs, 0`, and `add`/`or`/`xor` of `rs` with
/// the zero register (both operand orders). `ori`/`xori` with immediate 0
/// also qualify because logical immediates zero-extend.
#[must_use]
pub fn as_reg_copy(instr: Instr) -> Option<(Reg, Reg)> {
    use Instr::*;
    let (rd, rs) = match instr {
        Addi(rd, rs, 0) | Ori(rd, rs, 0) | Xori(rd, rs, 0) => (rd, rs),
        Add(rd, a, b) | Or(rd, a, b) | Xor(rd, a, b) => {
            if b.is_zero() {
                (rd, a)
            } else if a.is_zero() {
                (rd, b)
            } else {
                return None;
            }
        }
        _ => return None,
    };
    if rd.is_zero() || rd == rs {
        None
    } else {
        Some((rd, rs))
    }
}

/// The copy-propagation [`Analysis`] instance (see [`ConstPropAnalysis`]
/// for why the instance itself is public).
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyPropAnalysis;

impl Analysis for CopyPropAnalysis {
    type Fact = CopyFacts;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self) -> CopyFacts {
        CopyFacts {
            vals: [CopyVal::Unknown; NUM_REGS],
        }
    }

    fn boundary(&self) -> CopyFacts {
        CopyFacts {
            vals: [CopyVal::Fresh; NUM_REGS],
        }
    }

    fn join(&self, into: &mut CopyFacts, other: &CopyFacts) -> bool {
        let mut changed = false;
        for i in 0..NUM_REGS {
            let j = into.vals[i].join(other.vals[i]);
            if j != into.vals[i] {
                into.vals[i] = j;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, _pc: u64, instr: Instr, fact: &mut CopyFacts) {
        let Some(rd) = instr.def_reg() else { return };
        let binding = match as_reg_copy(instr) {
            // Chase one level so chains of copies resolve to the oldest
            // still-live source (`rs` holding a copy of `t` means they are
            // equal right now, so `rd` copies `t` too).
            Some((_, rs)) => match fact.get(rs) {
                CopyVal::Of(t) => CopyVal::Of(t),
                _ if rs.is_zero() => CopyVal::Of(Reg::ZERO),
                _ => CopyVal::Of(rs),
            },
            None => CopyVal::Fresh,
        };
        // `rd = rs` where `rs` already copies `rd` re-materializes rd's own
        // value; a self-referential `Of(rd)` fact would be meaningless.
        let binding = match binding {
            CopyVal::Of(t) if t == rd => CopyVal::Fresh,
            b => b,
        };
        fact.kill_and_bind(rd, binding);
    }
}

/// Forward copy propagation over a program's CFG.
///
/// A register is a *copy* of another when a recognized move assigned it
/// and neither register has been redefined since; uses of the copy can be
/// rewritten to the source, which exposes dead moves to liveness DCE. The
/// distiller's pipeline runs the same analysis over its relocatable IR.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::Reg;
/// use mssp_analysis::{Cfg, CopyProp, CopyVal};
///
/// let p = assemble(
///     "main: addi a0, zero, 7
///            addi a1, a0, 0
///            addi a2, a1, 1
///            halt",
/// ).unwrap();
/// let c = CopyProp::compute(&p, &Cfg::build(&p));
/// // At the `addi a2, a1, 1`, a1 is a live copy of a0.
/// assert_eq!(c.value_before(p.entry() + 8, Reg::A1), CopyVal::Of(Reg::A0));
/// ```
#[derive(Debug, Clone)]
pub struct CopyProp {
    results: DataflowResults<CopyFacts>,
}

impl CopyProp {
    /// Computes copy propagation for `program`.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> CopyProp {
        CopyProp {
            results: solve(program, cfg, &CopyPropAnalysis),
        }
    }

    /// The facts holding just before the instruction at `pc`.
    #[must_use]
    pub fn before(&self, pc: u64) -> Option<&CopyFacts> {
        self.results.before(pc)
    }

    /// The lattice value of `r` just before `pc` executes
    /// ([`CopyVal::Fresh`] for unanalyzed addresses).
    #[must_use]
    pub fn value_before(&self, pc: u64, r: Reg) -> CopyVal {
        self.results.before(pc).map_or(CopyVal::Fresh, |f| f.get(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn setup(src: &str) -> (Program, Cfg) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn reaching_defs_straight_line_kills() {
        let (p, cfg) = setup(
            "main: addi a0, zero, 1
                   addi a0, zero, 2
                   addi a1, a0, 0
                   halt",
        );
        let defs = ReachingDefs::compute(&p, &cfg);
        let at_use: Vec<u64> = defs.defs_before(p.entry() + 8, Reg::A0).collect();
        assert_eq!(at_use, vec![p.entry() + 4], "first def must be killed");
        assert!(!defs.before(p.entry() + 8).unwrap().may_be_external(Reg::A0));
    }

    #[test]
    fn reaching_defs_merge_at_join_points() {
        let (p, cfg) = setup(
            "main: beqz a0, else
                   addi a1, zero, 1
                   j join
             else: addi a1, zero, 2
             join: halt",
        );
        let defs = ReachingDefs::compute(&p, &cfg);
        let join = p.symbol("join").unwrap();
        let sites: BTreeSet<u64> = defs.defs_before(join, Reg::A1).collect();
        assert_eq!(sites.len(), 2, "both arms reach the join");
    }

    #[test]
    fn reaching_defs_external_at_entry() {
        let (p, cfg) = setup("main: addi a1, a0, 0\n halt");
        let defs = ReachingDefs::compute(&p, &cfg);
        let f = defs.before(p.entry()).unwrap();
        assert!(f.may_be_external(Reg::A0));
        assert!(!f.has_instr_def(Reg::A0));
    }

    #[test]
    fn const_prop_evaluates_li_sequences() {
        // `li` with a wide constant expands to lui + ori chunks.
        let (p, cfg) = setup("main: li a0, 0x12345\n halt");
        let c = ConstProp::compute(&p, &cfg);
        assert!(c.materialized(&p).contains(&0x12345));
    }

    #[test]
    fn const_prop_varying_at_loop_carried_values() {
        let (p, cfg) = setup(
            "main: addi a0, zero, 5
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        );
        let c = ConstProp::compute(&p, &cfg);
        let loop_pc = p.symbol("loop").unwrap();
        // a0 differs between the entry edge (5) and the back edge.
        assert_eq!(c.value_before(loop_pc, Reg::A0), ConstVal::Varying);
    }

    #[test]
    fn const_prop_link_registers_are_constant() {
        let (p, cfg) = setup(
            "main: call f
                   halt
             f:    ret",
        );
        let c = ConstProp::compute(&p, &cfg);
        // The call materializes its return address in `ra`.
        assert!(c.materialized(&p).contains(&(p.entry() + 4)));
    }

    #[test]
    fn const_prop_agrees_at_consistent_joins() {
        let (p, cfg) = setup(
            "main: beqz a0, else
                   addi a1, zero, 7
                   j join
             else: addi a1, zero, 7
             join: addi a2, a1, 1
                   halt",
        );
        let c = ConstProp::compute(&p, &cfg);
        let join = p.symbol("join").unwrap();
        assert_eq!(c.value_before(join, Reg::A1), ConstVal::Const(7));
        assert_eq!(c.value_after(join, Reg::A2), ConstVal::Const(8));
    }

    #[test]
    fn copy_prop_kills_on_source_redefinition() {
        let (p, cfg) = setup(
            "main: addi a1, a0, 0
                   addi a0, zero, 9
                   addi a2, a1, 1
                   halt",
        );
        let c = CopyProp::compute(&p, &cfg);
        // Before the a0 redefinition, a1 copies a0...
        assert_eq!(c.value_before(p.entry() + 4, Reg::A1), CopyVal::Of(Reg::A0));
        // ...after it, the copy relation is dead.
        assert_eq!(c.value_before(p.entry() + 8, Reg::A1), CopyVal::Fresh);
    }

    #[test]
    fn copy_prop_chains_resolve_to_oldest_live_source() {
        let (p, cfg) = setup(
            "main: addi a1, a0, 0
                   addi a2, a1, 0
                   halt",
        );
        let c = CopyProp::compute(&p, &cfg);
        assert_eq!(c.value_before(p.entry() + 8, Reg::A2), CopyVal::Of(Reg::A0));
    }

    #[test]
    fn copy_prop_joins_disagreeing_paths_to_fresh() {
        let (p, cfg) = setup(
            "main: beqz a0, else
                   addi a1, a2, 0
                   j join
             else: addi a1, a3, 0
             join: halt",
        );
        let c = CopyProp::compute(&p, &cfg);
        let join = p.symbol("join").unwrap();
        assert_eq!(c.value_before(join, Reg::A1), CopyVal::Fresh);
    }

    #[test]
    fn copy_prop_recognizes_zero_moves() {
        assert_eq!(
            as_reg_copy(Instr::Add(Reg::A1, Reg::A0, Reg::ZERO)),
            Some((Reg::A1, Reg::A0))
        );
        assert_eq!(
            as_reg_copy(Instr::Or(Reg::A1, Reg::ZERO, Reg::A0)),
            Some((Reg::A1, Reg::A0))
        );
        assert_eq!(as_reg_copy(Instr::Addi(Reg::A1, Reg::A0, 1)), None);
        assert_eq!(as_reg_copy(Instr::Addi(Reg::A0, Reg::A0, 0)), None);
        // Copy *of* the zero register is a recognized li-0.
        let (p, cfg) = setup("main: addi a0, zero, 0\n addi a1, a0, 1\n halt");
        let c = CopyProp::compute(&p, &cfg);
        assert_eq!(
            c.value_before(p.entry() + 4, Reg::A0),
            CopyVal::Of(Reg::ZERO)
        );
    }

    #[test]
    fn eval_branch_decides_constant_conditions() {
        let (p, cfg) = setup("main: addi a0, zero, 3\n addi a1, zero, 5\n halt");
        let c = ConstProp::compute(&p, &cfg);
        let facts = c.after(p.entry() + 4).unwrap();
        assert_eq!(
            eval_branch(Instr::Blt(Reg::A0, Reg::A1, 0), facts),
            Some(true)
        );
        assert_eq!(
            eval_branch(Instr::Beq(Reg::A0, Reg::A1, 0), facts),
            Some(false)
        );
        assert_eq!(
            eval_branch(Instr::Bgeu(Reg::A1, Reg::A0, 0), facts),
            Some(true)
        );
        // Unknown operand: undecidable.
        assert_eq!(eval_branch(Instr::Beq(Reg::T3, Reg::A1, 0), facts), None);
        assert_eq!(eval_branch(Instr::Halt, facts), None);
    }

    #[test]
    fn zero_register_is_always_zero() {
        let (p, cfg) = setup("main: addi a0, zero, 3\n halt");
        let c = ConstProp::compute(&p, &cfg);
        assert_eq!(c.value_before(p.entry(), Reg::ZERO), ConstVal::Const(0));
        assert_eq!(c.value_after(p.entry(), Reg::A0), ConstVal::Const(3));
    }
}
