//! Binary encoding and decoding of instructions.
//!
//! Every instruction encodes to a single little-endian 32-bit word:
//!
//! ```text
//!  31        26 25     21 20     16 15                    0
//! +------------+---------+---------+-----------------------+
//! |   opcode   |   f1    |   f2    |    imm16 / rs2 / sh   |
//! +------------+---------+---------+-----------------------+
//! ```
//!
//! * `f1`/`f2` hold 5-bit register numbers (`rd`/`rs1` for ALU and load
//!   forms, `rs1`/`rs2` for branches, `src`/`base` for stores).
//! * R-type instructions place `rs2` in the low 5 bits of the immediate
//!   field; shifts place the 6-bit shift amount there.
//!
//! Decoding is total over the opcodes this module emits and rejects
//! everything else with [`DecodeError`], which the machine surfaces as an
//! illegal-instruction fault — the mechanism by which a slave that was
//! mis-steered into non-code memory is detected.

use std::fmt;

use crate::{Instr, Reg};

/// Error produced when a 32-bit word does not decode to a valid instruction.
///
/// # Examples
///
/// ```
/// use mssp_isa::decode;
/// assert!(decode(0xFFFF_FFFF).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode assignments. Gaps are left between groups for future extension.
mod op {
    pub const ADD: u32 = 0x01;
    pub const SUB: u32 = 0x02;
    pub const AND: u32 = 0x03;
    pub const OR: u32 = 0x04;
    pub const XOR: u32 = 0x05;
    pub const SLL: u32 = 0x06;
    pub const SRL: u32 = 0x07;
    pub const SRA: u32 = 0x08;
    pub const SLT: u32 = 0x09;
    pub const SLTU: u32 = 0x0A;
    pub const MUL: u32 = 0x0B;
    pub const DIV: u32 = 0x0C;
    pub const DIVU: u32 = 0x0D;
    pub const REM: u32 = 0x0E;
    pub const REMU: u32 = 0x0F;

    pub const ADDI: u32 = 0x10;
    pub const ANDI: u32 = 0x11;
    pub const ORI: u32 = 0x12;
    pub const XORI: u32 = 0x13;
    pub const SLTI: u32 = 0x14;
    pub const SLTIU: u32 = 0x15;
    pub const SLLI: u32 = 0x16;
    pub const SRLI: u32 = 0x17;
    pub const SRAI: u32 = 0x18;
    pub const LUI: u32 = 0x19;

    pub const LB: u32 = 0x20;
    pub const LBU: u32 = 0x21;
    pub const LH: u32 = 0x22;
    pub const LHU: u32 = 0x23;
    pub const LW: u32 = 0x24;
    pub const LWU: u32 = 0x25;
    pub const LD: u32 = 0x26;
    pub const SB: u32 = 0x28;
    pub const SH: u32 = 0x29;
    pub const SW: u32 = 0x2A;
    pub const SD: u32 = 0x2B;

    pub const BEQ: u32 = 0x30;
    pub const BNE: u32 = 0x31;
    pub const BLT: u32 = 0x32;
    pub const BGE: u32 = 0x33;
    pub const BLTU: u32 = 0x34;
    pub const BGEU: u32 = 0x35;
    pub const JAL: u32 = 0x36;
    pub const JALR: u32 = 0x37;

    pub const HALT: u32 = 0x3F;
}

fn pack(opcode: u32, f1: Reg, f2: Reg, imm: u16) -> u32 {
    (opcode << 26) | ((f1.index() as u32) << 21) | ((f2.index() as u32) << 16) | imm as u32
}

/// Encodes an instruction to its 32-bit binary form.
///
/// # Examples
///
/// ```
/// use mssp_isa::{encode, decode, Instr, Reg};
/// let i = Instr::Addi(Reg::A0, Reg::A1, -3);
/// assert_eq!(decode(encode(i)).unwrap(), i);
/// ```
#[must_use]
pub fn encode(instr: Instr) -> u32 {
    use Instr::*;
    match instr {
        Add(rd, a, b) => pack(op::ADD, rd, a, b.index() as u16),
        Sub(rd, a, b) => pack(op::SUB, rd, a, b.index() as u16),
        And(rd, a, b) => pack(op::AND, rd, a, b.index() as u16),
        Or(rd, a, b) => pack(op::OR, rd, a, b.index() as u16),
        Xor(rd, a, b) => pack(op::XOR, rd, a, b.index() as u16),
        Sll(rd, a, b) => pack(op::SLL, rd, a, b.index() as u16),
        Srl(rd, a, b) => pack(op::SRL, rd, a, b.index() as u16),
        Sra(rd, a, b) => pack(op::SRA, rd, a, b.index() as u16),
        Slt(rd, a, b) => pack(op::SLT, rd, a, b.index() as u16),
        Sltu(rd, a, b) => pack(op::SLTU, rd, a, b.index() as u16),
        Mul(rd, a, b) => pack(op::MUL, rd, a, b.index() as u16),
        Div(rd, a, b) => pack(op::DIV, rd, a, b.index() as u16),
        Divu(rd, a, b) => pack(op::DIVU, rd, a, b.index() as u16),
        Rem(rd, a, b) => pack(op::REM, rd, a, b.index() as u16),
        Remu(rd, a, b) => pack(op::REMU, rd, a, b.index() as u16),
        Addi(rd, a, i) => pack(op::ADDI, rd, a, i as u16),
        Andi(rd, a, i) => pack(op::ANDI, rd, a, i as u16),
        Ori(rd, a, i) => pack(op::ORI, rd, a, i as u16),
        Xori(rd, a, i) => pack(op::XORI, rd, a, i as u16),
        Slti(rd, a, i) => pack(op::SLTI, rd, a, i as u16),
        Sltiu(rd, a, i) => pack(op::SLTIU, rd, a, i as u16),
        Slli(rd, a, s) => pack(op::SLLI, rd, a, s as u16),
        Srli(rd, a, s) => pack(op::SRLI, rd, a, s as u16),
        Srai(rd, a, s) => pack(op::SRAI, rd, a, s as u16),
        Lui(rd, i) => pack(op::LUI, rd, Reg::ZERO, i as u16),
        Lb(rd, b, o) => pack(op::LB, rd, b, o as u16),
        Lbu(rd, b, o) => pack(op::LBU, rd, b, o as u16),
        Lh(rd, b, o) => pack(op::LH, rd, b, o as u16),
        Lhu(rd, b, o) => pack(op::LHU, rd, b, o as u16),
        Lw(rd, b, o) => pack(op::LW, rd, b, o as u16),
        Lwu(rd, b, o) => pack(op::LWU, rd, b, o as u16),
        Ld(rd, b, o) => pack(op::LD, rd, b, o as u16),
        Sb(s, b, o) => pack(op::SB, s, b, o as u16),
        Sh(s, b, o) => pack(op::SH, s, b, o as u16),
        Sw(s, b, o) => pack(op::SW, s, b, o as u16),
        Sd(s, b, o) => pack(op::SD, s, b, o as u16),
        Beq(a, b, o) => pack(op::BEQ, a, b, o as u16),
        Bne(a, b, o) => pack(op::BNE, a, b, o as u16),
        Blt(a, b, o) => pack(op::BLT, a, b, o as u16),
        Bge(a, b, o) => pack(op::BGE, a, b, o as u16),
        Bltu(a, b, o) => pack(op::BLTU, a, b, o as u16),
        Bgeu(a, b, o) => pack(op::BGEU, a, b, o as u16),
        Jal(rd, o) => pack(op::JAL, rd, Reg::ZERO, o as u16),
        Jalr(rd, b, o) => pack(op::JALR, rd, b, o as u16),
        Halt => pack(op::HALT, Reg::ZERO, Reg::ZERO, 0),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode is not assigned, if an R-type word
/// has a register field outside `0..32`, if a shift amount exceeds 63, or if
/// reserved fields are non-zero.
///
/// # Examples
///
/// ```
/// use mssp_isa::{encode, decode, Instr};
/// assert_eq!(decode(encode(Instr::Halt)).unwrap(), Instr::Halt);
/// assert!(decode(0).is_err());
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let err = DecodeError { word };
    let opcode = word >> 26;
    let f1 = Reg::try_new(((word >> 21) & 0x1F) as u8).ok_or(err)?;
    let f2 = Reg::try_new(((word >> 16) & 0x1F) as u8).ok_or(err)?;
    let imm = (word & 0xFFFF) as u16;
    let simm = imm as i16;

    let rs2 = || -> Result<Reg, DecodeError> {
        if imm >= 32 {
            Err(err)
        } else {
            Ok(Reg::new(imm as u8))
        }
    };
    let shamt = || -> Result<u8, DecodeError> {
        if imm >= 64 {
            Err(err)
        } else {
            Ok(imm as u8)
        }
    };

    Ok(match opcode {
        op::ADD => Add(f1, f2, rs2()?),
        op::SUB => Sub(f1, f2, rs2()?),
        op::AND => And(f1, f2, rs2()?),
        op::OR => Or(f1, f2, rs2()?),
        op::XOR => Xor(f1, f2, rs2()?),
        op::SLL => Sll(f1, f2, rs2()?),
        op::SRL => Srl(f1, f2, rs2()?),
        op::SRA => Sra(f1, f2, rs2()?),
        op::SLT => Slt(f1, f2, rs2()?),
        op::SLTU => Sltu(f1, f2, rs2()?),
        op::MUL => Mul(f1, f2, rs2()?),
        op::DIV => Div(f1, f2, rs2()?),
        op::DIVU => Divu(f1, f2, rs2()?),
        op::REM => Rem(f1, f2, rs2()?),
        op::REMU => Remu(f1, f2, rs2()?),
        op::ADDI => Addi(f1, f2, simm),
        op::ANDI => Andi(f1, f2, simm),
        op::ORI => Ori(f1, f2, simm),
        op::XORI => Xori(f1, f2, simm),
        op::SLTI => Slti(f1, f2, simm),
        op::SLTIU => Sltiu(f1, f2, simm),
        op::SLLI => Slli(f1, f2, shamt()?),
        op::SRLI => Srli(f1, f2, shamt()?),
        op::SRAI => Srai(f1, f2, shamt()?),
        op::LUI => {
            if !f2.is_zero() {
                return Err(err);
            }
            Lui(f1, simm)
        }
        op::LB => Lb(f1, f2, simm),
        op::LBU => Lbu(f1, f2, simm),
        op::LH => Lh(f1, f2, simm),
        op::LHU => Lhu(f1, f2, simm),
        op::LW => Lw(f1, f2, simm),
        op::LWU => Lwu(f1, f2, simm),
        op::LD => Ld(f1, f2, simm),
        op::SB => Sb(f1, f2, simm),
        op::SH => Sh(f1, f2, simm),
        op::SW => Sw(f1, f2, simm),
        op::SD => Sd(f1, f2, simm),
        op::BEQ => Beq(f1, f2, simm),
        op::BNE => Bne(f1, f2, simm),
        op::BLT => Blt(f1, f2, simm),
        op::BGE => Bge(f1, f2, simm),
        op::BLTU => Bltu(f1, f2, simm),
        op::BGEU => Bgeu(f1, f2, simm),
        op::JAL => {
            if !f2.is_zero() {
                return Err(err);
            }
            Jal(f1, simm)
        }
        op::JALR => Jalr(f1, f2, simm),
        op::HALT => {
            if !f1.is_zero() || !f2.is_zero() || imm != 0 {
                return Err(err);
            }
            Halt
        }
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let a = Reg::A0;
        let b = Reg::A1;
        let c = Reg::T0;
        vec![
            Add(a, b, c),
            Sub(a, b, c),
            And(a, b, c),
            Or(a, b, c),
            Xor(a, b, c),
            Sll(a, b, c),
            Srl(a, b, c),
            Sra(a, b, c),
            Slt(a, b, c),
            Sltu(a, b, c),
            Mul(a, b, c),
            Div(a, b, c),
            Divu(a, b, c),
            Rem(a, b, c),
            Remu(a, b, c),
            Addi(a, b, -42),
            Andi(a, b, 0x7F),
            Ori(a, b, 1),
            Xori(a, b, -1),
            Slti(a, b, 9),
            Sltiu(a, b, 9),
            Slli(a, b, 63),
            Srli(a, b, 1),
            Srai(a, b, 32),
            Lui(a, -300),
            Lb(a, b, -8),
            Lbu(a, b, 8),
            Lh(a, b, 2),
            Lhu(a, b, 2),
            Lw(a, b, 4),
            Lwu(a, b, 4),
            Ld(a, b, 8),
            Sb(a, b, -1),
            Sh(a, b, 0),
            Sw(a, b, 4),
            Sd(a, b, 8),
            Beq(a, b, 16),
            Bne(a, b, -16),
            Blt(a, b, 4),
            Bge(a, b, 4),
            Bltu(a, b, 4),
            Bgeu(a, b, 4),
            Jal(Reg::RA, 100),
            Jalr(Reg::RA, c, 0),
            Halt,
        ]
    }

    #[test]
    fn round_trip_all_forms() {
        for i in sample_instrs() {
            let enc = encode(i);
            assert_eq!(decode(enc), Ok(i), "round trip failed for {i}");
        }
    }

    #[test]
    fn encodings_are_unique() {
        let instrs = sample_instrs();
        for (x, ix) in instrs.iter().enumerate() {
            for (y, iy) in instrs.iter().enumerate() {
                if x != y {
                    assert_ne!(encode(*ix), encode(*iy), "{ix} and {iy} collide");
                }
            }
        }
    }

    #[test]
    fn bad_opcodes_rejected() {
        // Opcode 0 is unassigned.
        assert!(decode(0).is_err());
        // Opcode 0x3E is unassigned.
        assert!(decode(0x3E << 26).is_err());
    }

    #[test]
    fn bad_fields_rejected() {
        // R-type with rs2 = 33.
        let w = (0x01 << 26) | 33;
        assert!(decode(w).is_err());
        // Shift with shamt = 64.
        let w = (0x16 << 26) | 64;
        assert!(decode(w).is_err());
        // HALT with junk in the immediate.
        let w = (0x3F << 26) | 7;
        assert!(decode(w).is_err());
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Instr::Addi(Reg::A0, Reg::A0, i16::MIN);
        assert_eq!(decode(encode(i)).unwrap(), i);
        let i = Instr::Beq(Reg::A0, Reg::A1, -4);
        assert_eq!(decode(encode(i)).unwrap(), i);
    }
}
