//! The MSSP instruction set.
//!
//! A compact 64-bit RISC ISA in the style of RISC-V/Alpha, rich enough to
//! express the SPEC-like workloads the MSSP evaluation needs while staying
//! simple enough that the sequential reference semantics (the `SEQ` model of
//! the paper) fit in one small interpreter.
//!
//! All instructions are 32 bits wide when encoded (see [`crate::encode`]).
//! Immediates are 16-bit signed values; branch/jump offsets are in bytes
//! relative to the *next* instruction's address, exactly like RISC-V's
//! `pc + 4` convention would be — here we use `pc + 4 + off`.

use std::fmt;

use crate::Reg;

/// Width of one encoded instruction, in bytes.
pub const INSTR_BYTES: u64 = 4;

/// A decoded MSSP instruction.
///
/// Field order conventions:
/// * ALU register ops: `(rd, rs1, rs2)` — `rd = rs1 op rs2`.
/// * ALU immediate ops: `(rd, rs1, imm)` — `rd = rs1 op imm`.
/// * Loads: `(rd, base, off)` — `rd = mem[base + off]`.
/// * Stores: `(src, base, off)` — `mem[base + off] = src`.
/// * Branches: `(rs1, rs2, off)` — taken target is `pc + 4 + off`.
/// * [`Instr::Jal`]: `(rd, off)` — `rd = pc + 4; pc = pc + 4 + off`.
/// * [`Instr::Jalr`]: `(rd, base, off)` — `rd = pc + 4; pc = base + off`.
///
/// # Examples
///
/// ```
/// use mssp_isa::{Instr, Reg};
///
/// let add = Instr::Add(Reg::A0, Reg::A1, Reg::A2);
/// assert_eq!(add.def_reg(), Some(Reg::A0));
/// assert!(!add.is_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 63)`.
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 <ₛ rs2) ? 1 : 0` (signed).
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 <ᵤ rs2) ? 1 : 0` (unsigned).
    Sltu(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping, low 64 bits).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (signed; division by zero yields `-1`,
    /// `i64::MIN / -1` yields `i64::MIN`, RISC-V style).
    Div(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (unsigned; division by zero yields `u64::MAX`).
    Divu(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (signed; modulo by zero yields `rs1`).
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (unsigned; modulo by zero yields `rs1`).
    Remu(Reg, Reg, Reg),

    /// `rd = rs1 + imm` (wrapping).
    Addi(Reg, Reg, i16),
    /// `rd = rs1 & zext(imm)` — logical immediates zero-extend, MIPS-style,
    /// so `ori` can splice 16-bit chunks when building wide constants.
    Andi(Reg, Reg, i16),
    /// `rd = rs1 | zext(imm)` (zero-extended immediate).
    Ori(Reg, Reg, i16),
    /// `rd = rs1 ^ zext(imm)` (zero-extended immediate).
    Xori(Reg, Reg, i16),
    /// `rd = (rs1 <ₛ sext(imm)) ? 1 : 0`.
    Slti(Reg, Reg, i16),
    /// `rd = (rs1 <ᵤ sext(imm)) ? 1 : 0`.
    Sltiu(Reg, Reg, i16),
    /// `rd = rs1 << shamt` (`shamt` in `0..64`).
    Slli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (logical).
    Srli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (arithmetic).
    Srai(Reg, Reg, u8),
    /// `rd = sext(imm) << 16` — load-upper-immediate; pair with
    /// [`Instr::Ori`] to build 32-bit constants.
    Lui(Reg, i16),

    /// Load signed byte: `rd = sext8(mem[base + off])`.
    Lb(Reg, Reg, i16),
    /// Load unsigned byte.
    Lbu(Reg, Reg, i16),
    /// Load signed 16-bit halfword.
    Lh(Reg, Reg, i16),
    /// Load unsigned 16-bit halfword.
    Lhu(Reg, Reg, i16),
    /// Load signed 32-bit word.
    Lw(Reg, Reg, i16),
    /// Load unsigned 32-bit word.
    Lwu(Reg, Reg, i16),
    /// Load 64-bit doubleword.
    Ld(Reg, Reg, i16),
    /// Store low byte of `src`.
    Sb(Reg, Reg, i16),
    /// Store low 16 bits of `src`.
    Sh(Reg, Reg, i16),
    /// Store low 32 bits of `src`.
    Sw(Reg, Reg, i16),
    /// Store all 64 bits of `src`.
    Sd(Reg, Reg, i16),

    /// Branch if `rs1 == rs2`.
    Beq(Reg, Reg, i16),
    /// Branch if `rs1 != rs2`.
    Bne(Reg, Reg, i16),
    /// Branch if `rs1 <ₛ rs2` (signed).
    Blt(Reg, Reg, i16),
    /// Branch if `rs1 >=ₛ rs2` (signed).
    Bge(Reg, Reg, i16),
    /// Branch if `rs1 <ᵤ rs2` (unsigned).
    Bltu(Reg, Reg, i16),
    /// Branch if `rs1 >=ᵤ rs2` (unsigned).
    Bgeu(Reg, Reg, i16),
    /// Jump-and-link: `rd = pc + 4; pc += 4 + off`.
    Jal(Reg, i16),
    /// Indirect jump-and-link: `rd = pc + 4; pc = base + off`.
    Jalr(Reg, Reg, i16),

    /// Stop execution; the machine state at `Halt` is the program's result.
    Halt,
}

impl Instr {
    /// The register written by this instruction, if any.
    ///
    /// Writes to [`Reg::ZERO`] are architecturally discarded, so an
    /// instruction whose destination is `zero` reports `None`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// assert_eq!(Instr::Addi(Reg::A0, Reg::ZERO, 1).def_reg(), Some(Reg::A0));
    /// assert_eq!(Instr::Sd(Reg::A0, Reg::SP, 0).def_reg(), None);
    /// assert_eq!(Instr::Addi(Reg::ZERO, Reg::A0, 1).def_reg(), None);
    /// ```
    #[must_use]
    pub fn def_reg(&self) -> Option<Reg> {
        use Instr::*;
        let rd = match *self {
            Add(rd, ..)
            | Sub(rd, ..)
            | And(rd, ..)
            | Or(rd, ..)
            | Xor(rd, ..)
            | Sll(rd, ..)
            | Srl(rd, ..)
            | Sra(rd, ..)
            | Slt(rd, ..)
            | Sltu(rd, ..)
            | Mul(rd, ..)
            | Div(rd, ..)
            | Divu(rd, ..)
            | Rem(rd, ..)
            | Remu(rd, ..)
            | Addi(rd, ..)
            | Andi(rd, ..)
            | Ori(rd, ..)
            | Xori(rd, ..)
            | Slti(rd, ..)
            | Sltiu(rd, ..)
            | Slli(rd, ..)
            | Srli(rd, ..)
            | Srai(rd, ..)
            | Lui(rd, ..)
            | Lb(rd, ..)
            | Lbu(rd, ..)
            | Lh(rd, ..)
            | Lhu(rd, ..)
            | Lw(rd, ..)
            | Lwu(rd, ..)
            | Ld(rd, ..)
            | Jal(rd, ..)
            | Jalr(rd, ..) => rd,
            Sb(..) | Sh(..) | Sw(..) | Sd(..) | Beq(..) | Bne(..) | Blt(..) | Bge(..)
            | Bltu(..) | Bgeu(..) | Halt => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The registers read by this instruction, in operand order.
    ///
    /// Reads of [`Reg::ZERO`] are included (they read the constant zero);
    /// callers that care only about dataflow can filter them out.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// let uses = Instr::Beq(Reg::A0, Reg::A1, 8).use_regs();
    /// assert_eq!(uses, [Some(Reg::A0), Some(Reg::A1)]);
    /// ```
    #[must_use]
    pub fn use_regs(&self) -> [Option<Reg>; 2] {
        use Instr::*;
        match *self {
            Add(_, a, b)
            | Sub(_, a, b)
            | And(_, a, b)
            | Or(_, a, b)
            | Xor(_, a, b)
            | Sll(_, a, b)
            | Srl(_, a, b)
            | Sra(_, a, b)
            | Slt(_, a, b)
            | Sltu(_, a, b)
            | Mul(_, a, b)
            | Div(_, a, b)
            | Divu(_, a, b)
            | Rem(_, a, b)
            | Remu(_, a, b) => [Some(a), Some(b)],
            Addi(_, a, _)
            | Andi(_, a, _)
            | Ori(_, a, _)
            | Xori(_, a, _)
            | Slti(_, a, _)
            | Sltiu(_, a, _)
            | Slli(_, a, _)
            | Srli(_, a, _)
            | Srai(_, a, _) => [Some(a), None],
            Lui(..) | Jal(..) | Halt => [None, None],
            Lb(_, b, _)
            | Lbu(_, b, _)
            | Lh(_, b, _)
            | Lhu(_, b, _)
            | Lw(_, b, _)
            | Lwu(_, b, _)
            | Ld(_, b, _)
            | Jalr(_, b, _) => [Some(b), None],
            Sb(s, b, _) | Sh(s, b, _) | Sw(s, b, _) | Sd(s, b, _) => [Some(s), Some(b)],
            Beq(a, b, _)
            | Bne(a, b, _)
            | Blt(a, b, _)
            | Bge(a, b, _)
            | Bltu(a, b, _)
            | Bgeu(a, b, _) => [Some(a), Some(b)],
        }
    }

    /// Rewrites every *source* operand through `f`, leaving destinations,
    /// immediates and offsets untouched.
    ///
    /// This is the substitution primitive of copy propagation: replacing a
    /// use of `r` with a register holding the same value never changes the
    /// instruction's result. Reads of [`Reg::ZERO`] are passed through `f`
    /// like any other (a well-behaved `f` maps `zero` to itself).
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// let add = Instr::Add(Reg::A0, Reg::A1, Reg::A2);
    /// let swapped = add.map_uses(|r| if r == Reg::A1 { Reg::T0 } else { r });
    /// assert_eq!(swapped, Instr::Add(Reg::A0, Reg::T0, Reg::A2));
    /// ```
    #[must_use]
    pub fn map_uses(self, mut f: impl FnMut(Reg) -> Reg) -> Instr {
        use Instr::*;
        match self {
            Add(rd, a, b) => Add(rd, f(a), f(b)),
            Sub(rd, a, b) => Sub(rd, f(a), f(b)),
            And(rd, a, b) => And(rd, f(a), f(b)),
            Or(rd, a, b) => Or(rd, f(a), f(b)),
            Xor(rd, a, b) => Xor(rd, f(a), f(b)),
            Sll(rd, a, b) => Sll(rd, f(a), f(b)),
            Srl(rd, a, b) => Srl(rd, f(a), f(b)),
            Sra(rd, a, b) => Sra(rd, f(a), f(b)),
            Slt(rd, a, b) => Slt(rd, f(a), f(b)),
            Sltu(rd, a, b) => Sltu(rd, f(a), f(b)),
            Mul(rd, a, b) => Mul(rd, f(a), f(b)),
            Div(rd, a, b) => Div(rd, f(a), f(b)),
            Divu(rd, a, b) => Divu(rd, f(a), f(b)),
            Rem(rd, a, b) => Rem(rd, f(a), f(b)),
            Remu(rd, a, b) => Remu(rd, f(a), f(b)),
            Addi(rd, a, i) => Addi(rd, f(a), i),
            Andi(rd, a, i) => Andi(rd, f(a), i),
            Ori(rd, a, i) => Ori(rd, f(a), i),
            Xori(rd, a, i) => Xori(rd, f(a), i),
            Slti(rd, a, i) => Slti(rd, f(a), i),
            Sltiu(rd, a, i) => Sltiu(rd, f(a), i),
            Slli(rd, a, s) => Slli(rd, f(a), s),
            Srli(rd, a, s) => Srli(rd, f(a), s),
            Srai(rd, a, s) => Srai(rd, f(a), s),
            Lui(..) | Jal(..) | Halt => self,
            Lb(rd, b, o) => Lb(rd, f(b), o),
            Lbu(rd, b, o) => Lbu(rd, f(b), o),
            Lh(rd, b, o) => Lh(rd, f(b), o),
            Lhu(rd, b, o) => Lhu(rd, f(b), o),
            Lw(rd, b, o) => Lw(rd, f(b), o),
            Lwu(rd, b, o) => Lwu(rd, f(b), o),
            Ld(rd, b, o) => Ld(rd, f(b), o),
            Sb(s, b, o) => Sb(f(s), f(b), o),
            Sh(s, b, o) => Sh(f(s), f(b), o),
            Sw(s, b, o) => Sw(f(s), f(b), o),
            Sd(s, b, o) => Sd(f(s), f(b), o),
            Beq(a, b, o) => Beq(f(a), f(b), o),
            Bne(a, b, o) => Bne(f(a), f(b), o),
            Blt(a, b, o) => Blt(f(a), f(b), o),
            Bge(a, b, o) => Bge(f(a), f(b), o),
            Bltu(a, b, o) => Bltu(f(a), f(b), o),
            Bgeu(a, b, o) => Bgeu(f(a), f(b), o),
            Jalr(rd, b, o) => Jalr(rd, f(b), o),
        }
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Bge(..)
                | Instr::Bltu(..)
                | Instr::Bgeu(..)
        )
    }

    /// Whether this is an unconditional direct jump ([`Instr::Jal`]).
    #[must_use]
    pub fn is_jump(&self) -> bool {
        matches!(self, Instr::Jal(..))
    }

    /// Whether this is an indirect jump ([`Instr::Jalr`]).
    #[must_use]
    pub fn is_indirect_jump(&self) -> bool {
        matches!(self, Instr::Jalr(..))
    }

    /// Whether this instruction can redirect control flow (branch, jump,
    /// indirect jump, or halt).
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.is_branch() || self.is_jump() || self.is_indirect_jump() || self.is_halt()
    }

    /// Whether this is a memory load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::Lb(..)
                | Instr::Lbu(..)
                | Instr::Lh(..)
                | Instr::Lhu(..)
                | Instr::Lw(..)
                | Instr::Lwu(..)
                | Instr::Ld(..)
        )
    }

    /// Whether this is a memory store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Instr::Sb(..) | Instr::Sh(..) | Instr::Sw(..) | Instr::Sd(..)
        )
    }

    /// Whether this instruction accesses memory at all.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this is the [`Instr::Halt`] instruction.
    #[must_use]
    pub fn is_halt(&self) -> bool {
        matches!(self, Instr::Halt)
    }

    /// The memory access width in bytes, if this is a load or store.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// assert_eq!(Instr::Lw(Reg::A0, Reg::SP, 0).access_bytes(), Some(4));
    /// assert_eq!(Instr::Halt.access_bytes(), None);
    /// ```
    #[must_use]
    pub fn access_bytes(&self) -> Option<u8> {
        use Instr::*;
        match self {
            Lb(..) | Lbu(..) | Sb(..) => Some(1),
            Lh(..) | Lhu(..) | Sh(..) => Some(2),
            Lw(..) | Lwu(..) | Sw(..) => Some(4),
            Ld(..) | Sd(..) => Some(8),
            _ => None,
        }
    }

    /// The statically-known control-flow target of a branch or `jal` located
    /// at address `pc`, or `None` for non-control and indirect instructions.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// // A branch at 0x100 with offset 8 targets 0x10C (pc + 4 + off).
    /// let b = Instr::Beq(Reg::A0, Reg::ZERO, 8);
    /// assert_eq!(b.static_target(0x100), Some(0x10C));
    /// ```
    #[must_use]
    pub fn static_target(&self, pc: u64) -> Option<u64> {
        use Instr::*;
        match *self {
            Beq(_, _, off)
            | Bne(_, _, off)
            | Blt(_, _, off)
            | Bge(_, _, off)
            | Bltu(_, _, off)
            | Bgeu(_, _, off)
            | Jal(_, off) => Some(pc.wrapping_add(INSTR_BYTES).wrapping_add(off as i64 as u64)),
            _ => None,
        }
    }

    /// The mnemonic for this instruction, e.g. `"addi"`.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use Instr::*;
        match self {
            Add(..) => "add",
            Sub(..) => "sub",
            And(..) => "and",
            Or(..) => "or",
            Xor(..) => "xor",
            Sll(..) => "sll",
            Srl(..) => "srl",
            Sra(..) => "sra",
            Slt(..) => "slt",
            Sltu(..) => "sltu",
            Mul(..) => "mul",
            Div(..) => "div",
            Divu(..) => "divu",
            Rem(..) => "rem",
            Remu(..) => "remu",
            Addi(..) => "addi",
            Andi(..) => "andi",
            Ori(..) => "ori",
            Xori(..) => "xori",
            Slti(..) => "slti",
            Sltiu(..) => "sltiu",
            Slli(..) => "slli",
            Srli(..) => "srli",
            Srai(..) => "srai",
            Lui(..) => "lui",
            Lb(..) => "lb",
            Lbu(..) => "lbu",
            Lh(..) => "lh",
            Lhu(..) => "lhu",
            Lw(..) => "lw",
            Lwu(..) => "lwu",
            Ld(..) => "ld",
            Sb(..) => "sb",
            Sh(..) => "sh",
            Sw(..) => "sw",
            Sd(..) => "sd",
            Beq(..) => "beq",
            Bne(..) => "bne",
            Blt(..) => "blt",
            Bge(..) => "bge",
            Bltu(..) => "bltu",
            Bgeu(..) => "bgeu",
            Jal(..) => "jal",
            Jalr(..) => "jalr",
            Halt => "halt",
        }
    }

    /// Rewrites the branch/jump offset of a control instruction.
    ///
    /// Used by the distiller when relocating code. Returns `None` if the
    /// instruction carries no relative offset.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// let b = Instr::Beq(Reg::A0, Reg::ZERO, 8);
    /// assert_eq!(b.with_offset(-4), Some(Instr::Beq(Reg::A0, Reg::ZERO, -4)));
    /// assert_eq!(Instr::Halt.with_offset(0), None);
    /// ```
    #[must_use]
    pub fn with_offset(&self, off: i16) -> Option<Instr> {
        use Instr::*;
        Some(match *self {
            Beq(a, b, _) => Beq(a, b, off),
            Bne(a, b, _) => Bne(a, b, off),
            Blt(a, b, _) => Blt(a, b, off),
            Bge(a, b, _) => Bge(a, b, off),
            Bltu(a, b, _) => Bltu(a, b, off),
            Bgeu(a, b, _) => Bgeu(a, b, off),
            Jal(rd, _) => Jal(rd, off),
            _ => return None,
        })
    }

    /// Flips the polarity of a conditional branch, preserving its offset.
    ///
    /// `beq ↔ bne`, `blt ↔ bge`, `bltu ↔ bgeu`. Returns `None` for
    /// non-branches.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Instr, Reg};
    /// let b = Instr::Blt(Reg::A0, Reg::A1, 12);
    /// assert_eq!(b.negated(), Some(Instr::Bge(Reg::A0, Reg::A1, 12)));
    /// ```
    #[must_use]
    pub fn negated(&self) -> Option<Instr> {
        use Instr::*;
        Some(match *self {
            Beq(a, b, off) => Bne(a, b, off),
            Bne(a, b, off) => Beq(a, b, off),
            Blt(a, b, off) => Bge(a, b, off),
            Bge(a, b, off) => Blt(a, b, off),
            Bltu(a, b, off) => Bgeu(a, b, off),
            Bgeu(a, b, off) => Bltu(a, b, off),
            _ => return None,
        })
    }

    /// A canonical no-op (`addi zero, zero, 0`).
    #[must_use]
    pub fn nop() -> Instr {
        Instr::Addi(Reg::ZERO, Reg::ZERO, 0)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        let m = self.mnemonic();
        match *self {
            Add(rd, a, b)
            | Sub(rd, a, b)
            | And(rd, a, b)
            | Or(rd, a, b)
            | Xor(rd, a, b)
            | Sll(rd, a, b)
            | Srl(rd, a, b)
            | Sra(rd, a, b)
            | Slt(rd, a, b)
            | Sltu(rd, a, b)
            | Mul(rd, a, b)
            | Div(rd, a, b)
            | Divu(rd, a, b)
            | Rem(rd, a, b)
            | Remu(rd, a, b) => {
                write!(f, "{m} {rd}, {a}, {b}")
            }
            Addi(rd, a, i)
            | Andi(rd, a, i)
            | Ori(rd, a, i)
            | Xori(rd, a, i)
            | Slti(rd, a, i)
            | Sltiu(rd, a, i) => write!(f, "{m} {rd}, {a}, {i}"),
            Slli(rd, a, s) | Srli(rd, a, s) | Srai(rd, a, s) => write!(f, "{m} {rd}, {a}, {s}"),
            Lui(rd, i) => write!(f, "{m} {rd}, {i}"),
            Lb(rd, b, o)
            | Lbu(rd, b, o)
            | Lh(rd, b, o)
            | Lhu(rd, b, o)
            | Lw(rd, b, o)
            | Lwu(rd, b, o)
            | Ld(rd, b, o) => write!(f, "{m} {rd}, {o}({b})"),
            Sb(s, b, o) | Sh(s, b, o) | Sw(s, b, o) | Sd(s, b, o) => {
                write!(f, "{m} {s}, {o}({b})")
            }
            Beq(a, b, o)
            | Bne(a, b, o)
            | Blt(a, b, o)
            | Bge(a, b, o)
            | Bltu(a, b, o)
            | Bgeu(a, b, o) => write!(f, "{m} {a}, {b}, {o}"),
            Jal(rd, o) => write!(f, "{m} {rd}, {o}"),
            Jalr(rd, b, o) => write!(f, "{m} {rd}, {o}({b})"),
            Halt => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_reg_zero_is_discarded() {
        assert_eq!(Instr::Add(Reg::ZERO, Reg::A0, Reg::A1).def_reg(), None);
        assert_eq!(Instr::Jal(Reg::ZERO, 4).def_reg(), None);
        assert_eq!(Instr::Jal(Reg::RA, 4).def_reg(), Some(Reg::RA));
    }

    #[test]
    fn classification_is_disjoint_for_control() {
        let b = Instr::Bne(Reg::A0, Reg::ZERO, -8);
        assert!(b.is_branch() && b.is_control() && !b.is_jump());
        let j = Instr::Jal(Reg::ZERO, 16);
        assert!(j.is_jump() && j.is_control() && !j.is_branch());
        let jr = Instr::Jalr(Reg::ZERO, Reg::RA, 0);
        assert!(jr.is_indirect_jump() && jr.is_control());
        assert!(Instr::Halt.is_control());
        assert!(!Instr::nop().is_control());
    }

    #[test]
    fn loads_and_stores_classified() {
        let l = Instr::Ld(Reg::A0, Reg::SP, 8);
        let s = Instr::Sd(Reg::A0, Reg::SP, 8);
        assert!(l.is_load() && !l.is_store() && l.is_mem());
        assert!(s.is_store() && !s.is_load() && s.is_mem());
        assert_eq!(l.access_bytes(), Some(8));
        assert_eq!(Instr::Sb(Reg::A0, Reg::SP, 0).access_bytes(), Some(1));
    }

    #[test]
    fn static_target_handles_negative_offsets() {
        let b = Instr::Bne(Reg::A0, Reg::ZERO, -8);
        assert_eq!(b.static_target(0x100), Some(0x100 + 4 - 8));
        assert_eq!(
            Instr::Jalr(Reg::ZERO, Reg::RA, 0).static_target(0x100),
            None
        );
    }

    #[test]
    fn negation_round_trips() {
        let branches = [
            Instr::Beq(Reg::A0, Reg::A1, 4),
            Instr::Bne(Reg::A0, Reg::A1, 4),
            Instr::Blt(Reg::A0, Reg::A1, 4),
            Instr::Bge(Reg::A0, Reg::A1, 4),
            Instr::Bltu(Reg::A0, Reg::A1, 4),
            Instr::Bgeu(Reg::A0, Reg::A1, 4),
        ];
        for b in branches {
            assert_eq!(b.negated().unwrap().negated().unwrap(), b);
        }
        assert_eq!(Instr::Halt.negated(), None);
    }

    #[test]
    fn display_is_parseable_looking() {
        assert_eq!(
            Instr::Add(Reg::A0, Reg::A1, Reg::A2).to_string(),
            "add a0, a1, a2"
        );
        assert_eq!(
            Instr::Ld(Reg::A0, Reg::SP, -16).to_string(),
            "ld a0, -16(sp)"
        );
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn map_uses_touches_only_sources() {
        let subst = |r: Reg| if r == Reg::A0 { Reg::T1 } else { r };
        // Store: both the value and the base are sources.
        assert_eq!(
            Instr::Sd(Reg::A0, Reg::A0, 8).map_uses(subst),
            Instr::Sd(Reg::T1, Reg::T1, 8)
        );
        // The destination register is never rewritten.
        assert_eq!(
            Instr::Addi(Reg::A0, Reg::A0, 1).map_uses(subst),
            Instr::Addi(Reg::A0, Reg::T1, 1)
        );
        // Instructions without register sources pass through unchanged.
        assert_eq!(
            Instr::Lui(Reg::A0, 3).map_uses(subst),
            Instr::Lui(Reg::A0, 3)
        );
        assert_eq!(Instr::Halt.map_uses(subst), Instr::Halt);
    }

    #[test]
    fn use_regs_covers_stores_and_branches() {
        assert_eq!(
            Instr::Sd(Reg::A0, Reg::SP, 0).use_regs(),
            [Some(Reg::A0), Some(Reg::SP)]
        );
        assert_eq!(
            Instr::Jalr(Reg::RA, Reg::T0, 0).use_regs(),
            [Some(Reg::T0), None]
        );
        assert_eq!(Instr::Lui(Reg::A0, 5).use_regs(), [None, None]);
    }
}
