//! PC spans: half-open address ranges over a program's text segment.
//!
//! Analyses and diagnostics need to talk about *where* in a binary
//! something happened — a single instruction, a basic block, or a whole
//! region. A [`PcSpan`] is the common currency: a half-open byte range
//! `[start, end)` of instruction addresses, with helpers for the
//! point/block cases and a stable `{start:#x}..{end:#x}` rendering.

use std::fmt;

use crate::INSTR_BYTES;

/// A half-open range `[start, end)` of instruction addresses.
///
/// # Examples
///
/// ```
/// use mssp_isa::PcSpan;
///
/// let block = PcSpan::new(0x100, 0x110);
/// assert_eq!(block.instr_count(), 4);
/// assert!(block.contains(0x10C));
/// assert!(!block.contains(0x110));
/// assert_eq!(block.to_string(), "0x100..0x110");
///
/// let point = PcSpan::point(0x104);
/// assert_eq!(point.instr_count(), 1);
/// assert!(block.covers(point));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PcSpan {
    /// Address of the first instruction in the span.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
}

impl PcSpan {
    /// Creates a span `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> PcSpan {
        assert!(end >= start, "span end {end:#x} before start {start:#x}");
        PcSpan { start, end }
    }

    /// The span of the single instruction at `pc`.
    #[must_use]
    pub fn point(pc: u64) -> PcSpan {
        PcSpan {
            start: pc,
            end: pc + INSTR_BYTES,
        }
    }

    /// Whether `pc` lies inside the span.
    #[must_use]
    pub fn contains(self, pc: u64) -> bool {
        pc >= self.start && pc < self.end
    }

    /// Whether this span fully covers `other`.
    #[must_use]
    pub fn covers(self, other: PcSpan) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// Number of instruction slots in the span.
    #[must_use]
    pub fn instr_count(self) -> usize {
        ((self.end - self.start) / INSTR_BYTES) as usize
    }

    /// Whether the span is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Iterates over the instruction addresses in the span.
    pub fn pcs(self) -> impl Iterator<Item = u64> {
        (self.start..self.end).step_by(INSTR_BYTES as usize)
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn merge(self, other: PcSpan) -> PcSpan {
        PcSpan {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for PcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}..{:#x}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_spans_one_instruction() {
        let s = PcSpan::point(0x200);
        assert_eq!(s.instr_count(), 1);
        assert!(s.contains(0x200));
        assert!(!s.contains(0x204));
        assert_eq!(s.pcs().collect::<Vec<_>>(), vec![0x200]);
    }

    #[test]
    fn merge_covers_both() {
        let a = PcSpan::new(0x100, 0x108);
        let b = PcSpan::new(0x110, 0x120);
        let m = a.merge(b);
        assert!(m.covers(a) && m.covers(b));
        assert_eq!(m, PcSpan::new(0x100, 0x120));
    }

    #[test]
    fn empty_span_contains_nothing() {
        let e = PcSpan::new(0x100, 0x100);
        assert!(e.is_empty());
        assert!(!e.contains(0x100));
        assert_eq!(e.instr_count(), 0);
    }

    #[test]
    #[should_panic(expected = "before start")]
    fn inverted_span_rejected() {
        let _ = PcSpan::new(0x110, 0x100);
    }

    #[test]
    fn display_is_hex_range() {
        assert_eq!(PcSpan::new(0x100, 0x104).to_string(), "0x100..0x104");
    }
}
