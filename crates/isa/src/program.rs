//! Program images: a text segment of instructions plus an initialized data
//! segment, with symbols.
//!
//! A [`Program`] is what the assembler produces and what both the sequential
//! reference machine and the MSSP engine execute. The distiller consumes a
//! `Program` (the *original* binary) and produces another `Program` (the
//! *distilled* binary) plus a PC correspondence map.

use std::collections::BTreeMap;
use std::fmt;

use crate::{encode, Instr, INSTR_BYTES};

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x0001_0000;

/// Default base address of the data segment.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Default initial stack pointer (stacks grow down).
pub const STACK_TOP: u64 = 0x7FFF_FFF0;

/// Default base address for workload heap areas (by convention only; the
/// machine itself places no significance on it).
pub const HEAP_BASE: u64 = 0x0100_0000;

/// An executable program image.
///
/// # Examples
///
/// ```
/// use mssp_isa::{Instr, Program, Reg};
///
/// let prog = Program::from_instrs(vec![
///     Instr::Addi(Reg::A0, Reg::ZERO, 7),
///     Instr::Halt,
/// ]);
/// assert_eq!(prog.fetch(prog.entry()), Some(Instr::Addi(Reg::A0, Reg::ZERO, 7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    text: Vec<Instr>,
    text_base: u64,
    data: Vec<u8>,
    data_base: u64,
    entry: u64,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Creates a program from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `text_base` is not 4-byte aligned, if the text and data
    /// segments overlap, or if `entry` does not point into the text segment.
    #[must_use]
    pub fn new(
        text: Vec<Instr>,
        text_base: u64,
        data: Vec<u8>,
        data_base: u64,
        entry: u64,
        symbols: BTreeMap<String, u64>,
    ) -> Program {
        assert_eq!(
            text_base % INSTR_BYTES,
            0,
            "text base must be 4-byte aligned"
        );
        let text_end = text_base + text.len() as u64 * INSTR_BYTES;
        let data_end = data_base + data.len() as u64;
        assert!(
            text_end <= data_base || data_end <= text_base,
            "text [{text_base:#x},{text_end:#x}) overlaps data [{data_base:#x},{data_end:#x})"
        );
        let prog = Program {
            text,
            text_base,
            data,
            data_base,
            entry,
            symbols,
        };
        assert!(
            prog.text.is_empty() || prog.contains_pc(entry),
            "entry {entry:#x} is outside the text segment"
        );
        prog
    }

    /// Creates a minimal program: instructions at [`TEXT_BASE`], no data,
    /// entry at the first instruction.
    #[must_use]
    pub fn from_instrs(text: Vec<Instr>) -> Program {
        Program::new(
            text,
            TEXT_BASE,
            Vec::new(),
            DATA_BASE,
            TEXT_BASE,
            BTreeMap::new(),
        )
    }

    /// Decodes a binary text image (one 32-bit word per instruction) into
    /// a program at [`TEXT_BASE`] — the loader counterpart of
    /// [`Program::encode_text`].
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::DecodeError`] if any word is not a valid
    /// instruction.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::{Program, Instr, Reg};
    /// let original = Program::from_instrs(vec![
    ///     Instr::Addi(Reg::A0, Reg::ZERO, 9),
    ///     Instr::Halt,
    /// ]);
    /// let reloaded = Program::from_encoded(&original.encode_text()).unwrap();
    /// assert_eq!(reloaded.text(), original.text());
    /// ```
    pub fn from_encoded(words: &[u32]) -> Result<Program, crate::DecodeError> {
        let text = words
            .iter()
            .map(|&w| crate::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::from_instrs(text))
    }

    /// The instructions of the text segment, in address order.
    #[must_use]
    pub fn text(&self) -> &[Instr] {
        &self.text
    }

    /// Base address of the text segment.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// One past the last text address.
    #[must_use]
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INSTR_BYTES
    }

    /// The initialized data image.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// The program entry point.
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The symbol table (label → address).
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u64> {
        &self.symbols
    }

    /// Looks up a symbol's address.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::asm::assemble;
    /// let p = assemble("main: halt").unwrap();
    /// assert_eq!(p.symbol("main"), Some(p.entry()));
    /// ```
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Whether `pc` addresses an instruction in the text segment.
    #[must_use]
    pub fn contains_pc(&self, pc: u64) -> bool {
        pc >= self.text_base
            && pc < self.text_end()
            && (pc - self.text_base).is_multiple_of(INSTR_BYTES)
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` is outside the
    /// text segment or misaligned.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<Instr> {
        self.index_of_pc(pc).map(|i| self.text[i])
    }

    /// Converts an instruction address to its index in [`Program::text`].
    #[must_use]
    pub fn index_of_pc(&self, pc: u64) -> Option<usize> {
        if self.contains_pc(pc) {
            Some(((pc - self.text_base) / INSTR_BYTES) as usize)
        } else {
            None
        }
    }

    /// Converts a text index to its instruction address.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn pc_of_index(&self, index: usize) -> u64 {
        assert!(index <= self.text.len(), "index {index} out of bounds");
        self.text_base + index as u64 * INSTR_BYTES
    }

    /// Iterates over `(pc, instruction)` pairs in address order.
    pub fn iter_pcs(&self) -> impl Iterator<Item = (u64, Instr)> + '_ {
        self.text
            .iter()
            .enumerate()
            .map(move |(i, &instr)| (self.pc_of_index(i), instr))
    }

    /// Number of instructions in the text segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Encodes the text segment to binary words.
    #[must_use]
    pub fn encode_text(&self) -> Vec<u32> {
        self.text.iter().map(|&i| encode(i)).collect()
    }

    /// Checks static well-formedness: every direct branch/jump target must
    /// land on an instruction inside the text segment.
    ///
    /// # Errors
    ///
    /// Returns the PC and target of the first violating instruction.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (pc, instr) in self.iter_pcs() {
            if let Some(target) = instr.static_target(pc) {
                if !self.contains_pc(target) {
                    return Err(ValidateError { pc, target });
                }
            }
        }
        Ok(())
    }

    /// Renders a full disassembly listing (with symbols as comments).
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut by_addr: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, instr) in self.iter_pcs() {
            if let Some(names) = by_addr.get(&pc) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {pc:#08x}: {instr}\n"));
        }
        out
    }
}

/// Error returned by [`Program::validate`] when a static control-flow target
/// escapes the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateError {
    /// Address of the offending instruction.
    pub pc: u64,
    /// The out-of-range target.
    pub target: u64,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instruction at {:#x} targets {:#x}, outside the text segment",
            self.pc, self.target
        )
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn tiny() -> Program {
        Program::from_instrs(vec![
            Instr::Addi(Reg::A0, Reg::ZERO, 1),
            Instr::Jal(Reg::ZERO, -8),
            Instr::Halt,
        ])
    }

    #[test]
    fn fetch_and_indexing_agree() {
        let p = tiny();
        for (i, (pc, instr)) in p.iter_pcs().enumerate() {
            assert_eq!(p.index_of_pc(pc), Some(i));
            assert_eq!(p.pc_of_index(i), pc);
            assert_eq!(p.fetch(pc), Some(instr));
        }
    }

    #[test]
    fn fetch_rejects_misaligned_and_out_of_range() {
        let p = tiny();
        assert_eq!(p.fetch(p.text_base() + 1), None);
        assert_eq!(p.fetch(p.text_end()), None);
        assert_eq!(p.fetch(0), None);
    }

    #[test]
    fn validate_accepts_in_range_targets() {
        let p = tiny();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_escaping_branch() {
        let p = Program::from_instrs(vec![Instr::Jal(Reg::ZERO, 0x400), Instr::Halt]);
        let err = p.validate().unwrap_err();
        assert_eq!(err.pc, p.text_base());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_segments_rejected() {
        let _ = Program::new(
            vec![Instr::Halt; 4],
            0x1000,
            vec![0; 64],
            0x1004,
            0x1000,
            BTreeMap::new(),
        );
    }

    #[test]
    fn disassembly_mentions_every_instruction() {
        let p = tiny();
        let dis = p.disassemble();
        assert!(dis.contains("addi a0, zero, 1"));
        assert!(dis.contains("halt"));
    }
}
