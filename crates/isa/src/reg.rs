//! Architectural registers.
//!
//! The MSSP ISA has 32 general-purpose 64-bit registers. Register `r0` is
//! hard-wired to zero, as in MIPS/RISC-V: writes to it are discarded and
//! reads always return zero. The assembler accepts both raw names (`r0` ..
//! `r31`) and ABI aliases (`zero`, `ra`, `sp`, `a0`-`a7`, `t0`-`t7`,
//! `s0`-`s11`).

use std::fmt;

/// Number of general-purpose registers in the ISA.
pub const NUM_REGS: usize = 32;

/// A general-purpose register identifier (`r0` through `r31`).
///
/// `Reg` is a validated newtype: it can only hold values `0..32`, so code
/// consuming a `Reg` never needs to bounds-check again.
///
/// # Examples
///
/// ```
/// use mssp_isa::Reg;
///
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 2);
/// assert_eq!(Reg::new(0), Reg::ZERO);
/// assert_eq!("a0".parse::<Reg>().unwrap(), Reg::A0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register (`r0` / `zero`).
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`r1` / `ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`r2` / `sp`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`r3` / `gp`).
    pub const GP: Reg = Reg(3);
    /// First argument / return-value register (`r4` / `a0`).
    pub const A0: Reg = Reg(4);
    /// Second argument register (`r5` / `a1`).
    pub const A1: Reg = Reg(5);
    /// Third argument register (`r6` / `a2`).
    pub const A2: Reg = Reg(6);
    /// Fourth argument register (`r7` / `a3`).
    pub const A3: Reg = Reg(7);
    /// Fifth argument register (`r8` / `a4`).
    pub const A4: Reg = Reg(8);
    /// Sixth argument register (`r9` / `a5`).
    pub const A5: Reg = Reg(9);
    /// Seventh argument register (`r10` / `a6`).
    pub const A6: Reg = Reg(10);
    /// Eighth argument register (`r11` / `a7`).
    pub const A7: Reg = Reg(11);
    /// First temporary (`r12` / `t0`).
    pub const T0: Reg = Reg(12);
    /// Second temporary (`r13` / `t1`).
    pub const T1: Reg = Reg(13);
    /// Third temporary (`r14` / `t2`).
    pub const T2: Reg = Reg(14);
    /// Fourth temporary (`r15` / `t3`).
    pub const T3: Reg = Reg(15);
    /// Fifth temporary (`r16` / `t4`).
    pub const T4: Reg = Reg(16);
    /// Sixth temporary (`r17` / `t5`).
    pub const T5: Reg = Reg(17);
    /// Seventh temporary (`r18` / `t6`).
    pub const T6: Reg = Reg(18);
    /// Eighth temporary (`r19` / `t7`).
    pub const T7: Reg = Reg(19);
    /// First callee-saved register (`r20` / `s0`).
    pub const S0: Reg = Reg(20);
    /// Second callee-saved register (`r21` / `s1`).
    pub const S1: Reg = Reg(21);
    /// Third callee-saved register (`r22` / `s2`).
    pub const S2: Reg = Reg(22);
    /// Fourth callee-saved register (`r23` / `s3`).
    pub const S3: Reg = Reg(23);
    /// Fifth callee-saved register (`r24` / `s4`).
    pub const S4: Reg = Reg(24);
    /// Sixth callee-saved register (`r25` / `s5`).
    pub const S5: Reg = Reg(25);
    /// Seventh callee-saved register (`r26` / `s6`).
    pub const S6: Reg = Reg(26);
    /// Eighth callee-saved register (`r27` / `s7`).
    pub const S7: Reg = Reg(27);
    /// Ninth callee-saved register (`r28` / `s8`).
    pub const S8: Reg = Reg(28);
    /// Tenth callee-saved register (`r29` / `s9`).
    pub const S9: Reg = Reg(29);
    /// Eleventh callee-saved register (`r30` / `s10`).
    pub const S10: Reg = Reg(30);
    /// Twelfth callee-saved register (`r31` / `s11`).
    pub const S11: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert_eq!(Reg::new(2), Reg::SP);
    /// ```
    #[must_use]
    pub fn new(index: u8) -> Reg {
        Reg::try_new(index).expect("register index out of range (must be < 32)")
    }

    /// Creates a register from its index, returning `None` if out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert!(Reg::try_new(31).is_some());
    /// assert!(Reg::try_new(32).is_none());
    /// ```
    #[must_use]
    pub fn try_new(index: u8) -> Option<Reg> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index, in `0..32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert_eq!(Reg::A1.index(), 5);
    /// ```
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert!(Reg::ZERO.is_zero());
    /// assert!(!Reg::A0.is_zero());
    /// ```
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The register's ABI alias, e.g. `"sp"` for `r2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert_eq!(Reg::SP.abi_name(), "sp");
    /// ```
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// Iterates over all 32 registers in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::Reg;
    /// assert_eq!(Reg::all().count(), 32);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

const ABI_NAMES: [&str; NUM_REGS] = [
    "zero", "ra", "sp", "gp", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t0", "t1", "t2",
    "t3", "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
    "s10", "s11",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}={})", self.0, self.abi_name())
    }
}

/// Error returned when parsing a register name fails.
///
/// # Examples
///
/// ```
/// use mssp_isa::Reg;
/// let err = "r99".parse::<Reg>().unwrap_err();
/// assert!(err.to_string().contains("r99"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(pos) = ABI_NAMES.iter().position(|n| *n == s) {
            return Ok(Reg(pos as u8));
        }
        if let Some(rest) = s.strip_prefix('r') {
            if let Ok(idx) = rest.parse::<u8>() {
                if let Some(r) = Reg::try_new(idx) {
                    return Ok(r);
                }
            }
        }
        Err(ParseRegError {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::new(r.index() as u8), r);
        }
    }

    #[test]
    fn abi_names_parse_back() {
        for r in Reg::all() {
            let parsed: Reg = r.abi_name().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let parsed: Reg = format!("r{i}").parse().unwrap();
            assert_eq!(parsed.index(), i as usize);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::try_new(32).is_none());
        assert!("r32".parse::<Reg>().is_err());
        assert!("x5".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_register_identified() {
        assert!(Reg::ZERO.is_zero());
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("r0".parse::<Reg>().unwrap(), Reg::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(40);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(format!("{:?}", Reg::SP), "Reg(2=sp)");
    }
}
