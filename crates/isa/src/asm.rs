//! A two-pass assembler for the MSSP ISA.
//!
//! The syntax is deliberately close to RISC-V assembly:
//!
//! ```text
//! ; comments start with ';' or '#'
//! .data
//! table:  .dword 1, 2, 3
//! msg:    .asciz "hi"
//! .text
//! main:
//!     la   a1, table
//!     ld   a0, 8(a1)
//!     addi a0, a0, 1
//!     beqz a0, done
//!     j    main
//! done:
//!     halt
//! ```
//!
//! Supported directives: `.text`, `.data`, `.entry <label>`, `.align <n>`,
//! `.byte`, `.half`, `.word`, `.dword`, `.space <n>`, `.ascii`, `.asciz`,
//! `.equ <name>, <value>`.
//!
//! Supported pseudo-instructions: `li`, `la`, `mv`, `not`, `neg`, `seqz`,
//! `snez`, `nop`, `j`, `jal <label>`, `call`, `ret`, `beqz`, `bnez`, `bltz`,
//! `bgez`, `bgtz`, `blez`, `bgt`, `ble`, `bgtu`, `bleu`.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Instr, Program, Reg, DATA_BASE, INSTR_BYTES, TEXT_BASE};

/// A reg-reg-imm instruction constructor plus a "signed immediate" /
/// "swapped operands" flag, depending on the table it appears in.
type FlaggedRri = (fn(Reg, Reg, i16) -> Instr, bool);

/// An assembly diagnostic, carrying the 1-based source line.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// let err = assemble("bogus a0, a1").unwrap_err();
/// assert_eq!(err[0].line, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles source text into a [`Program`] with default segment bases.
///
/// # Errors
///
/// Returns every diagnostic found (undefined labels, immediates out of
/// range, unknown mnemonics, ...), never a partial program.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// let prog = assemble("main: addi a0, zero, 3\n halt").unwrap();
/// assert_eq!(prog.len(), 2);
/// ```
pub fn assemble(source: &str) -> Result<Program, Vec<AsmError>> {
    assemble_at(source, TEXT_BASE, DATA_BASE)
}

/// Assembles source text with explicit text and data base addresses.
///
/// # Errors
///
/// As for [`assemble`].
pub fn assemble_at(source: &str, text_base: u64, data_base: u64) -> Result<Program, Vec<AsmError>> {
    Assembler::new(text_base, data_base).run(source)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Sym(String),
    /// `off(base)` memory operand.
    Mem(i64, Reg),
}

struct Assembler {
    text_base: u64,
    data_base: u64,
    errors: Vec<AsmError>,
    equs: BTreeMap<String, i64>,
}

/// A text-segment item after pass 1: an instruction template whose
/// symbol operands remain unresolved.
#[derive(Debug, Clone)]
struct PendingInstr {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
    /// Address of the first emitted instruction.
    pc: u64,
    /// Number of encoded instructions this item expands to (fixed after
    /// pass 1 so addresses are stable).
    size: u64,
}

impl Assembler {
    fn new(text_base: u64, data_base: u64) -> Assembler {
        Assembler {
            text_base,
            data_base,
            errors: Vec::new(),
            equs: BTreeMap::new(),
        }
    }

    fn err(&mut self, line: usize, msg: impl Into<String>) {
        self.errors.push(AsmError {
            line,
            msg: msg.into(),
        });
    }

    fn run(mut self, source: &str) -> Result<Program, Vec<AsmError>> {
        let mut segment = Segment::Text;
        let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
        let mut pending: Vec<PendingInstr> = Vec::new();
        let mut data: Vec<u8> = Vec::new();
        // Data fixups: (line, offset into data, width, symbol).
        let mut data_fixups: Vec<(usize, usize, usize, String)> = Vec::new();
        let mut text_cursor: u64 = self.text_base;
        let mut entry_label: Option<(usize, String)> = None;

        // ---- Pass 1: parse, lay out, collect symbols ----
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let stripped = strip_comment(raw);
            let mut rest = stripped.trim();
            // Leading labels (possibly several).
            while let Some(colon) = find_label(rest) {
                let (name, tail) = rest.split_at(colon);
                let name = name.trim();
                if !is_ident(name) {
                    self.err(line, format!("invalid label name `{name}`"));
                } else {
                    let addr = match segment {
                        Segment::Text => text_cursor,
                        Segment::Data => self.data_base + data.len() as u64,
                    };
                    if symbols.insert(name.to_string(), addr).is_some() {
                        self.err(line, format!("duplicate label `{name}`"));
                    }
                }
                rest = tail[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                let (name, args) = split_word(directive);
                match name {
                    "text" => segment = Segment::Text,
                    "data" => segment = Segment::Data,
                    "entry" => entry_label = Some((line, args.trim().to_string())),
                    "equ" => {
                        let parts: Vec<&str> = args.splitn(2, ',').collect();
                        if parts.len() != 2 {
                            self.err(line, ".equ needs `name, value`");
                        } else {
                            let name = parts[0].trim().to_string();
                            match self.parse_int(parts[1].trim()) {
                                Some(v) => {
                                    self.equs.insert(name, v);
                                }
                                None => self.err(line, "bad .equ value"),
                            }
                        }
                    }
                    "align" => {
                        let n = self.parse_int(args.trim()).unwrap_or(0);
                        if n <= 0 || (n & (n - 1)) != 0 {
                            self.err(line, ".align needs a positive power of two");
                        } else if segment == Segment::Data {
                            while !(data.len() as u64).is_multiple_of(n as u64) {
                                data.push(0);
                            }
                        }
                    }
                    "space" => match self.parse_int(args.trim()) {
                        Some(n) if n >= 0 && segment == Segment::Data => {
                            data.extend(std::iter::repeat_n(0u8, n as usize));
                        }
                        _ => self.err(line, ".space needs a non-negative size in .data"),
                    },
                    "byte" | "half" | "word" | "dword" => {
                        if segment != Segment::Text {
                            let width = match name {
                                "byte" => 1,
                                "half" => 2,
                                "word" => 4,
                                _ => 8,
                            };
                            for piece in split_commas(args) {
                                let piece = piece.trim();
                                if piece.is_empty() {
                                    continue;
                                }
                                if let Some(v) = self.parse_int(piece) {
                                    data.extend_from_slice(&v.to_le_bytes()[..width]);
                                } else if is_ident(piece) {
                                    data_fixups.push((line, data.len(), width, piece.to_string()));
                                    data.extend(std::iter::repeat_n(0u8, width));
                                } else {
                                    self.err(line, format!("bad data value `{piece}`"));
                                }
                            }
                        } else {
                            self.err(line, format!(".{name} is only allowed in .data"));
                        }
                    }
                    "ascii" | "asciz" => match parse_string(args.trim()) {
                        Some(bytes) if segment == Segment::Data => {
                            data.extend_from_slice(&bytes);
                            if name == "asciz" {
                                data.push(0);
                            }
                        }
                        Some(_) => self.err(line, format!(".{name} is only allowed in .data")),
                        None => self.err(line, "bad string literal"),
                    },
                    other => self.err(line, format!("unknown directive `.{other}`")),
                }
                continue;
            }
            // An instruction (or pseudo-instruction).
            if segment != Segment::Text {
                self.err(line, "instructions are only allowed in .text");
                continue;
            }
            let (mnemonic, args) = split_word(rest);
            let operands = match self.parse_operands(line, args) {
                Some(ops) => ops,
                None => continue,
            };
            let size = match self.instr_size(line, mnemonic, &operands) {
                Some(s) => s,
                None => continue,
            };
            pending.push(PendingInstr {
                line,
                mnemonic: mnemonic.to_string(),
                operands,
                pc: text_cursor,
                size,
            });
            text_cursor += size * INSTR_BYTES;
        }

        // ---- Pass 2: resolve symbols and emit ----
        let mut text: Vec<Instr> = Vec::new();
        for item in &pending {
            let before_len = text.len();
            let before_errs = self.errors.len();
            self.emit(item, &symbols, &mut text);
            if self.errors.len() == before_errs {
                let emitted = (text.len() - before_len) as u64;
                assert_eq!(
                    emitted, item.size,
                    "assembler size accounting bug for `{}` at line {}",
                    item.mnemonic, item.line
                );
            } else {
                // Keep addresses stable even after an error by padding or
                // truncating to the size reserved in pass 1.
                text.truncate(before_len + item.size as usize);
                while text.len() < before_len + item.size as usize {
                    text.push(Instr::nop());
                }
            }
        }
        for (line, offset, width, sym) in &data_fixups {
            match symbols
                .get(sym)
                .copied()
                .or_else(|| self.equs.get(sym).map(|&v| v as u64))
            {
                Some(v) => {
                    data[*offset..*offset + *width]
                        .copy_from_slice(&(v as i64).to_le_bytes()[..*width]);
                }
                None => self.err(*line, format!("undefined symbol `{sym}` in data")),
            }
        }
        let mut entry = self.text_base;
        if let Some((line, label)) = entry_label {
            match symbols.get(&label) {
                Some(&addr) => entry = addr,
                None => self.err(line, format!("undefined .entry label `{label}`")),
            }
        } else if let Some(&addr) = symbols.get("main") {
            entry = addr;
        }

        if self.errors.is_empty() {
            let prog = Program::new(text, self.text_base, data, self.data_base, entry, symbols);
            if let Err(e) = prog.validate() {
                return Err(vec![AsmError {
                    line: 0,
                    msg: e.to_string(),
                }]);
            }
            Ok(prog)
        } else {
            Err(self.errors)
        }
    }

    fn parse_int(&self, s: &str) -> Option<i64> {
        parse_int_with(&self.equs, s)
    }

    fn parse_operands(&mut self, line: usize, args: &str) -> Option<Vec<Operand>> {
        let mut ops = Vec::new();
        for piece in split_commas(args) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            // off(base) or (base)
            if let Some(open) = piece.find('(') {
                if !piece.ends_with(')') {
                    self.err(line, format!("bad memory operand `{piece}`"));
                    return None;
                }
                let off_str = piece[..open].trim();
                let base_str = piece[open + 1..piece.len() - 1].trim();
                let off = if off_str.is_empty() {
                    0
                } else {
                    match self.parse_int(off_str) {
                        Some(v) => v,
                        None => {
                            self.err(line, format!("bad offset `{off_str}`"));
                            return None;
                        }
                    }
                };
                let base: Reg = match base_str.parse() {
                    Ok(r) => r,
                    Err(_) => {
                        self.err(line, format!("bad base register `{base_str}`"));
                        return None;
                    }
                };
                ops.push(Operand::Mem(off, base));
                continue;
            }
            if let Ok(r) = piece.parse::<Reg>() {
                ops.push(Operand::Reg(r));
                continue;
            }
            if let Some(v) = self.parse_int(piece) {
                ops.push(Operand::Imm(v));
                continue;
            }
            if is_ident(piece) {
                ops.push(Operand::Sym(piece.to_string()));
                continue;
            }
            self.err(line, format!("unparseable operand `{piece}`"));
            return None;
        }
        Some(ops)
    }

    /// Number of encoded instructions a (pseudo-)instruction expands to.
    fn instr_size(&mut self, line: usize, mnemonic: &str, ops: &[Operand]) -> Option<u64> {
        Some(match mnemonic {
            "li" => match ops {
                [Operand::Reg(_), Operand::Imm(v)] => li_sequence(Reg::ZERO, *v).len() as u64,
                _ => {
                    self.err(line, "li needs `reg, constant`");
                    return None;
                }
            },
            // `la` always expands to lui+addi so pass-1 layout is stable.
            "la" => 2,
            // `not` expands to sub+addi.
            "not" => 2,
            _ => 1,
        })
    }

    fn expect_regs<const N: usize>(
        &mut self,
        line: usize,
        m: &str,
        ops: &[Operand],
    ) -> Option<[Reg; N]> {
        if ops.len() != N {
            self.err(line, format!("`{m}` needs {N} register operand(s)"));
            return None;
        }
        let mut out = [Reg::ZERO; N];
        for (i, op) in ops.iter().enumerate() {
            match op {
                Operand::Reg(r) => out[i] = *r,
                _ => {
                    self.err(line, format!("`{m}` operand {} must be a register", i + 1));
                    return None;
                }
            }
        }
        Some(out)
    }

    fn imm16(&mut self, line: usize, v: i64, what: &str) -> Option<i16> {
        if v < i16::MIN as i64 || v > i16::MAX as i64 {
            self.err(line, format!("{what} {v} does not fit in 16 signed bits"));
            None
        } else {
            Some(v as i16)
        }
    }

    fn uimm16(&mut self, line: usize, v: i64, what: &str) -> Option<i16> {
        if !(0..=u16::MAX as i64).contains(&v) {
            self.err(line, format!("{what} {v} does not fit in 16 unsigned bits"));
            None
        } else {
            Some(v as u16 as i16)
        }
    }

    fn branch_off(
        &mut self,
        line: usize,
        pc: u64,
        target_op: &Operand,
        symbols: &BTreeMap<String, u64>,
    ) -> Option<i16> {
        let target = match target_op {
            Operand::Sym(s) => match symbols.get(s) {
                Some(&t) => t,
                None => {
                    self.err(line, format!("undefined label `{s}`"));
                    return None;
                }
            },
            Operand::Imm(v) => *v as u64,
            _ => {
                self.err(line, "branch target must be a label or address");
                return None;
            }
        };
        let delta = target.wrapping_sub(pc.wrapping_add(INSTR_BYTES)) as i64;
        self.imm16(line, delta, "branch displacement")
    }

    #[allow(clippy::too_many_lines)]
    fn emit(&mut self, item: &PendingInstr, symbols: &BTreeMap<String, u64>, out: &mut Vec<Instr>) {
        use Operand as O;
        let line = item.line;
        let m = item.mnemonic.as_str();
        let ops = &item.operands;
        let pc = item.pc;

        // R-type three-register ALU ops.
        let rrr: Option<fn(Reg, Reg, Reg) -> Instr> = match m {
            "add" => Some(Instr::Add),
            "sub" => Some(Instr::Sub),
            "and" => Some(Instr::And),
            "or" => Some(Instr::Or),
            "xor" => Some(Instr::Xor),
            "sll" => Some(Instr::Sll),
            "srl" => Some(Instr::Srl),
            "sra" => Some(Instr::Sra),
            "slt" => Some(Instr::Slt),
            "sltu" => Some(Instr::Sltu),
            "mul" => Some(Instr::Mul),
            "div" => Some(Instr::Div),
            "divu" => Some(Instr::Divu),
            "rem" => Some(Instr::Rem),
            "remu" => Some(Instr::Remu),
            _ => None,
        };
        if let Some(ctor) = rrr {
            if let Some([a, b, c]) = self.expect_regs::<3>(line, m, ops) {
                out.push(ctor(a, b, c));
            }
            return;
        }

        // I-type ALU ops.
        let rri: Option<FlaggedRri> = match m {
            "addi" => Some((Instr::Addi, true)),
            "slti" => Some((Instr::Slti, true)),
            "sltiu" => Some((Instr::Sltiu, true)),
            "andi" => Some((Instr::Andi, false)),
            "ori" => Some((Instr::Ori, false)),
            "xori" => Some((Instr::Xori, false)),
            _ => None,
        };
        if let Some((ctor, signed)) = rri {
            match ops.as_slice() {
                [O::Reg(rd), O::Reg(rs), O::Imm(v)] => {
                    let imm = if signed {
                        self.imm16(line, *v, "immediate")
                    } else {
                        self.uimm16(line, *v, "immediate")
                    };
                    if let Some(imm) = imm {
                        out.push(ctor(*rd, *rs, imm));
                    }
                }
                _ => self.err(line, format!("`{m}` needs `reg, reg, imm`")),
            }
            return;
        }

        // Shifts with immediate shift amounts.
        let shift: Option<fn(Reg, Reg, u8) -> Instr> = match m {
            "slli" => Some(Instr::Slli),
            "srli" => Some(Instr::Srli),
            "srai" => Some(Instr::Srai),
            _ => None,
        };
        if let Some(ctor) = shift {
            match ops.as_slice() {
                [O::Reg(rd), O::Reg(rs), O::Imm(v)] if (0..64).contains(v) => {
                    out.push(ctor(*rd, *rs, *v as u8));
                }
                _ => self.err(
                    line,
                    format!("`{m}` needs `reg, reg, shamt` with shamt in 0..64"),
                ),
            }
            return;
        }

        // Loads and stores.
        let mem: Option<fn(Reg, Reg, i16) -> Instr> = match m {
            "lb" => Some(Instr::Lb),
            "lbu" => Some(Instr::Lbu),
            "lh" => Some(Instr::Lh),
            "lhu" => Some(Instr::Lhu),
            "lw" => Some(Instr::Lw),
            "lwu" => Some(Instr::Lwu),
            "ld" => Some(Instr::Ld),
            "sb" => Some(Instr::Sb),
            "sh" => Some(Instr::Sh),
            "sw" => Some(Instr::Sw),
            "sd" => Some(Instr::Sd),
            _ => None,
        };
        if let Some(ctor) = mem {
            match ops.as_slice() {
                [O::Reg(r), O::Mem(off, base)] => {
                    if let Some(off) = self.imm16(line, *off, "memory offset") {
                        out.push(ctor(*r, *base, off));
                    }
                }
                _ => self.err(line, format!("`{m}` needs `reg, off(base)`")),
            }
            return;
        }

        // Branches.
        let branch: Option<FlaggedRri> = match m {
            "beq" => Some((Instr::Beq, false)),
            "bne" => Some((Instr::Bne, false)),
            "blt" => Some((Instr::Blt, false)),
            "bge" => Some((Instr::Bge, false)),
            "bltu" => Some((Instr::Bltu, false)),
            "bgeu" => Some((Instr::Bgeu, false)),
            // Swapped-operand pseudo forms.
            "bgt" => Some((Instr::Blt, true)),
            "ble" => Some((Instr::Bge, true)),
            "bgtu" => Some((Instr::Bltu, true)),
            "bleu" => Some((Instr::Bgeu, true)),
            _ => None,
        };
        if let Some((ctor, swapped)) = branch {
            match ops.as_slice() {
                [O::Reg(a), O::Reg(b), target] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        let (x, y) = if swapped { (*b, *a) } else { (*a, *b) };
                        out.push(ctor(x, y, off));
                    }
                }
                _ => self.err(line, format!("`{m}` needs `reg, reg, label`")),
            }
            return;
        }

        // Compare-to-zero branch pseudos.
        let zbranch: Option<fn(Reg, Reg, i16) -> Instr> = match m {
            "beqz" => Some(Instr::Beq),
            "bnez" => Some(Instr::Bne),
            "bltz" => Some(Instr::Blt),
            "bgez" => Some(Instr::Bge),
            _ => None,
        };
        if let Some(ctor) = zbranch {
            match ops.as_slice() {
                [O::Reg(a), target] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        out.push(ctor(*a, Reg::ZERO, off));
                    }
                }
                _ => self.err(line, format!("`{m}` needs `reg, label`")),
            }
            return;
        }
        if m == "bgtz" || m == "blez" {
            match ops.as_slice() {
                [O::Reg(a), target] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        // bgtz a <=> blt zero, a; blez a <=> bge zero, a.
                        let ctor = if m == "bgtz" { Instr::Blt } else { Instr::Bge };
                        out.push(ctor(Reg::ZERO, *a, off));
                    }
                }
                _ => self.err(line, format!("`{m}` needs `reg, label`")),
            }
            return;
        }

        match m {
            "lui" => match ops.as_slice() {
                [O::Reg(rd), O::Imm(v)] => {
                    if let Some(imm) = self.imm16(line, *v, "lui immediate") {
                        out.push(Instr::Lui(*rd, imm));
                    }
                }
                _ => self.err(line, "`lui` needs `reg, imm`"),
            },
            "jal" => match ops.as_slice() {
                // `jal label` defaults the link register to ra.
                [target @ (O::Sym(_) | O::Imm(_))] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        out.push(Instr::Jal(Reg::RA, off));
                    }
                }
                [O::Reg(rd), target] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        out.push(Instr::Jal(*rd, off));
                    }
                }
                _ => self.err(line, "`jal` needs `[reg,] label`"),
            },
            "call" => match ops.as_slice() {
                [target @ (O::Sym(_) | O::Imm(_))] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        out.push(Instr::Jal(Reg::RA, off));
                    }
                }
                _ => self.err(line, "`call` needs a label"),
            },
            "j" => match ops.as_slice() {
                [target @ (O::Sym(_) | O::Imm(_))] => {
                    if let Some(off) = self.branch_off(line, pc, target, symbols) {
                        out.push(Instr::Jal(Reg::ZERO, off));
                    }
                }
                _ => self.err(line, "`j` needs a label"),
            },
            "jalr" => match ops.as_slice() {
                [O::Reg(rd), O::Mem(off, base)] => {
                    if let Some(off) = self.imm16(line, *off, "jalr offset") {
                        out.push(Instr::Jalr(*rd, *base, off));
                    }
                }
                [O::Reg(base)] => out.push(Instr::Jalr(Reg::RA, *base, 0)),
                _ => self.err(line, "`jalr` needs `reg, off(base)` or `reg`"),
            },
            "ret" => {
                if ops.is_empty() {
                    out.push(Instr::Jalr(Reg::ZERO, Reg::RA, 0));
                } else {
                    self.err(line, "`ret` takes no operands");
                }
            }
            "nop" => {
                if ops.is_empty() {
                    out.push(Instr::nop());
                } else {
                    self.err(line, "`nop` takes no operands");
                }
            }
            "halt" => {
                if ops.is_empty() {
                    out.push(Instr::Halt);
                } else {
                    self.err(line, "`halt` takes no operands");
                }
            }
            "mv" => {
                if let Some([rd, rs]) = self.expect_regs::<2>(line, m, ops) {
                    out.push(Instr::Addi(rd, rs, 0));
                }
            }
            "not" => {
                if let Some([rd, rs]) = self.expect_regs::<2>(line, m, ops) {
                    // MIPS-style xori zero-extends, so synthesize NOT via
                    // nor-less form: rd = rs xor -1 needs a register -1.
                    // Use: rd = rs; rd = rd xor (all-ones via sltiu trick)?
                    // Simplest correct single-instr form does not exist; use
                    // two-op form with the canonical all-ones register idiom:
                    // not rd, rs  =>  xori rd, rs, 0xFFFF only flips low 16.
                    // Instead emit sub rd, zero, rs; addi rd, rd, -1
                    // (== !rs for two's complement).
                    out.push(Instr::Sub(rd, Reg::ZERO, rs));
                    out.push(Instr::Addi(rd, rd, -1));
                }
            }
            "neg" => {
                if let Some([rd, rs]) = self.expect_regs::<2>(line, m, ops) {
                    out.push(Instr::Sub(rd, Reg::ZERO, rs));
                }
            }
            "seqz" => {
                if let Some([rd, rs]) = self.expect_regs::<2>(line, m, ops) {
                    out.push(Instr::Sltiu(rd, rs, 1));
                }
            }
            "snez" => {
                if let Some([rd, rs]) = self.expect_regs::<2>(line, m, ops) {
                    out.push(Instr::Sltu(rd, Reg::ZERO, rs));
                }
            }
            "li" => match ops.as_slice() {
                [O::Reg(rd), O::Imm(v)] => out.extend(li_sequence(*rd, *v)),
                _ => self.err(line, "`li` needs `reg, constant`"),
            },
            "la" => match ops.as_slice() {
                [O::Reg(rd), O::Sym(s)] => match symbols.get(s) {
                    Some(&addr) => {
                        if addr > i32::MAX as u64 {
                            self.err(line, format!("address of `{s}` does not fit in 31 bits"));
                        } else {
                            let hi = ((addr.wrapping_add(0x8000)) >> 16) as i16;
                            let lo = addr as i16;
                            out.push(Instr::Lui(*rd, hi));
                            out.push(Instr::Addi(*rd, *rd, lo));
                        }
                    }
                    None => self.err(line, format!("undefined symbol `{s}`")),
                },
                _ => self.err(line, "`la` needs `reg, symbol`"),
            },
            other => self.err(line, format!("unknown mnemonic `{other}`")),
        }
    }
}

/// The `li` expansion: a minimal instruction sequence materializing `value`
/// into `rd`. Exposed for the distiller and program builder.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::li_sequence;
/// use mssp_isa::Reg;
/// assert_eq!(li_sequence(Reg::A0, 7).len(), 1);
/// assert!(li_sequence(Reg::A0, 0x1234_5678_9ABCi64).len() > 2);
/// ```
#[must_use]
pub fn li_sequence(rd: Reg, value: i64) -> Vec<Instr> {
    if (i16::MIN as i64..=i16::MAX as i64).contains(&value) {
        return vec![Instr::Addi(rd, Reg::ZERO, value as i16)];
    }
    if (0..=u16::MAX as i64).contains(&value) {
        return vec![Instr::Ori(rd, Reg::ZERO, value as u16 as i16)];
    }
    if (i32::MIN as i64..=i32::MAX as i64).contains(&value) {
        // lui sign-extends from bit 31; the +0x8000 trick pairs with the
        // sign-extending addi of the low half.
        let hi = (((value as u64).wrapping_add(0x8000)) >> 16) as i16;
        let lo = value as i16;
        let mut seq = vec![Instr::Lui(rd, hi)];
        if lo != 0 {
            seq.push(Instr::Addi(rd, rd, lo));
        }
        return seq;
    }
    // Full 64-bit: splice 16-bit chunks via zero-extending ori.
    let v = value as u64;
    let chunks = [
        ((v >> 48) & 0xFFFF) as u16,
        ((v >> 32) & 0xFFFF) as u16,
        ((v >> 16) & 0xFFFF) as u16,
        (v & 0xFFFF) as u16,
    ];
    let mut seq = vec![Instr::Ori(rd, Reg::ZERO, chunks[0] as i16)];
    for &c in &chunks[1..] {
        seq.push(Instr::Slli(rd, rd, 16));
        if c != 0 {
            seq.push(Instr::Ori(rd, rd, c as i16));
        }
    }
    seq
}

fn strip_comment(line: &str) -> &str {
    // Comments: ';' or '#' outside string literals.
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Finds the colon terminating a leading label, if any.
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    // Reject things like `ld a0, 0(a1): junk` — label must be a pure ident.
    if is_ident(s[..colon].trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

/// Splits on commas that are outside parentheses and string literals.
fn split_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    let mut prev_escape = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth = depth.saturating_sub(1),
            ',' if depth == 0 && !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    if start < s.len() || !s.is_empty() {
        out.push(&s[start..]);
    }
    out
}

fn parse_int_with(equs: &BTreeMap<String, i64>, s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(v) = equs.get(s) {
        return Some(*v);
    }
    if let Some(c) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        let bytes = unescape(c)?;
        if bytes.len() == 1 {
            return Some(bytes[0] as i64);
        }
        return None;
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let body = body.trim();
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<u64>().ok()?
    };
    if neg {
        Some((magnitude as i64).wrapping_neg())
    } else {
        Some(magnitude as i64)
    }
}

fn parse_string(s: &str) -> Option<Vec<u8>> {
    let body = s.strip_prefix('"')?.strip_suffix('"')?;
    unescape(body)
}

fn unescape(body: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push(b'\n'),
                't' => out.push(b'\t'),
                'r' => out.push(b'\r'),
                '0' => out.push(0),
                '\\' => out.push(b'\\'),
                '"' => out.push(b'"'),
                '\'' => out.push(b'\''),
                _ => return None,
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program_assembles() {
        let p = assemble(
            "main:\n  addi a0, zero, 5\n  addi a1, zero, 0\nloop:\n  add a1, a1, a0\n  addi a0, a0, -1\n  bnez a0, loop\n  halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.entry(), p.symbol("main").unwrap());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("a: j b\nb: j a\n   halt").unwrap();
        let a = p.symbol("a").unwrap();
        let b = p.symbol("b").unwrap();
        assert_eq!(p.fetch(a).unwrap().static_target(a), Some(b));
        assert_eq!(p.fetch(b).unwrap().static_target(b), Some(a));
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let p = assemble(
            ".data\nbytes: .byte 1, 2, 3\n.align 8\nwords: .dword 0x1122334455667788\nmsg: .asciz \"hi\"\n.text\nmain: halt",
        )
        .unwrap();
        let base = p.data_base();
        assert_eq!(p.symbol("bytes"), Some(base));
        assert_eq!(p.symbol("words"), Some(base + 8));
        assert_eq!(&p.data()[0..3], &[1, 2, 3]);
        assert_eq!(
            u64::from_le_bytes(p.data()[8..16].try_into().unwrap()),
            0x1122334455667788
        );
        assert_eq!(&p.data()[16..19], b"hi\0");
    }

    #[test]
    fn data_symbol_fixups_point_at_labels() {
        let p =
            assemble(".data\nptr: .dword target\ntarget: .dword 42\n.text\nmain: halt").unwrap();
        let ptr = u64::from_le_bytes(p.data()[0..8].try_into().unwrap());
        assert_eq!(ptr, p.symbol("target").unwrap());
    }

    #[test]
    fn li_expansions_cover_all_ranges() {
        for &v in &[
            0i64,
            1,
            -1,
            i16::MAX as i64,
            i16::MIN as i64,
            0xFFFF,
            0x10000,
            -0x10000,
            i32::MAX as i64,
            i32::MIN as i64,
            0x8000_0000,
            0x1234_5678_9ABC_DEF0u64 as i64,
            -0x1234_5678_9ABC,
            u64::MAX as i64,
        ] {
            let seq = li_sequence(Reg::A0, v);
            assert!(!seq.is_empty() && seq.len() <= 8, "bad length for {v:#x}");
        }
    }

    #[test]
    fn equ_constants_usable_in_immediates() {
        let p = assemble(".equ N, 12\nmain: addi a0, zero, N\n halt").unwrap();
        assert_eq!(p.text()[0], Instr::Addi(Reg::A0, Reg::ZERO, 12));
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = assemble(
            "main:\n mv a0, a1\n neg a2, a3\n seqz a4, a5\n snez a6, a7\n nop\n ret\n halt",
        )
        .unwrap();
        assert_eq!(p.text()[0], Instr::Addi(Reg::A0, Reg::A1, 0));
        assert_eq!(p.text()[1], Instr::Sub(Reg::A2, Reg::ZERO, Reg::A3));
        assert_eq!(p.text()[2], Instr::Sltiu(Reg::A4, Reg::A5, 1));
        assert_eq!(p.text()[3], Instr::Sltu(Reg::A6, Reg::ZERO, Reg::A7));
        assert_eq!(p.text()[5], Instr::Jalr(Reg::ZERO, Reg::RA, 0));
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        // Build a program with a branch to a label > 32 KiB away.
        let mut src = String::from("main: beq a0, a1, far\n");
        for _ in 0..9000 {
            src.push_str(" nop\n");
        }
        src.push_str("far: halt\n");
        let errs = assemble(&src).unwrap_err();
        assert!(errs[0].msg.contains("does not fit"));
    }

    #[test]
    fn undefined_label_is_reported() {
        let errs = assemble("main: j nowhere\n halt").unwrap_err();
        assert!(errs[0].msg.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let errs = assemble("x: nop\nx: halt").unwrap_err();
        assert!(errs[0].msg.contains("duplicate"));
    }

    #[test]
    fn multiple_errors_collected() {
        let errs = assemble("main: bogus a0\n alsobogus\n halt").unwrap_err();
        assert!(errs.len() >= 2);
    }

    #[test]
    fn la_loads_data_addresses() {
        let p =
            assemble(".data\nv: .dword 9\n.text\nmain: la a0, v\n ld a1, 0(a0)\n halt").unwrap();
        // la expands to lui+addi; simulate the pair.
        let (hi, lo) = match (p.text()[0], p.text()[1]) {
            (Instr::Lui(_, hi), Instr::Addi(_, _, lo)) => (hi, lo),
            other => panic!("unexpected la expansion: {other:?}"),
        };
        let addr = (((hi as i64) << 16) + lo as i64) as u64;
        assert_eq!(addr, p.symbol("v").unwrap());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; leading comment\n\nmain: # trailing\n halt ; end\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entry_directive_overrides_main() {
        let p = assemble(".entry start\nmain: nop\nstart: halt").unwrap();
        assert_eq!(p.entry(), p.symbol("start").unwrap());
    }

    #[test]
    fn char_literals_parse() {
        let p = assemble("main: addi a0, zero, 'A'\n halt").unwrap();
        assert_eq!(p.text()[0], Instr::Addi(Reg::A0, Reg::ZERO, 65));
    }
}
