//! # mssp-isa
//!
//! The instruction-set architecture underlying the MSSP (Master/Slave
//! Speculative Parallelization) reproduction: a compact 64-bit RISC ISA with
//! a binary encoding, an assembler, and a disassembler.
//!
//! The MICRO 2002 MSSP paper evaluated on Alpha binaries; MSSP itself is
//! ISA-agnostic (its formal model never fixes an ISA), so this crate defines
//! a minimal RISC-V/Alpha-flavoured ISA that the rest of the workspace —
//! the sequential reference machine, the distiller, the MSSP engine and the
//! timing model — all share.
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//!
//! let program = assemble(
//!     "main:
//!         addi a0, zero, 10   ; n = 10
//!         addi a1, zero, 0    ; sum = 0
//!      loop:
//!         add  a1, a1, a0
//!         addi a0, a0, -1
//!         bnez a0, loop
//!         halt",
//! )
//! .expect("assembles");
//! assert_eq!(program.len(), 6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
mod encode;
mod instr;
mod program;
mod reg;
mod span;

pub use encode::{decode, encode, DecodeError};
pub use instr::{Instr, INSTR_BYTES};
pub use program::{Program, ValidateError, DATA_BASE, HEAP_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{ParseRegError, Reg, NUM_REGS};
pub use span::PcSpan;
