//! Assembler edge-case tests: directive abuse, operand forms, error
//! recovery, and the binary encode/decode loader path.

use mssp_isa::asm::{assemble, assemble_at};
use mssp_isa::{Instr, Program, Reg};

#[test]
fn custom_bases_are_respected() {
    let p = assemble_at("main: halt", 0x4000, 0x9000).unwrap();
    assert_eq!(p.text_base(), 0x4000);
    assert_eq!(p.data_base(), 0x9000);
    assert_eq!(p.entry(), 0x4000);
}

#[test]
fn multiple_labels_on_one_address() {
    let p = assemble("a: b: c: halt").unwrap();
    let addr = p.entry();
    assert_eq!(p.symbol("a"), Some(addr));
    assert_eq!(p.symbol("b"), Some(addr));
    assert_eq!(p.symbol("c"), Some(addr));
}

#[test]
fn label_and_instruction_on_same_line() {
    let p = assemble("main: addi a0, zero, 1\nend: halt").unwrap();
    assert_eq!(p.len(), 2);
    assert_eq!(p.symbol("end"), Some(p.entry() + 4));
}

#[test]
fn data_in_text_is_rejected() {
    let errs = assemble("main: .word 5\n halt").unwrap_err();
    assert!(errs[0].msg.contains("only allowed in .data"));
}

#[test]
fn instructions_in_data_are_rejected() {
    let errs = assemble(".data\n addi a0, zero, 1\n.text\nmain: halt").unwrap_err();
    assert!(errs[0].msg.contains("only allowed in .text"));
}

#[test]
fn string_escapes_round_trip() {
    let p = assemble(".data\ns: .asciz \"a\\tb\\n\\\"q\\\"\\0z\"\n.text\nmain: halt").unwrap();
    assert_eq!(p.data(), b"a\tb\n\"q\"\0z\0");
}

#[test]
fn hex_binary_and_underscore_literals() {
    let p =
        assemble("main: addi a0, zero, 0x7F\n addi a1, zero, 0b1010\n addi a2, zero, 1_000\n halt")
            .unwrap();
    assert_eq!(p.text()[0], Instr::Addi(Reg::A0, Reg::ZERO, 0x7F));
    assert_eq!(p.text()[1], Instr::Addi(Reg::A1, Reg::ZERO, 10));
    assert_eq!(p.text()[2], Instr::Addi(Reg::A2, Reg::ZERO, 1000));
}

#[test]
fn bad_align_is_reported() {
    let errs = assemble(".data\n.align 3\n.text\nmain: halt").unwrap_err();
    assert!(errs[0].msg.contains("power of two"));
}

#[test]
fn memory_operand_without_offset() {
    let p = assemble("main: ld a0, (sp)\n halt").unwrap();
    assert_eq!(p.text()[0], Instr::Ld(Reg::A0, Reg::SP, 0));
}

#[test]
fn equ_used_in_offsets_and_la_targets() {
    let p = assemble(
        ".equ OFF, 24
         .data
         buf: .space 64
         .text
         main: la a0, buf
               ld a1, OFF(a0)
               halt",
    )
    .unwrap();
    assert_eq!(p.text()[2], Instr::Ld(Reg::A1, Reg::A0, 24));
}

#[test]
fn errors_report_correct_lines() {
    let errs = assemble("main: nop\n nop\n bogus\n halt").unwrap_err();
    assert_eq!(errs[0].line, 3);
}

#[test]
fn shift_amount_bounds() {
    assert!(assemble("main: slli a0, a0, 63\n halt").is_ok());
    assert!(assemble("main: slli a0, a0, 64\n halt").is_err());
}

#[test]
fn encode_decode_loader_round_trips_workload_text() {
    // The binary loader path must reproduce an assembled program exactly.
    let p = assemble(
        "main: addi s0, zero, 9
         loop: mul  s1, s1, s0
               sb   s1, -1(sp)
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    let reloaded = Program::from_encoded(&p.encode_text()).unwrap();
    assert_eq!(reloaded.text(), p.text());
}

#[test]
fn jal_with_explicit_register() {
    let p = assemble("main: jal t0, target\ntarget: halt").unwrap();
    assert_eq!(p.text()[0], Instr::Jal(Reg::T0, 0));
}

#[test]
fn uimm_logical_range() {
    // Logical immediates accept the full unsigned 16-bit range.
    assert!(assemble("main: ori a0, zero, 0xFFFF\n halt").is_ok());
    assert!(assemble("main: ori a0, zero, 0x10000\n halt").is_err());
    // Arithmetic immediates are signed.
    assert!(assemble("main: addi a0, zero, 0x8000\n halt").is_err());
    assert!(assemble("main: addi a0, zero, -0x8000\n halt").is_ok());
}
