//! Property-based tests for the ISA: encode/decode round-trips over
//! arbitrary instructions and assembler/disassembler agreement.

use mssp_isa::{decode, encode, Instr, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_shamt() -> impl Strategy<Value = u8> {
    0u8..64
}

prop_compose! {
    fn rrr(ctor: fn(Reg, Reg, Reg) -> Instr)
        (a in arb_reg(), b in arb_reg(), c in arb_reg()) -> Instr {
        ctor(a, b, c)
    }
}

prop_compose! {
    fn rri(ctor: fn(Reg, Reg, i16) -> Instr)
        (a in arb_reg(), b in arb_reg(), i in any::<i16>()) -> Instr {
        ctor(a, b, i)
    }
}

prop_compose! {
    fn shift(ctor: fn(Reg, Reg, u8) -> Instr)
        (a in arb_reg(), b in arb_reg(), s in arb_shamt()) -> Instr {
        ctor(a, b, s)
    }
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        rrr(Instr::Add), rrr(Instr::Sub), rrr(Instr::And), rrr(Instr::Or),
        rrr(Instr::Xor), rrr(Instr::Sll), rrr(Instr::Srl), rrr(Instr::Sra),
        rrr(Instr::Slt), rrr(Instr::Sltu), rrr(Instr::Mul), rrr(Instr::Div),
        rrr(Instr::Divu), rrr(Instr::Rem), rrr(Instr::Remu),
        rri(Instr::Addi), rri(Instr::Andi), rri(Instr::Ori), rri(Instr::Xori),
        rri(Instr::Slti), rri(Instr::Sltiu),
        shift(Instr::Slli), shift(Instr::Srli), shift(Instr::Srai),
        (arb_reg(), any::<i16>()).prop_map(|(r, i)| Instr::Lui(r, i)),
        rri(Instr::Lb), rri(Instr::Lbu), rri(Instr::Lh), rri(Instr::Lhu),
        rri(Instr::Lw), rri(Instr::Lwu), rri(Instr::Ld),
        rri(Instr::Sb), rri(Instr::Sh), rri(Instr::Sw), rri(Instr::Sd),
        rri(Instr::Beq), rri(Instr::Bne), rri(Instr::Blt), rri(Instr::Bge),
        rri(Instr::Bltu), rri(Instr::Bgeu),
        (arb_reg(), any::<i16>()).prop_map(|(r, i)| Instr::Jal(r, i)),
        rri(Instr::Jalr),
        Just(Instr::Halt),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(instr in arb_instr()) {
        let word = encode(instr);
        prop_assert_eq!(decode(word), Ok(instr));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Canonical form: decoding an encodable word and re-encoding
            // gives back the same bits.
            prop_assert_eq!(encode(instr), word);
        }
    }

    #[test]
    fn li_sequence_is_bounded(v in any::<i64>()) {
        let seq = mssp_isa::asm::li_sequence(Reg::A0, v);
        prop_assert!(!seq.is_empty());
        prop_assert!(seq.len() <= 8);
        // The sequence only ever writes the destination register.
        for i in &seq {
            prop_assert_eq!(i.def_reg(), Some(Reg::A0));
        }
    }
}
