//! Property-based tests for the ISA: encode/decode round-trips over
//! arbitrary instructions and assembler/disassembler agreement.
//!
//! Seeded with `mssp-testkit` (the build environment has no crate
//! registry, so `proptest` is unavailable); a failing case prints its
//! seed for replay.

use mssp_isa::{decode, encode, Instr, Reg};
use mssp_testkit::{check, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0, 32) as u8)
}

fn arb_instr(rng: &mut Rng) -> Instr {
    type Rrr = fn(Reg, Reg, Reg) -> Instr;
    type Rri = fn(Reg, Reg, i16) -> Instr;
    type Sh = fn(Reg, Reg, u8) -> Instr;
    const RRR: &[Rrr] = &[
        Instr::Add,
        Instr::Sub,
        Instr::And,
        Instr::Or,
        Instr::Xor,
        Instr::Sll,
        Instr::Srl,
        Instr::Sra,
        Instr::Slt,
        Instr::Sltu,
        Instr::Mul,
        Instr::Div,
        Instr::Divu,
        Instr::Rem,
        Instr::Remu,
    ];
    const RRI: &[Rri] = &[
        Instr::Addi,
        Instr::Andi,
        Instr::Ori,
        Instr::Xori,
        Instr::Slti,
        Instr::Sltiu,
        Instr::Lb,
        Instr::Lbu,
        Instr::Lh,
        Instr::Lhu,
        Instr::Lw,
        Instr::Lwu,
        Instr::Ld,
        Instr::Sb,
        Instr::Sh,
        Instr::Sw,
        Instr::Sd,
        Instr::Beq,
        Instr::Bne,
        Instr::Blt,
        Instr::Bge,
        Instr::Bltu,
        Instr::Bgeu,
        Instr::Jalr,
    ];
    const SHIFT: &[Sh] = &[Instr::Slli, Instr::Srli, Instr::Srai];
    match rng.gen_range(0, 6) {
        0 | 1 => {
            let ctor = *rng.choose(RRR);
            ctor(arb_reg(rng), arb_reg(rng), arb_reg(rng))
        }
        2 | 3 => {
            let ctor = *rng.choose(RRI);
            ctor(arb_reg(rng), arb_reg(rng), rng.next_u64() as i16)
        }
        4 => {
            let ctor = *rng.choose(SHIFT);
            ctor(arb_reg(rng), arb_reg(rng), rng.gen_range(0, 64) as u8)
        }
        _ => match rng.gen_range(0, 3) {
            0 => Instr::Lui(arb_reg(rng), rng.next_u64() as i16),
            1 => Instr::Jal(arb_reg(rng), rng.next_u64() as i16),
            _ => Instr::Halt,
        },
    }
}

#[test]
fn encode_decode_round_trips() {
    check(0x1541_0001, 2048, |rng| {
        let instr = arb_instr(rng);
        let word = encode(instr);
        assert_eq!(decode(word), Ok(instr));
    });
}

#[test]
fn decode_never_panics() {
    check(0x1541_0002, 4096, |rng| {
        let _ = decode(rng.next_u64() as u32);
    });
}

#[test]
fn decoded_reencodes_identically() {
    check(0x1541_0003, 4096, |rng| {
        let word = rng.next_u64() as u32;
        if let Ok(instr) = decode(word) {
            // Canonical form: decoding an encodable word and re-encoding
            // gives back the same bits.
            assert_eq!(encode(instr), word);
        }
    });
}

#[test]
fn li_sequence_is_bounded() {
    check(0x1541_0004, 1024, |rng| {
        let v = rng.next_u64() as i64;
        let seq = mssp_isa::asm::li_sequence(Reg::A0, v);
        assert!(!seq.is_empty());
        assert!(seq.len() <= 8);
        // The sequence only ever writes the destination register.
        for i in &seq {
            assert_eq!(i.def_reg(), Some(Reg::A0));
        }
    });
}
