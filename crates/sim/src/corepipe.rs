//! A per-core latency pipeline model.
//!
//! Each core of the simulated CMP — master, slaves, and the baseline
//! uniprocessor — is an in-order core with private L1 instruction and data
//! caches and a gshare branch predictor, backed by a shared L2 (owned by
//! the system model, accessed through a callback). The per-instruction
//! cost is:
//!
//! ```text
//! cost = op_latency
//!      + fetch penalty (L1I miss → L2/memory)
//!      + data penalty  (L1D miss → L2/memory, loads and stores)
//!      + branch misprediction penalty
//! ```
//!
//! It deliberately omits superscalar overlap: both the MSSP configuration
//! and the baseline use the same core model, so the paper's *relative*
//! results (speedups, crossovers) are preserved while the model stays
//! small enough to verify.

use mssp_isa::Instr;
use mssp_machine::StepInfo;

use crate::{BranchStats, Btb, Cache, CacheConfig, CacheStats, Gshare, GshareConfig};

/// Instruction and penalty latencies, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Simple ALU / branch / store issue latency.
    pub alu: u64,
    /// Multiply latency.
    pub mul: u64,
    /// Divide/remainder latency.
    pub div: u64,
    /// Load-use latency on an L1 hit.
    pub load_l1: u64,
    /// Additional penalty for an L1 miss that hits in L2.
    pub l2_hit: u64,
    /// Additional penalty for an L2 miss (memory access).
    pub mem: u64,
    /// Pipeline refill penalty for a mispredicted branch.
    pub mispredict: u64,
}

impl Default for LatencyConfig {
    fn default() -> LatencyConfig {
        LatencyConfig {
            alu: 1,
            mul: 3,
            div: 16,
            load_l1: 2,
            l2_hit: 10,
            mem: 80,
            mispredict: 8,
        }
    }
}

/// Per-core cache/predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Branch predictor.
    pub bp: GshareConfig,
    /// Latencies.
    pub lat: LatencyConfig,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            bp: GshareConfig::default(),
            lat: LatencyConfig::default(),
        }
    }
}

/// Aggregated core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions costed.
    pub instructions: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// L1I stats.
    pub l1i: CacheStats,
    /// L1D stats.
    pub l1d: CacheStats,
    /// Branch predictor stats.
    pub branches: BranchStats,
}

impl CoreStats {
    /// Cycles per instruction (0 if nothing executed).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// One in-order core with private L1s and a branch predictor.
///
/// The shared L2 is external: [`CorePipe::instr_cost`] takes a callback
/// invoked on each L1 miss; it must return `true` if the line hit in L2.
///
/// # Examples
///
/// ```
/// use mssp_sim::{CoreConfig, CorePipe};
/// use mssp_isa::Instr;
/// use mssp_machine::StepInfo;
///
/// let mut core = CorePipe::new(CoreConfig::default());
/// let info = StepInfo {
///     pc: 0x1000,
///     instr: Instr::nop(),
///     next_pc: 0x1004,
///     halted: false,
///     taken: None,
///     mem: None,
/// };
/// let first = core.instr_cost(&info, &mut |_addr| true);
/// let second = core.instr_cost(&info, &mut |_addr| true);
/// assert!(first > second); // cold I-cache miss the first time
/// ```
#[derive(Debug, Clone)]
pub struct CorePipe {
    config: CoreConfig,
    l1i: Cache,
    l1d: Cache,
    bp: Gshare,
    btb: Btb,
    stats: CoreStats,
}

impl CorePipe {
    /// Creates a cold core.
    #[must_use]
    pub fn new(config: CoreConfig) -> CorePipe {
        CorePipe {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            bp: Gshare::new(config.bp),
            btb: Btb::new(512),
            stats: CoreStats::default(),
        }
    }

    /// The cost in cycles of executing `info` on this core. `l2` is
    /// invoked for every L1 miss (instruction or data) with the missing
    /// address and must return whether it hit in the shared L2.
    pub fn instr_cost(&mut self, info: &StepInfo, l2: &mut dyn FnMut(u64) -> bool) -> u64 {
        let lat = &self.config.lat;
        let mut cost = match info.instr {
            Instr::Mul(..) => lat.mul,
            Instr::Div(..) | Instr::Divu(..) | Instr::Rem(..) | Instr::Remu(..) => lat.div,
            i if i.is_load() => lat.load_l1,
            _ => lat.alu,
        };
        // Instruction fetch.
        if !self.l1i.access(info.pc) {
            cost += if l2(info.pc) {
                lat.l2_hit
            } else {
                lat.l2_hit + lat.mem
            };
        }
        // Data access.
        if let Some(mem) = info.mem {
            if !self.l1d.access(mem.addr) {
                cost += if l2(mem.addr) {
                    lat.l2_hit
                } else {
                    lat.l2_hit + lat.mem
                };
            }
        }
        // Branch direction prediction.
        if let Some(taken) = info.taken {
            if !self.bp.predict_and_update(info.pc, taken) {
                cost += lat.mispredict;
            }
        }
        // Indirect-jump target prediction (BTB).
        if info.instr.is_indirect_jump() && !self.btb.predict_and_update(info.pc, info.next_pc) {
            cost += lat.mispredict;
        }
        self.stats.instructions += 1;
        self.stats.cycles += cost;
        cost
    }

    /// Squash: discard speculative L1 state (predictor history survives —
    /// it is not architectural).
    pub fn squash(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
    }

    /// Indirect-target prediction counts `(correct, incorrect)`.
    #[must_use]
    pub fn btb_stats(&self) -> (u64, u64) {
        self.btb.stats()
    }

    /// Aggregated counters (cache/branch stats are snapshots of the
    /// underlying structures).
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            branches: self.bp.stats(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::Reg;

    fn info(pc: u64, instr: Instr) -> StepInfo {
        StepInfo {
            pc,
            instr,
            next_pc: pc + 4,
            halted: false,
            taken: None,
            mem: None,
        }
    }

    #[test]
    fn warm_alu_costs_base_latency() {
        let mut core = CorePipe::new(CoreConfig::default());
        let i = info(0x1000, Instr::nop());
        let _ = core.instr_cost(&i, &mut |_| true);
        assert_eq!(core.instr_cost(&i, &mut |_| true), 1);
    }

    #[test]
    fn div_costs_more_than_alu() {
        let mut core = CorePipe::new(CoreConfig::default());
        let warm = info(0x1000, Instr::nop());
        let _ = core.instr_cost(&warm, &mut |_| true);
        let div = info(0x1000, Instr::Div(Reg::A0, Reg::A1, Reg::A2));
        let alu = core.instr_cost(&warm, &mut |_| true);
        let d = core.instr_cost(&div, &mut |_| true);
        assert!(d > alu);
    }

    #[test]
    fn load_miss_hierarchy_costs_stack() {
        let cfg = CoreConfig::default();
        let mut core = CorePipe::new(cfg);
        let warm = info(0x1000, Instr::nop());
        let _ = core.instr_cost(&warm, &mut |_| true);
        let mut load = info(0x1000, Instr::Ld(Reg::A0, Reg::A1, 0));
        load.mem = Some(mssp_machine::MemAccess {
            addr: 0x5_0000,
            bytes: 8,
            is_store: false,
        });
        // L1 miss + L2 hit.
        let c1 = core.instr_cost(&load, &mut |_| true);
        assert_eq!(c1, cfg.lat.load_l1 + cfg.lat.l2_hit);
        // Now warm in L1.
        let c2 = core.instr_cost(&load, &mut |_| true);
        assert_eq!(c2, cfg.lat.load_l1);
        // A different, L2-missing address pays the full memory latency.
        load.mem = Some(mssp_machine::MemAccess {
            addr: 0x9_0000,
            bytes: 8,
            is_store: false,
        });
        let c3 = core.instr_cost(&load, &mut |_| false);
        assert_eq!(c3, cfg.lat.load_l1 + cfg.lat.l2_hit + cfg.lat.mem);
    }

    #[test]
    fn mispredicted_branch_pays_penalty() {
        let cfg = CoreConfig::default();
        let mut core = CorePipe::new(cfg);
        let warm = info(0x1000, Instr::nop());
        let _ = core.instr_cost(&warm, &mut |_| true);
        let mut br = info(0x1000, Instr::Beq(Reg::A0, Reg::A1, 8));
        br.taken = Some(true);
        // Cold counters predict not-taken: first taken branch mispredicts.
        let c = core.instr_cost(&br, &mut |_| true);
        assert_eq!(c, cfg.lat.alu + cfg.lat.mispredict);
        // Trained once the global history saturates.
        for _ in 0..32 {
            let _ = core.instr_cost(&br, &mut |_| true);
        }
        let c = core.instr_cost(&br, &mut |_| true);
        assert_eq!(c, cfg.lat.alu);
    }

    #[test]
    fn squash_invalidates_l1_but_not_training() {
        let cfg = CoreConfig::default();
        let mut core = CorePipe::new(cfg);
        let i = info(0x1000, Instr::nop());
        let _ = core.instr_cost(&i, &mut |_| true);
        assert_eq!(core.instr_cost(&i, &mut |_| true), 1);
        core.squash();
        // Fetch misses again after the squash.
        let c = core.instr_cost(&i, &mut |_| true);
        assert_eq!(c, cfg.lat.alu + cfg.lat.l2_hit);
    }

    #[test]
    fn cpi_reported() {
        let mut core = CorePipe::new(CoreConfig::default());
        let i = info(0x1000, Instr::nop());
        for _ in 0..100 {
            let _ = core.instr_cost(&i, &mut |_| true);
        }
        let s = core.stats();
        assert_eq!(s.instructions, 100);
        assert!(s.cpi() >= 1.0);
    }
}
