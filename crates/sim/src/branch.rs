//! Branch direction prediction (gshare).
//!
//! The timing model charges a pipeline-flush penalty for each mispredicted
//! conditional branch. Distilled programs mispredict *less* (the distiller
//! removed hard-to-predict cold excursions and asserted biased branches),
//! which is one of the secondary reasons the master runs fast — the paper
//! makes the same observation about distilled code quality.

/// Gshare predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GshareConfig {
    /// log2 of the pattern-history table size.
    pub table_bits: u32,
    /// Global history length in bits (≤ `table_bits`).
    pub history_bits: u32,
}

impl Default for GshareConfig {
    fn default() -> GshareConfig {
        GshareConfig {
            table_bits: 12,
            history_bits: 12,
        }
    }
}

/// Prediction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Correct direction predictions.
    pub correct: u64,
    /// Mispredictions.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Misprediction ratio in `[0, 1]` (zero if no branches).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        let total = self.correct + self.mispredicted;
        if total == 0 {
            0.0
        } else {
            self.mispredicted as f64 / total as f64
        }
    }
}

/// A gshare branch direction predictor: global history XOR PC indexes a
/// table of 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use mssp_sim::{Gshare, GshareConfig};
///
/// let mut bp = Gshare::new(GshareConfig::default());
/// // A persistently-taken branch trains once history saturates.
/// for _ in 0..32 {
///     let _ = bp.predict_and_update(0x400, true);
/// }
/// assert!(bp.predict_and_update(0x400, true));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    config: GshareConfig,
    table: Vec<u8>,
    history: u64,
    stats: BranchStats,
}

impl Gshare {
    /// Creates a predictor with all counters weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits > table_bits` or `table_bits > 24`.
    #[must_use]
    pub fn new(config: GshareConfig) -> Gshare {
        assert!(config.history_bits <= config.table_bits);
        assert!(config.table_bits <= 24, "table too large");
        Gshare {
            config,
            table: vec![1; 1 << config.table_bits],
            history: 0,
            stats: BranchStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.config.table_bits) - 1;
        let hist = self.history & ((1u64 << self.config.history_bits) - 1);
        (((pc >> 2) ^ hist) & mask) as usize
    }

    /// Predicts the branch at `pc`, then updates with the actual `taken`
    /// outcome. Returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        let correct = predicted == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.mispredicted += 1;
        }
        // 2-bit saturating counter update.
        if taken {
            self.table[idx] = (self.table[idx] + 1).min(3);
        } else {
            self.table[idx] = self.table[idx].saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
        correct
    }

    /// Clears history and counters back to the initial state (used on
    /// squash when modelling cold restart effects).
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
    }

    /// Prediction counters.
    #[must_use]
    pub fn stats(&self) -> BranchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_direction() {
        let mut bp = Gshare::new(GshareConfig::default());
        // Train until the global history register saturates (all-taken)
        // and the counters along the way are warm.
        for _ in 0..32 {
            bp.predict_and_update(0x100, true);
        }
        for _ in 0..100 {
            assert!(bp.predict_and_update(0x100, true));
        }
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut bp = Gshare::new(GshareConfig::default());
        let mut taken = false;
        // Train on a strict alternation; gshare's history disambiguates.
        for _ in 0..64 {
            bp.predict_and_update(0x200, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_update(0x200, taken) {
                correct += 1;
            }
            taken = !taken;
        }
        assert!(correct > 95, "only {correct}/100 correct");
    }

    #[test]
    fn random_like_pattern_mispredicts_substantially() {
        let mut bp = Gshare::new(GshareConfig::default());
        // A pseudo-random direction stream (LCG parity) defeats history.
        let mut x: u64 = 12345;
        let mut miss = 0u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if !bp.predict_and_update(0x300, taken) {
                miss += 1;
            }
        }
        assert!(miss > 2_000, "implausibly good: {miss} misses");
    }

    #[test]
    fn reset_returns_to_cold_state() {
        let mut bp = Gshare::new(GshareConfig::default());
        for _ in 0..10 {
            bp.predict_and_update(0x100, true);
        }
        bp.reset();
        // Cold counters are weakly-not-taken: a taken branch mispredicts.
        assert!(!bp.predict_and_update(0x100, true));
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = Gshare::new(GshareConfig::default());
        for _ in 0..10 {
            bp.predict_and_update(0x100, true);
        }
        let s = bp.stats();
        assert_eq!(s.correct + s.mispredicted, 10);
        assert!(s.mispredict_rate() > 0.0);
    }
}

/// A direct-mapped branch target buffer: predicts the *target address* of
/// indirect jumps (`jalr`). A miss or wrong-target prediction costs the
/// pipeline a refill, exactly like a direction misprediction.
///
/// # Examples
///
/// ```
/// use mssp_sim::Btb;
///
/// let mut btb = Btb::new(256);
/// assert!(!btb.predict_and_update(0x4000, 0x100)); // cold miss
/// assert!(btb.predict_and_update(0x4000, 0x100));  // learned
/// assert!(!btb.predict_and_update(0x4000, 0x200)); // target changed
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Btb {
        assert!(entries > 0);
        Btb {
            entries: vec![None; entries.next_power_of_two()],
            hits: 0,
            misses: 0,
        }
    }

    /// Predicts the target of the indirect jump at `pc`, then updates with
    /// the `actual` target. Returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, actual: u64) -> bool {
        let idx = ((pc >> 2) as usize) & (self.entries.len() - 1);
        let correct =
            matches!(self.entries[idx], Some((tag, target)) if tag == pc && target == actual);
        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.entries[idx] = Some((pc, actual));
        correct
    }

    /// `(correct, incorrect)` prediction counts.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears all entries (cold restart).
    pub fn reset(&mut self) {
        self.entries.fill(None);
    }
}

#[cfg(test)]
mod btb_tests {
    use super::Btb;

    #[test]
    fn learns_stable_targets() {
        let mut btb = Btb::new(64);
        assert!(!btb.predict_and_update(0x100, 0x4000));
        for _ in 0..10 {
            assert!(btb.predict_and_update(0x100, 0x4000));
        }
        let (hits, misses) = btb.stats();
        assert_eq!(hits, 10);
        assert_eq!(misses, 1);
    }

    #[test]
    fn polymorphic_targets_keep_missing() {
        let mut btb = Btb::new(64);
        let mut miss = 0;
        for i in 0..100u64 {
            if !btb.predict_and_update(0x200, 0x1000 + (i % 3) * 0x100) {
                miss += 1;
            }
        }
        assert!(miss > 60);
    }

    #[test]
    fn aliasing_pcs_evict_each_other() {
        let mut btb = Btb::new(1); // everything aliases
        assert!(!btb.predict_and_update(0x100, 0xA));
        assert!(!btb.predict_and_update(0x200, 0xB));
        assert!(!btb.predict_and_update(0x100, 0xA));
    }

    #[test]
    fn reset_clears_entries() {
        let mut btb = Btb::new(16);
        btb.predict_and_update(0x100, 0xA);
        btb.reset();
        assert!(!btb.predict_and_update(0x100, 0xA));
    }
}
