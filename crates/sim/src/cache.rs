//! Set-associative caches with LRU replacement.
//!
//! The timing model gives each core a private L1 (instruction and data)
//! backed by a shared L2 — the paper's CMP memory system, where the L2
//! holds architected state and L1s hold speculative per-core data (which
//! is why a squash invalidates the squashed core's L1).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 16 KiB, 2-way, 64 B-line L1 (the reference configuration).
    #[must_use]
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 << 10,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// A 1 MiB, 8-way, 64 B-line shared L2.
    #[must_use]
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 8,
            line_bytes: 64,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (zero if never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, allocate-on-miss cache model.
///
/// Only hit/miss behaviour is modelled (no data storage — the machine
/// state lives elsewhere); this is a latency model, exactly what the
/// timing simulation needs.
///
/// # Examples
///
/// ```
/// use mssp_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1_default());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1008));  // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry is
    /// degenerate.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0 && config.size_bytes >= config.line_bytes * config.ways);
        Cache {
            config,
            sets: vec![vec![Line::default(); config.ways]; config.num_sets()],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit. A miss
    /// allocates the line (evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        false
    }

    /// Invalidates every line (used when a core's speculative state is
    /// squashed).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
            }
        }
    }

    /// Access counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        for off in 1..64 {
            assert!(c.access(0x100 + off));
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 63);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: line indices 0, 2, 4 (2 sets).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(c.access(0)); // touch 0: now 2 is LRU
        assert!(!c.access(4 * 64)); // evicts 2
        assert!(c.access(0)); // 0 still resident
        assert!(!c.access(2 * 64)); // 2 was evicted
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        assert!(!c.access(0)); // set 0
        assert!(!c.access(64)); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn invalidate_all_forces_misses() {
        let mut c = tiny();
        c.access(0x40);
        assert!(c.access(0x40));
        c.invalidate_all();
        assert!(!c.access(0x40));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(64 * 1024);
        let s = c.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_configs_are_sane() {
        let l1 = Cache::new(CacheConfig::l1_default());
        let l2 = Cache::new(CacheConfig::l2_default());
        assert!(l1.config().size_bytes < l2.config().size_bytes);
    }
}
