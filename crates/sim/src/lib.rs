//! # mssp-sim
//!
//! Microarchitecture substrates for the MSSP timing model: set-associative
//! [`Cache`]s, a gshare branch predictor ([`Gshare`]) and an in-order core
//! latency pipeline ([`CorePipe`]).
//!
//! These are latency models — they track hit/miss and predict/mispredict
//! behaviour, not data — and are composed by `mssp-timing` into a full CMP
//! cost model (one [`CorePipe`] per master/slave core, a shared L2) and a
//! baseline uniprocessor.
//!
//! ## Quick start
//!
//! ```
//! use mssp_sim::{Cache, CacheConfig};
//!
//! let mut l2 = Cache::new(CacheConfig::l2_default());
//! assert!(!l2.access(0x4000));
//! assert!(l2.access(0x4000));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod branch;
mod cache;
mod corepipe;

pub use branch::{BranchStats, Btb, Gshare, GshareConfig};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use corepipe::{CoreConfig, CorePipe, CoreStats, LatencyConfig};
