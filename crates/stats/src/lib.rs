//! # mssp-stats
//!
//! Statistics and report rendering for the MSSP experiment harness:
//! summaries (mean / geometric mean / stddev), histograms, ASCII tables
//! and bar-chart "figures" so every table and figure of the evaluation
//! prints in a uniform layout.
//!
//! ## Quick start
//!
//! ```
//! use mssp_stats::{geomean, Table};
//!
//! let mut t = Table::new(vec!["bench", "speedup"]);
//! t.row(vec!["gap_like".into(), format!("{:.2}", 1.68)]);
//! println!("{}", t.render());
//! assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod report;
mod summary;

pub use report::{bar_chart, fmt3, fmt_count, Align, Table};
pub use summary::{geomean, percentile, Histogram, Summary};
