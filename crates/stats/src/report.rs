//! ASCII report rendering: tables and bar "figures" for the experiment
//! harness, so every table and figure of the evaluation prints in the
//! same layout the paper uses.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple ASCII table builder.
///
/// # Examples
///
/// ```
/// use mssp_stats::Table;
/// let mut t = Table::new(vec!["bench", "speedup"]);
/// t.row(vec!["gzip_like".into(), "1.31".into()]);
/// let s = t.render();
/// assert!(s.contains("gzip_like"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table. The first column is left-aligned, the rest
    /// right-aligned (the conventional benchmark-table layout).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let align = if i == 0 { Align::Left } else { Align::Right };
                match align {
                    Align::Left => {
                        let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                    }
                }
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Renders a labelled horizontal bar chart — the harness's "figure"
/// output format.
///
/// # Examples
///
/// ```
/// use mssp_stats::bar_chart;
/// let s = bar_chart(&[("a".into(), 1.0), ("b".into(), 2.0)], 20, "x");
/// assert!(s.contains('█') || s.contains('#'));
/// ```
#[must_use]
pub fn bar_chart(series: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = series.iter().map(|(_, v)| *v).fold(f64::EPSILON, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in series {
        let n = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$}  {bar:<width$}  {value:.3} {unit}",
            bar = "█".repeat(n.min(width)),
        );
    }
    out
}

/// Formats a float compactly for table cells (3 significant decimals).
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a large count with thousands separators.
///
/// # Examples
///
/// ```
/// use mssp_stats::fmt_count;
/// assert_eq!(fmt_count(1234567), "1,234,567");
/// assert_eq!(fmt_count(42), "42");
/// ```
#[must_use]
pub fn fmt_count(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() <= w + 1));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("small".into(), 1.0), ("big".into(), 4.0)], 40, "x");
        let lines: Vec<&str> = s.lines().collect();
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars[1], 40);
        assert_eq!(bars[0], 10);
    }

    #[test]
    fn fmt_count_groups() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1_000_000), "1,000,000");
    }
}
