//! Summary statistics.

/// Summary of a sample of f64 values.
///
/// # Examples
///
/// ```
/// use mssp_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 4.0]);
/// assert!((s.mean - 7.0 / 3.0).abs() < 1e-12);
/// assert!((s.geomean - 2.0).abs() < 1e-12);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (0 if any value is non-positive).
    pub geomean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let geomean = if values.iter().all(|&v| v > 0.0) {
            (values.iter().map(|v| v.ln()).sum::<f64>() / n as f64).exp()
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            geomean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Geometric mean convenience helper (0 if empty or any non-positive).
///
/// # Examples
///
/// ```
/// use mssp_stats::geomean;
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        0.0
    } else {
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow counts.
///
/// # Examples
///
/// ```
/// use mssp_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 2.5, 7.0, 11.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples (including out-of-range).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples below range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts with their `[lo, hi)` bounds.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + width * i as f64;
            (lo, lo + width, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn geomean_of_nonpositive_is_zero() {
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(Summary::of(&[1.0, -2.0]).geomean, 0.0);
    }

    #[test]
    fn stddev_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn histogram_bins_partition_range() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        for (_, _, c) in h.iter_bins() {
            assert_eq!(c, 10);
        }
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_boundary_values() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(0.0); // first bin
        h.add(5.0); // second bin
        h.add(10.0); // overflow (half-open)
        h.add(-0.1); // underflow
        let bins: Vec<u64> = h.iter_bins().map(|(_, _, c)| c).collect();
        assert_eq!(bins, vec![1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
    }
}

/// The `q`-th percentile (0–100, nearest-rank method) of a sample.
///
/// # Panics
///
/// Panics if `values` is empty or `q > 100`.
///
/// # Examples
///
/// ```
/// use mssp_stats::percentile;
/// let v = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&v, 50), 3.0);
/// assert_eq!(percentile(&v, 100), 5.0);
/// ```
#[must_use]
pub fn percentile(values: &[f64], q: u8) -> f64 {
    assert!(!values.is_empty(), "empty sample");
    assert!(q <= 100, "percentile out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if q == 0 {
        return sorted[0];
    }
    let rank = ((q as f64 / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

#[cfg(test)]
mod percentile_tests {
    use super::percentile;

    #[test]
    fn nearest_rank_behaviour() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 25), 10.0);
        assert_eq!(percentile(&v, 26), 20.0);
        assert_eq!(percentile(&v, 75), 30.0);
        assert_eq!(percentile(&v, 0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = percentile(&[], 50);
    }
}
