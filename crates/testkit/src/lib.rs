//! # mssp-testkit
//!
//! Zero-dependency deterministic randomness and a tiny case-runner for
//! the workspace's property tests. The container this repository builds
//! in has no network access and no vendored crate registry, so the test
//! suites cannot depend on `proptest`/`rand`; this crate provides the
//! small slice of that functionality the suites actually use, with
//! fully reproducible seeding (a failing case prints its seed, and
//! re-running with that seed reproduces it exactly).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// SplitMix64 passes BigCrush, needs only one `u64` of state, and is
/// trivially seedable — exactly what seeded property tests want. It is
/// **not** cryptographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling over the widest multiple of `span` to avoid
        // modulo bias; one iteration almost always suffices.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a value uniformly distributed in `lo..hi` as `usize`.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        usize::try_from(self.gen_range(lo as u64, hi as u64)).expect("range fits usize")
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn gen_bool(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "gen_bool: zero denominator");
        self.gen_range(0, den) < num
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.gen_index(0, items.len())]
    }

    /// Derives an independent generator (for splitting one seed across
    /// sub-tasks without correlating their streams).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

/// Runs `body` for `cases` seeded cases derived from `base_seed`.
///
/// Each case gets its own [`Rng`] whose seed is printed on panic, so a
/// failure message like `seed 0xDEAD...` can be replayed with
/// `check_one(0xDEAD..., body)`.
pub fn check<F: FnMut(&mut Rng)>(base_seed: u64, cases: u32, mut body: F) {
    let mut root = Rng::new(base_seed);
    for case in 0..cases {
        let seed = root.next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("testkit: case {case} failed; replay with seed {seed:#018x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `body` once with the given seed — the replay half of [`check`].
pub fn check_one<F: FnMut(&mut Rng)>(seed: u64, mut body: F) {
    let mut rng = Rng::new(seed);
    body(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_index(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::new(3);
        let mut b = a.fork();
        // Different states ⇒ different next values (overwhelmingly).
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn check_replays_by_seed() {
        let mut first = Vec::new();
        check(1234, 5, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        check(1234, 5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
