//! The distiller's optimizing pass pipeline.
//!
//! Runs between IR construction and layout, transforming the relocatable
//! [`DBlock`] list to a fixpoint under a per-pass iteration budget. Every
//! pass is profile- or dataflow-guided and *approximation-tolerant*: a
//! wrong transform costs the master squashes, never correctness, because
//! slaves execute the original program (the paper's decoupling of
//! performance from correctness). The passes are nevertheless engineered
//! to be sound on the asserted CFG — gratuitous wrongness just burns
//! squash cycles.
//!
//! ## Dataflow over the IR
//!
//! [`ConstPropAnalysis`] and [`CopyPropAnalysis`] were written against the
//! original program's CFG, but the facts the pipeline needs live on the
//! *asserted* graph the IR encodes (asserted-away edges must not pollute
//! joins). A custom forward worklist solver therefore runs the same
//! lattices directly over the block list. Pessimistic boundary facts are
//! injected wherever the master can (re)enter distilled code with
//! arbitrary architected state:
//!
//! * the distilled entry block,
//! * every task boundary (the master is re-seeded there after a squash),
//! * every block whose original address is a materialized constant of the
//!   original program (indirect jumps land there via `to_dist`
//!   translation),
//! * every block with no IR predecessor (retained as a hot root; nothing
//!   flows facts into it).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mssp_analysis::{
    eval_branch, Analysis, ConstPropAnalysis, ConstVal, CopyPropAnalysis, Profile,
};
use mssp_isa::{asm::li_sequence, INSTR_BYTES};

use crate::config::PassConfig;
use crate::ir::{exit_of, BlockExit, BoundaryLive, DBlock, DInstr};

/// One pass's effect on static size, in pipeline order. The `--stats` CLI
/// output and ablation tables are rendered from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassDelta {
    /// Pass name (`const-fold`, `copy-prop`, `dce`, `jump-thread`).
    pub pass: &'static str,
    /// 1-based pipeline iteration this run belongs to.
    pub iteration: usize,
    /// Static IR instructions before the pass ran.
    pub before: usize,
    /// Static IR instructions after the pass ran.
    pub after: usize,
}

/// Aggregate pipeline counters, merged into `DistillStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PipelineCounters {
    pub const_folded: usize,
    pub branches_folded: usize,
    pub pruned_blocks: usize,
    pub copies_propagated: usize,
    pub dce_removed: usize,
    pub jumps_threaded: usize,
    pub iterations: usize,
}

/// The pipeline's result: counters plus the per-pass size trace.
#[derive(Debug, Clone, Default)]
pub(crate) struct PipelineOutcome {
    pub counters: PipelineCounters,
    pub trace: Vec<PassDelta>,
}

/// Runs the enabled passes over `blocks` to a fixpoint (bounded by
/// `config.max_iterations`).
///
/// `entry` is the distilled entry block's original address, `reseed` the
/// extra original addresses where the master can enter with arbitrary
/// state (task boundaries ∪ materialized constants), `hot_roots` the
/// original block starts that must survive unreachable-code pruning, and
/// `block_ends` each original block's end address (for locating its
/// terminator's profiled edges).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline(
    blocks: &mut Vec<DBlock>,
    config: &PassConfig,
    profile: &Profile,
    boundary_live: &BoundaryLive,
    entry: u64,
    reseed: &BTreeSet<u64>,
    hot_roots: &BTreeSet<u64>,
    block_ends: &BTreeMap<u64, u64>,
) -> PipelineOutcome {
    let mut out = PipelineOutcome::default();
    let mut entries: BTreeSet<u64> = reseed.clone();
    entries.insert(entry);
    let mut prune_roots: BTreeSet<u64> = entries.clone();
    prune_roots.extend(hot_roots.iter().copied());

    for iteration in 1..=config.max_iterations {
        let snapshot = blocks.clone();
        if config.const_fold {
            let before = static_len(blocks);
            let (folded, branches) = const_fold(blocks, &entries);
            out.counters.const_folded += folded;
            out.counters.branches_folded += branches;
            out.counters.pruned_blocks += prune_unreachable(blocks, &prune_roots);
            out.trace.push(PassDelta {
                pass: "const-fold",
                iteration,
                before,
                after: static_len(blocks),
            });
        }
        if config.copy_prop {
            let before = static_len(blocks);
            out.counters.copies_propagated += copy_prop(blocks, &entries);
            out.trace.push(PassDelta {
                pass: "copy-prop",
                iteration,
                before,
                after: static_len(blocks),
            });
        }
        if config.dce {
            let before = static_len(blocks);
            out.counters.dce_removed += crate::ir::eliminate_dead_code(blocks, boundary_live);
            out.trace.push(PassDelta {
                pass: "dce",
                iteration,
                before,
                after: static_len(blocks),
            });
        }
        if config.jump_thread {
            let before = static_len(blocks);
            out.counters.jumps_threaded += jump_thread(blocks, entry, profile, block_ends);
            out.trace.push(PassDelta {
                pass: "jump-thread",
                iteration,
                before,
                after: static_len(blocks),
            });
        }
        out.counters.iterations = iteration;
        if *blocks == snapshot {
            break;
        }
    }
    out
}

fn static_len(blocks: &[DBlock]) -> usize {
    blocks.iter().map(|b| b.instrs.len()).sum()
}

fn block_index(blocks: &[DBlock]) -> BTreeMap<u64, usize> {
    blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.orig_start, i))
        .collect()
}

fn transfer_di<A: Analysis>(analysis: &A, di: &DInstr, fact: &mut A::Fact) {
    match di {
        // The synthetic pc is safe: IR construction rewrites every call,
        // so no link-register definition (whose value is pc-dependent)
        // survives into the IR.
        DInstr::Copy(i) | DInstr::Branch(i, _) => analysis.transfer(0, *i, fact),
        DInstr::Jump(_) => {}
    }
}

/// Forward worklist solve of `analysis` over the IR graph; returns each
/// block's entry fact. Blocks named in `entries` (and blocks with no
/// predecessor) are seeded with the pessimistic boundary fact — the
/// master can materialize there with arbitrary architected state.
fn solve_ir<A: Analysis>(blocks: &[DBlock], analysis: &A, entries: &BTreeSet<u64>) -> Vec<A::Fact> {
    let n = blocks.len();
    let index = block_index(blocks);
    let mut entry_facts: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();

    let mut has_pred = vec![false; n];
    for (i, b) in blocks.iter().enumerate() {
        for di in &b.instrs {
            if let DInstr::Branch(_, t) = di {
                if let Some(&j) = index.get(t) {
                    has_pred[j] = true;
                }
            }
        }
        match exit_of(b) {
            BlockExit::Always(t) => {
                if let Some(&j) = index.get(&t) {
                    has_pred[j] = true;
                }
            }
            BlockExit::Open { .. } => {
                if i + 1 < n {
                    has_pred[i + 1] = true;
                }
            }
            BlockExit::Barrier | BlockExit::End => {}
        }
    }
    let boundary = analysis.boundary();
    for (i, b) in blocks.iter().enumerate() {
        if !has_pred[i] || entries.contains(&b.orig_start) {
            analysis.join(&mut entry_facts[i], &boundary);
        }
    }

    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let mut fact = entry_facts[i].clone();
        let join_into = |j: usize,
                         fact: &A::Fact,
                         entry_facts: &mut Vec<A::Fact>,
                         work: &mut VecDeque<usize>,
                         queued: &mut Vec<bool>| {
            if analysis.join(&mut entry_facts[j], fact) && !queued[j] {
                queued[j] = true;
                work.push_back(j);
            }
        };
        for di in &blocks[i].instrs {
            if let DInstr::Branch(_, t) = di {
                if let Some(&j) = index.get(t) {
                    join_into(j, &fact, &mut entry_facts, &mut work, &mut queued);
                }
            }
            transfer_di(analysis, di, &mut fact);
        }
        match exit_of(&blocks[i]) {
            BlockExit::Always(t) => {
                if let Some(&j) = index.get(&t) {
                    join_into(j, &fact, &mut entry_facts, &mut work, &mut queued);
                }
            }
            BlockExit::Open { .. } => {
                if i + 1 < n {
                    join_into(i + 1, &fact, &mut entry_facts, &mut work, &mut queued);
                }
            }
            BlockExit::Barrier | BlockExit::End => {}
        }
    }
    entry_facts
}

/// Constant propagation & folding: ALU results that are constant on every
/// asserted path are rematerialized as single-instruction `li`s (severing
/// their input dependences), and conditional branches whose outcome the
/// facts decide collapse into an unconditional jump or a plain
/// fall-through. Returns `(instructions folded, branches folded)`.
fn const_fold(blocks: &mut [DBlock], entries: &BTreeSet<u64>) -> (usize, usize) {
    let analysis = ConstPropAnalysis;
    let entry_facts = solve_ir(blocks, &analysis, entries);
    let mut folded = 0;
    let mut branches = 0;
    for (i, block) in blocks.iter_mut().enumerate() {
        let mut fact = entry_facts[i].clone();
        let mut out = Vec::with_capacity(block.instrs.len());
        for di in &block.instrs {
            match di {
                DInstr::Copy(instr) => {
                    let pure =
                        instr.def_reg().is_some() && !instr.is_store() && !instr.is_control();
                    transfer_di(&analysis, di, &mut fact);
                    let mut replaced = false;
                    if pure {
                        let rd = instr.def_reg().expect("pure implies a definition");
                        if let ConstVal::Const(v) = fact.get(rd) {
                            let seq = li_sequence(rd, v as i64);
                            if seq.len() == 1 && seq[0] != *instr {
                                out.push(DInstr::Copy(seq[0]));
                                folded += 1;
                                replaced = true;
                            }
                        }
                    }
                    if !replaced {
                        out.push(*di);
                    }
                }
                DInstr::Branch(instr, target) => match eval_branch(*instr, &fact) {
                    Some(true) => {
                        out.push(DInstr::Jump(*target));
                        branches += 1;
                    }
                    Some(false) => branches += 1, // falls through
                    None => out.push(*di),
                },
                DInstr::Jump(_) => out.push(*di),
            }
        }
        block.instrs = out;
    }
    (folded, branches)
}

/// Removes blocks no longer reachable from any root once folded branches
/// cut their incoming edges. Roots are everywhere the master can enter
/// (entry, boundaries, indirect-landing sites) plus every training-hot
/// block — the same retention rule as cold-code elision, so the master is
/// never left without an image for code it demonstrably runs.
fn prune_unreachable(blocks: &mut Vec<DBlock>, roots: &BTreeSet<u64>) -> usize {
    let n = blocks.len();
    let index = block_index(blocks);
    let mut reached = vec![false; n];
    let mut stack: Vec<usize> = roots.iter().filter_map(|r| index.get(r).copied()).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reached[i], true) {
            continue;
        }
        for di in &blocks[i].instrs {
            if let DInstr::Branch(_, t) = di {
                if let Some(&j) = index.get(t) {
                    stack.push(j);
                }
            }
        }
        match exit_of(&blocks[i]) {
            BlockExit::Always(t) => {
                if let Some(&j) = index.get(&t) {
                    stack.push(j);
                }
            }
            BlockExit::Open { .. } => {
                if i + 1 < n {
                    stack.push(i + 1);
                }
            }
            BlockExit::Barrier | BlockExit::End => {}
        }
    }
    let before = blocks.len();
    let mut it = reached.into_iter();
    blocks.retain(|_| it.next().unwrap());
    before - blocks.len()
}

/// Copy propagation: every register use that provably mirrors another
/// register is rewritten to the source, exposing the intervening move to
/// DCE. Returns the number of operand rewrites.
fn copy_prop(blocks: &mut [DBlock], entries: &BTreeSet<u64>) -> usize {
    let analysis = CopyPropAnalysis;
    let entry_facts = solve_ir(blocks, &analysis, entries);
    let mut rewritten = 0;
    for (i, block) in blocks.iter_mut().enumerate() {
        let mut fact = entry_facts[i].clone();
        for di in &mut block.instrs {
            let new = match *di {
                DInstr::Copy(instr) => {
                    DInstr::Copy(instr.map_uses(|r| match fact.get(r).source() {
                        Some(src) if src != r => {
                            rewritten += 1;
                            src
                        }
                        _ => r,
                    }))
                }
                DInstr::Branch(instr, t) => DInstr::Branch(
                    instr.map_uses(|r| match fact.get(r).source() {
                        Some(src) if src != r => {
                            rewritten += 1;
                            src
                        }
                        _ => r,
                    }),
                    t,
                ),
                DInstr::Jump(t) => DInstr::Jump(t),
            };
            *di = new;
            transfer_di(&analysis, di, &mut fact);
        }
    }
    rewritten
}

/// Estimated dynamic cost a layout pays for its control transfers: the
/// profile-weighted number of trailing `Jump` executions plus (layout-
/// invariant, but kept so alternatives compare on the same scale) branch
/// executions. Edge weights come from the original program's profiled
/// edge counts, located via each block's original terminator address
/// (`block_ends[start] - INSTR_BYTES`); edges the IR invented (e.g. by
/// branch folding) that never existed in the original weigh 0, which only
/// makes the model conservative about reordering around them.
fn layout_cost(blocks: &[DBlock], profile: &Profile, block_ends: &BTreeMap<u64, u64>) -> u64 {
    let weight = |b: &DBlock, to: u64| -> u64 {
        let end = block_ends
            .get(&b.orig_start)
            .copied()
            .unwrap_or(b.orig_start + INSTR_BYTES);
        profile.edge_count(end - INSTR_BYTES, to)
    };
    let mut cost = 0u64;
    for (i, b) in blocks.iter().enumerate() {
        let len = b.instrs.len();
        if len >= 2 {
            if let (DInstr::Branch(_, taken), DInstr::Jump(fall)) =
                (b.instrs[len - 2], b.instrs[len - 1])
            {
                // The branch executes on both sides, the jump on the
                // fall side only.
                cost += weight(b, taken) + 2 * weight(b, fall);
                continue;
            }
        }
        match b.instrs.last() {
            Some(DInstr::Branch(_, taken)) => {
                cost += weight(b, *taken);
                if let Some(next) = blocks.get(i + 1) {
                    cost += weight(b, next.orig_start);
                }
            }
            Some(DInstr::Jump(t)) => cost += weight(b, *t),
            _ => {}
        }
    }
    cost
}

/// Profile-guided jump threading / superblock straightening.
///
/// Normalizes every implicit fall-through into an explicit jump (making
/// block order a free variable), lays blocks out along greedy traces that
/// follow each block's hottest successor, then fixes every trailing
/// `Branch`+`Jump` pair against the physical order: the jump is elided
/// when its target follows, the branch is negated (and the jump elided)
/// when *its* target follows, and otherwise the branch points at the
/// hotter side so the two-transfer path is the cold one.
///
/// The candidate layout is adopted only if it strictly improves the
/// profile-weighted transfer cost ([`layout_cost`]), or matches it with
/// strictly fewer static instructions; otherwise the input layout is
/// restored. That keeps the pass monotone (so the pipeline fixpoint
/// terminates) and prevents the greedy trace from pessimizing workloads
/// whose existing layout already follows the hot paths. Returns the
/// number of control transfers removed or redirected (0 when the
/// candidate is rejected, so the pipeline's fixpoint counters stay
/// honest). Purely a layout transform — the set of executed non-control
/// instructions on any path is unchanged.
fn jump_thread(
    blocks: &mut Vec<DBlock>,
    entry: u64,
    profile: &Profile,
    block_ends: &BTreeMap<u64, u64>,
) -> usize {
    let n = blocks.len();
    if n == 0 {
        return 0;
    }
    // A final block that can fall off the end of the image pins the whole
    // layout (there is nothing to fall into); leave such programs alone.
    if matches!(exit_of(&blocks[n - 1]), BlockExit::Open { .. }) {
        return 0;
    }
    let input = blocks.clone();
    let hot = |start: u64| profile.exec_count(start);

    // 1. Normalize: explicit jump for every implicit fall-through.
    for i in 0..n - 1 {
        if matches!(exit_of(&blocks[i]), BlockExit::Open { .. }) {
            let next = blocks[i + 1].orig_start;
            blocks[i].instrs.push(DInstr::Jump(next));
        }
    }

    // 2. Point each branch at its colder successor (the trailing jump then
    // names the hot side, which the trace layout follows). Step 4 re-fixes
    // orientation against the physical order, so this is purely a layout
    // heuristic.
    for block in blocks.iter_mut() {
        let len = block.instrs.len();
        if len < 2 {
            continue;
        }
        if let (DInstr::Branch(bi, taken), DInstr::Jump(fall)) =
            (block.instrs[len - 2], block.instrs[len - 1])
        {
            if hot(taken) > hot(fall) {
                if let Some(neg) = bi.negated() {
                    block.instrs[len - 2] = DInstr::Branch(neg, fall);
                    block.instrs[len - 1] = DInstr::Jump(taken);
                }
            }
        }
    }

    // 3. Greedy trace layout: start at the entry and follow each block's
    // unconditional jump while the target is unplaced; when the jump side
    // is already placed (a back edge), continue through the branch side so
    // the cold continuation stays adjacent. Seed further traces from the
    // hottest unplaced block.
    let index = block_index(blocks);
    let mut placed = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut seed = index.get(&entry).copied();
    loop {
        let start = match seed.take().filter(|&i| !placed[i]) {
            Some(i) => i,
            None => {
                let Some(best) = (0..n)
                    .filter(|&i| !placed[i])
                    .max_by_key(|&i| (hot(blocks[i].orig_start), std::cmp::Reverse(i)))
                else {
                    break;
                };
                best
            }
        };
        let mut cur = start;
        loop {
            placed[cur] = true;
            order.push(cur);
            let unplaced = |t: &u64| index.get(t).copied().filter(|&j| !placed[j]);
            let len = blocks[cur].instrs.len();
            let next = match blocks[cur].instrs.last() {
                Some(DInstr::Jump(t)) => unplaced(t).or_else(|| {
                    if let Some(DInstr::Branch(_, bt)) =
                        (len >= 2).then(|| blocks[cur].instrs[len - 2]).as_ref()
                    {
                        unplaced(bt)
                    } else {
                        None
                    }
                }),
                _ => None,
            };
            match next {
                Some(j) => cur = j,
                None => break,
            }
        }
    }
    let mut reordered: Vec<DBlock> = order.into_iter().map(|i| blocks[i].clone()).collect();

    // 4. Fix control transfers against the physical order.
    let mut changed = 0;
    for i in 0..n {
        let next_start = (i + 1 < n).then(|| reordered[i + 1].orig_start);
        let len = reordered[i].instrs.len();
        if len >= 2 {
            if let (DInstr::Branch(bi, taken), DInstr::Jump(fall)) =
                (reordered[i].instrs[len - 2], reordered[i].instrs[len - 1])
            {
                if Some(fall) == next_start {
                    // Hot side physically follows: drop the jump.
                    reordered[i].instrs.pop();
                    changed += 1;
                } else if Some(taken) == next_start {
                    if let Some(neg) = bi.negated() {
                        // Branch side follows: negate so it falls through.
                        reordered[i].instrs[len - 2] = DInstr::Branch(neg, fall);
                        reordered[i].instrs.pop();
                        changed += 1;
                    }
                } else if hot(fall) > hot(taken) {
                    // Neither side adjacent: the branch-taken path costs
                    // one transfer, the jump path two — point the branch
                    // at the strictly-hotter side.
                    if let Some(neg) = bi.negated() {
                        reordered[i].instrs[len - 2] = DInstr::Branch(neg, fall);
                        reordered[i].instrs[len - 1] = DInstr::Jump(taken);
                        changed += 1;
                    }
                }
                continue;
            }
        }
        if let Some(DInstr::Jump(t)) = reordered[i].instrs.last() {
            if Some(*t) == next_start {
                reordered[i].instrs.pop();
                changed += 1;
            }
        }
    }
    // Adopt only on strict lexicographic (dynamic cost, static size)
    // improvement.
    let (old_cost, new_cost) = (
        layout_cost(&input, profile, block_ends),
        layout_cost(&reordered, profile, block_ends),
    );
    let improves = new_cost < old_cost
        || (new_cost == old_cost && static_len(&reordered) < static_len(&input));
    if !improves {
        *blocks = input;
        return 0;
    }
    *blocks = reordered;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::{Instr, Reg};

    fn block(start: u64, instrs: Vec<DInstr>) -> DBlock {
        DBlock {
            orig_start: start,
            instrs,
        }
    }

    fn no_entries() -> BTreeSet<u64> {
        BTreeSet::new()
    }

    #[test]
    fn const_fold_rematerializes_known_alu_results() {
        // a0 = 6; a1 = a0 + 1 folds to li a1, 7.
        let mut blocks = vec![block(
            0x100,
            vec![
                DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 6)),
                DInstr::Copy(Instr::Addi(Reg::A1, Reg::A0, 1)),
                DInstr::Copy(Instr::Halt),
            ],
        )];
        let (folded, branches) = const_fold(&mut blocks, &no_entries());
        assert_eq!((folded, branches), (1, 0));
        assert_eq!(
            blocks[0].instrs[1],
            DInstr::Copy(Instr::Addi(Reg::A1, Reg::ZERO, 7))
        );
    }

    #[test]
    fn const_fold_collapses_decided_branches_and_prunes() {
        // a0 = 3, `beqz a0` can never be taken: the branch folds away and
        // its target block (cold, not a root) is pruned.
        let mut blocks = vec![
            block(
                0x100,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 3)),
                    DInstr::Branch(Instr::Beq(Reg::A0, Reg::ZERO, 0), 0x200),
                ],
            ),
            block(0x108, vec![DInstr::Copy(Instr::Halt)]),
            block(0x200, vec![DInstr::Copy(Instr::Halt)]),
        ];
        let (_, branches) = const_fold(&mut blocks, &no_entries());
        assert_eq!(branches, 1);
        let roots: BTreeSet<u64> = [0x100].into_iter().collect();
        assert_eq!(prune_unreachable(&mut blocks, &roots), 1);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.orig_start != 0x200));
    }

    #[test]
    fn reseed_entries_suppress_folding() {
        // Same program, but 0x108 is a task boundary: facts there are
        // pessimistic, so a use of a0 downstream of the boundary must not
        // fold even though the only IR path sets a0 = 3.
        let mut blocks = vec![
            block(
                0x100,
                vec![DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 3))],
            ),
            block(
                0x108,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A1, Reg::A0, 1)),
                    DInstr::Copy(Instr::Halt),
                ],
            ),
        ];
        let entries: BTreeSet<u64> = [0x108].into_iter().collect();
        let (folded, _) = const_fold(&mut blocks, &entries);
        assert_eq!(folded, 0);
        assert_eq!(
            blocks[1].instrs[0],
            DInstr::Copy(Instr::Addi(Reg::A1, Reg::A0, 1))
        );
    }

    #[test]
    fn copy_prop_rewrites_uses_across_blocks() {
        // a1 := a0, then a2 = a1 + 1 in the fall-through block becomes
        // a2 = a0 + 1 (there is a unique predecessor, no reseed).
        let mut blocks = vec![
            block(
                0x100,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 9)),
                    DInstr::Copy(Instr::Addi(Reg::A1, Reg::A0, 0)),
                ],
            ),
            block(
                0x108,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A2, Reg::A1, 1)),
                    DInstr::Copy(Instr::Halt),
                ],
            ),
        ];
        assert_eq!(copy_prop(&mut blocks, &no_entries()), 1);
        assert_eq!(
            blocks[1].instrs[0],
            DInstr::Copy(Instr::Addi(Reg::A2, Reg::A0, 1))
        );
    }

    #[test]
    fn jump_thread_straightens_jump_chains() {
        // 0x100 jumps to 0x300 which halts; 0x200 is an unreachable-ish
        // sibling kept in between. Threading moves 0x300 after 0x100 and
        // elides the jump. (An empty profile means hotness 0 everywhere;
        // trace-following still straightens unconditional chains.)
        let profile = Profile::collect(
            &mssp_isa::asm::assemble("main: halt").unwrap(),
            Profile::UNBOUNDED,
        )
        .unwrap();
        let mut blocks = vec![
            block(0x100, vec![DInstr::Jump(0x300)]),
            block(0x200, vec![DInstr::Copy(Instr::Halt)]),
            block(0x300, vec![DInstr::Copy(Instr::Halt)]),
        ];
        let changed = jump_thread(&mut blocks, 0x100, &profile, &BTreeMap::new());
        assert!(changed >= 1);
        assert_eq!(blocks[0].orig_start, 0x100);
        assert_eq!(blocks[1].orig_start, 0x300);
        assert!(blocks[0].instrs.is_empty(), "jump elided: {blocks:?}");
    }

    #[test]
    fn jump_thread_bails_on_open_final_block() {
        let profile = Profile::collect(
            &mssp_isa::asm::assemble("main: halt").unwrap(),
            Profile::UNBOUNDED,
        )
        .unwrap();
        let mut blocks = vec![
            block(0x100, vec![DInstr::Jump(0x200)]),
            block(0x200, vec![DInstr::Copy(Instr::nop())]), // falls off the end
        ];
        let before = blocks.clone();
        assert_eq!(
            jump_thread(&mut blocks, 0x100, &profile, &BTreeMap::new()),
            0
        );
        assert_eq!(blocks, before);
    }
}
