//! Task-boundary selection.
//!
//! MSSP splits the dynamic instruction stream into tasks at a static set of
//! program counters. Good boundaries recur at roughly the target task-size
//! interval: loop headers and function entries are the natural candidates
//! (as in the paper, where the distiller inserted fork points at such
//! sites). Selection is profile-guided — a candidate's expected task size
//! is the training run's instruction count divided by how often the
//! candidate was crossed.

use std::collections::BTreeSet;

use mssp_analysis::{natural_loops, Cfg, Dominators, Profile};
use mssp_isa::Program;

/// Selects task-boundary PCs (original-program block starts).
///
/// The returned set is never empty for a non-empty program: if profiling
/// found no suitable recurring site, the entry point alone is returned
/// (degrading MSSP to sequential operation rather than failing).
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::{Cfg, Dominators, Profile};
/// use mssp_distill::select_boundaries;
///
/// let p = assemble(
///     "main: addi a0, zero, 1000
///      loop: addi a1, a1, 1
///            addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let cfg = Cfg::build(&p);
/// let dom = Dominators::compute(&cfg);
/// let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
/// let b = select_boundaries(&p, &cfg, &dom, &profile, 100);
/// assert!(b.contains(&p.symbol("loop").unwrap()));
/// ```
#[must_use]
pub fn select_boundaries(
    program: &Program,
    cfg: &Cfg,
    dom: &Dominators,
    profile: &Profile,
    target_task_size: u64,
) -> BTreeSet<u64> {
    let target = target_task_size.max(1);
    let total = profile.dynamic_instructions();

    // Candidate sites: loop headers and call targets (function entries).
    let mut candidate_blocks: BTreeSet<usize> = natural_loops(cfg, dom)
        .into_iter()
        .map(|l| l.header)
        .collect();
    candidate_blocks.extend(cfg.call_targets(program));

    struct Candidate {
        pc: u64,
        expected_size: f64,
    }

    // A boundary must *recur* to provide parallelism: a site crossed once
    // yields a single giant task, i.e. sequential execution.
    let mut candidates: Vec<Candidate> = candidate_blocks
        .into_iter()
        .map(|bid| cfg.blocks()[bid].start)
        .filter_map(|pc| {
            let crossings = profile.exec_count(pc);
            if crossings < 2 {
                None
            } else {
                Some(Candidate {
                    pc,
                    expected_size: total as f64 / crossings as f64,
                })
            }
        })
        .collect();

    if candidates.is_empty() || total == 0 {
        return BTreeSet::from([program.entry()]);
    }

    // Prefer candidates whose solo average task size is closest to the
    // target (in log space, so 2× too big and 2× too small tie). Among
    // equals, prefer the earlier address for determinism.
    candidates.sort_by(|a, b| {
        let ka = (a.expected_size.ln() - (target as f64).ln()).abs();
        let kb = (b.expected_size.ln() - (target as f64).ln()).abs();
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });

    // Accept every recurring site whose solo task size clears a floor.
    // Multi-phase programs (init / build / main loop) need a boundary in
    // *each* phase or one phase degenerates into a single giant task, so
    // no global crossing quota is applied; only sites producing absurdly
    // tiny tasks (innermost micro-loops) are rejected.
    let floor = (target / 32).max(2) as f64;
    let mut chosen: BTreeSet<u64> = candidates
        .iter()
        .filter(|c| c.expected_size >= floor)
        .map(|c| c.pc)
        .collect();
    if chosen.is_empty() {
        chosen.insert(candidates[0].pc);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;

    fn setup(src: &str) -> (Program, Cfg, Dominators, Profile) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let prof = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        (p, cfg, dom, prof)
    }

    #[test]
    fn nested_loop_picks_outer_header_for_large_target() {
        // Inner loop runs 100x per outer iteration; outer runs 50 times.
        let (p, cfg, dom, prof) = setup(
            "main:  addi s0, zero, 50
             outer: addi s1, zero, 100
             inner: addi a0, a0, 1
                    addi s1, s1, -1
                    bnez s1, inner
                    addi s0, s0, -1
                    bnez s0, outer
                    halt",
        );
        // ~15k dynamic instructions; target 300 → outer header (crossed 50
        // times, avg ~300) is ideal; inner header (5000 crossings) is not.
        let b = select_boundaries(&p, &cfg, &dom, &prof, 300);
        assert!(b.contains(&p.symbol("outer").unwrap()));
        assert!(!b.contains(&p.symbol("inner").unwrap()));
    }

    #[test]
    fn small_target_picks_inner_header() {
        let (p, cfg, dom, prof) = setup(
            "main:  addi s0, zero, 50
             outer: addi s1, zero, 100
             inner: addi a0, a0, 1
                    addi s1, s1, -1
                    bnez s1, inner
                    addi s0, s0, -1
                    bnez s0, outer
                    halt",
        );
        let b = select_boundaries(&p, &cfg, &dom, &prof, 3);
        assert!(b.contains(&p.symbol("inner").unwrap()));
    }

    #[test]
    fn straight_line_program_falls_back_to_entry() {
        let (p, cfg, dom, prof) = setup("main: addi a0, zero, 1\n halt");
        let b = select_boundaries(&p, &cfg, &dom, &prof, 100);
        assert_eq!(b, BTreeSet::from([p.entry()]));
    }

    #[test]
    fn untrained_profile_degenerates_to_entry_only() {
        // Even a loopy program degenerates to the entry-only boundary set
        // when no training data exists: every candidate has zero recorded
        // crossings, so MSSP silently falls back to sequential operation.
        // The `degenerate-boundary-set` lint exists to make this audible.
        let (p, cfg, dom, _) = setup(
            "main:  addi s0, zero, 9
             loop:  addi s0, s0, -1
                    bnez s0, loop
                    halt",
        );
        let b = select_boundaries(&p, &cfg, &dom, &Profile::empty(), 100);
        assert_eq!(b, BTreeSet::from([p.entry()]));
    }

    #[test]
    fn function_entries_are_candidates() {
        let (p, cfg, dom, prof) = setup(
            "main:  addi s0, zero, 200
             loop:  call work
                    addi s0, s0, -1
                    bnez s0, loop
                    halt
             work:  addi a0, a0, 1
                    addi a1, a0, 2
                    addi a2, a1, 3
                    ret",
        );
        // `work` is crossed 200 times over ~1800 instructions: avg ~9.
        let b = select_boundaries(&p, &cfg, &dom, &prof, 8);
        assert!(
            b.contains(&p.symbol("work").unwrap()) || b.contains(&p.symbol("loop").unwrap()),
            "expected a recurring site, got {b:?}"
        );
    }

    #[test]
    fn result_is_deterministic() {
        let (p, cfg, dom, prof) = setup(
            "main:  addi s0, zero, 10
             loop:  addi s0, s0, -1
                    bnez s0, loop
                    halt",
        );
        let b1 = select_boundaries(&p, &cfg, &dom, &prof, 2);
        let b2 = select_boundaries(&p, &cfg, &dom, &prof, 2);
        assert_eq!(b1, b2);
    }
}
