//! The program distiller.
//!
//! Produces the *distilled program* the master executes: a speculatively
//! optimized, approximate copy of the original binary. The passes mirror
//! the paper's binary re-optimizer:
//!
//! 1. **Branch asserting** — branches whose training-run bias meets the
//!    configured threshold are replaced by an unconditional transfer in the
//!    dominant direction. (If the assertion is ever wrong at run time, the
//!    master's predictions go stale and verification squashes — approximation
//!    can cost performance, never correctness.)
//! 2. **Cold-code elision** — blocks unreachable in the asserted CFG are
//!    dropped from the distilled image.
//! 3. **Original-image preservation** — calls are rewritten to link the
//!    *original* program's return address (`li ra, <orig ret>` + plain
//!    jump), so the master's register/memory image — and therefore every
//!    live-in it predicts — stays in original-program terms even though the
//!    master's PC walks distilled-space addresses. Indirect jumps
//!    consequently produce original-space targets, which the master's
//!    executor translates back through [`Distilled::to_dist`].
//! 4. **The optimizing pass pipeline** (`passes.rs`, toggled per pass via
//!    [`crate::PassConfig`], run to a fixpoint on the relocatable IR):
//!    * **Constant propagation & folding** — ALU results constant on every
//!      asserted path become single-instruction `li`s; branches the facts
//!      decide collapse into jumps or fall-throughs, and blocks thereby
//!      unreachable (and training-cold) are pruned.
//!    * **Copy propagation** — register uses that provably mirror another
//!      register are rewritten to the source, exposing moves to DCE.
//!    * **Dead-code elimination** — instructions whose results are dead in
//!      the asserted code are removed (with the task-boundary live-in
//!      floor, so slave live-in prediction keeps working).
//!    * **Profile-guided jump threading** — blocks are relaid along the
//!      training run's dominant traces, branches point at their colder
//!      side, and jumps to the physically-next block are elided, so the
//!      master falls through its hot path.
//!
//! This list is the authoritative pass inventory; DESIGN.md carries each
//! pass's soundness argument.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mssp_analysis::{Cfg, ConstProp, Dominators, Liveness, Profile, Terminator};
use mssp_isa::{asm::li_sequence, Instr, Program, INSTR_BYTES};
use mssp_machine::{Fault, MachineState, SeqMachine};

use crate::ir::{layout, DBlock, DInstr};
use crate::passes::{run_pipeline, PassDelta, PipelineOutcome};
use crate::slice::{compute_slices, Slice};
use crate::{select_boundaries, DistillConfig, DistillLevel};

/// Distillation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistillError {
    /// A relocated branch displacement overflowed 16 bits; the block's
    /// original start address is reported.
    BranchOutOfRange(u64),
    /// The distilled text would overlap the data segment.
    DoesNotFit,
    /// Validation found error-severity soundness violations in the
    /// distilled output; each entry is one rendered diagnostic. Produced
    /// by `mssp-lint`'s `distill_validated`, never by plain [`distill`].
    Unsound(Vec<String>),
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::BranchOutOfRange(pc) => {
                write!(f, "relocated branch in block {pc:#x} out of range")
            }
            DistillError::DoesNotFit => {
                write!(f, "distilled text overlaps the data segment")
            }
            DistillError::Unsound(findings) => {
                write!(
                    f,
                    "distilled output is unsound ({} finding{}): {}",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    findings.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for DistillError {}

/// Static statistics of one distillation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistillStats {
    /// Static instructions in the original text.
    pub original_static: usize,
    /// Static instructions in the distilled text.
    pub distilled_static: usize,
    /// Conditional branches asserted away.
    pub asserted_branches: usize,
    /// Basic blocks elided as cold/unreachable.
    pub removed_blocks: usize,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
    /// Write-only stores elided from the master's program.
    pub stores_elided: usize,
    /// Calls rewritten to preserve original return addresses.
    pub calls_rewritten: usize,
    /// ALU results rematerialized as immediate loads by constant folding.
    pub const_folded: usize,
    /// Conditional branches collapsed by constant facts.
    pub branches_folded: usize,
    /// Register uses rewritten to their copy source.
    pub copies_propagated: usize,
    /// Control transfers redirected or elided by jump threading.
    pub jumps_threaded: usize,
    /// Pipeline iterations actually run before the fixpoint (or budget).
    pub pipeline_iterations: usize,
    /// Pre-computation slices (spawn guards + live-in slices) emitted
    /// from squash feedback in the profile.
    pub slices_emitted: usize,
}

/// A distilled program plus the metadata the MSSP engine needs to drive it.
#[derive(Debug, Clone)]
pub struct Distilled {
    program: Program,
    boundaries: BTreeSet<u64>,
    orig_to_dist: BTreeMap<u64, u64>,
    dist_to_orig: BTreeMap<u64, u64>,
    boundary_dist: BTreeMap<u64, u64>,
    crossings_per_task: u64,
    stats: DistillStats,
    pass_trace: Vec<PassDelta>,
    slices: BTreeMap<u64, Vec<Slice>>,
}

impl Distilled {
    /// Assembles a `Distilled` from hand-built parts: a master program,
    /// the task-boundary set (original-space PCs) and the original ↔
    /// distilled PC correspondence.
    ///
    /// This is the "bring your own distiller" escape hatch. MSSP's
    /// correctness does not depend on the master program being related to
    /// the original in any way — the formal model treats the master as a
    /// black box — so this constructor performs no semantic validation.
    /// The correctness test-suite uses it to drive the engine with
    /// adversarial masters.
    #[must_use]
    pub fn from_parts(
        program: Program,
        boundaries: BTreeSet<u64>,
        orig_to_dist: BTreeMap<u64, u64>,
    ) -> Distilled {
        let dist_to_orig: BTreeMap<u64, u64> = orig_to_dist.iter().map(|(&o, &d)| (d, o)).collect();
        let boundary_dist: BTreeMap<u64, u64> = boundaries
            .iter()
            .filter_map(|&b| orig_to_dist.get(&b).map(|&d| (d, b)))
            .collect();
        let stats = DistillStats {
            original_static: 0,
            distilled_static: program.len(),
            ..DistillStats::default()
        };
        Distilled {
            program,
            boundaries,
            orig_to_dist,
            dist_to_orig,
            boundary_dist,
            crossings_per_task: 1,
            stats,
            pass_trace: Vec::new(),
            slices: BTreeMap::new(),
        }
    }

    /// Returns this `Distilled` with an explicit crossings-per-task count
    /// (see [`Distilled::crossings_per_task`]).
    #[must_use]
    pub fn with_crossings_per_task(mut self, n: u64) -> Distilled {
        self.crossings_per_task = n.max(1);
        self
    }

    /// Returns this `Distilled` with an explicit pre-computation slice
    /// map (boundary original PC → slices). The "bring your own
    /// distiller" counterpart of the slice pass; the lint-adversarial
    /// tests use it to plant deliberately unsound slices.
    #[must_use]
    pub fn with_slices(mut self, slices: BTreeMap<u64, Vec<Slice>>) -> Distilled {
        self.stats.slices_emitted = slices.values().map(Vec::len).sum();
        self.slices = slices;
        self
    }

    /// Pre-computation slices attached to the boundary at `orig_pc`
    /// (empty for boundaries without squash feedback).
    #[must_use]
    pub fn slices_at(&self, orig_pc: u64) -> &[Slice] {
        self.slices.get(&orig_pc).map_or(&[], Vec::as_slice)
    }

    /// The full boundary → slices map (the linter's audit surface).
    #[must_use]
    pub fn slices(&self) -> &BTreeMap<u64, Vec<Slice>> {
        &self.slices
    }

    /// How many boundary crossings make one task. Boundary *sites* are
    /// chosen for path coverage (every phase needs one), which can make
    /// individual crossings only a few instructions apart; grouping `n`
    /// consecutive crossings into one task restores the target task size.
    /// The master and the slaves count crossings identically along the
    /// same path, so the grouping never causes disagreement beyond what a
    /// wrong prediction would cause anyway.
    #[must_use]
    pub fn crossings_per_task(&self) -> u64 {
        self.crossings_per_task
    }

    /// The distilled binary (placed at
    /// [`DistillConfig::dist_text_base`]).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Task-boundary PCs, in *original* program space. Slaves end tasks on
    /// reaching any of these; the verify unit checks end-PC/start-PC
    /// agreement against them.
    #[must_use]
    pub fn boundaries(&self) -> &BTreeSet<u64> {
        &self.boundaries
    }

    /// Translates an original block-start address to its distilled
    /// address, if that block was retained. Used to restart the master at
    /// a recovery point and to translate indirect-jump targets.
    #[must_use]
    pub fn to_dist(&self, orig_pc: u64) -> Option<u64> {
        self.orig_to_dist.get(&orig_pc).copied()
    }

    /// Translates a distilled block-start address back to original space.
    #[must_use]
    pub fn to_orig(&self, dist_pc: u64) -> Option<u64> {
        self.dist_to_orig.get(&dist_pc).copied()
    }

    /// If `dist_pc` is the distilled address of a task boundary, the
    /// boundary's original PC — the master's spawn trigger.
    #[must_use]
    pub fn boundary_at_dist(&self, dist_pc: u64) -> Option<u64> {
        self.boundary_dist.get(&dist_pc).copied()
    }

    /// Iterates over the full original → distilled block-start
    /// correspondence, in original-address order. This is the linter's
    /// window into which blocks the distiller retained.
    pub fn iter_pc_map(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.orig_to_dist.iter().map(|(&o, &d)| (o, d))
    }

    /// Distillation statistics.
    #[must_use]
    pub fn stats(&self) -> DistillStats {
        self.stats
    }

    /// The pass pipeline's static-size trace, one entry per pass run in
    /// pipeline order (empty for [`Distilled::from_parts`] and when every
    /// pass is disabled). Drives `mssp distill --stats`.
    #[must_use]
    pub fn pass_trace(&self) -> &[PassDelta] {
        &self.pass_trace
    }

    /// Runs the distilled program sequentially to `halt`, performing the
    /// master's indirect-target translation (indirect jumps produce
    /// original-space targets; see the module docs), and returns the
    /// final state.
    ///
    /// This is a *functional* execution of the master's fast path —
    /// useful for testing distillation soundness and characterizing
    /// distilled behaviour without spinning up the full engine.
    ///
    /// # Errors
    ///
    /// Returns [`DistilledRunError::Fault`] if the distilled program
    /// faults, [`DistilledRunError::Untranslatable`] if an indirect jump
    /// produces an original-space target with no distilled image (the
    /// master would be lost there), and [`DistilledRunError::DidNotHalt`]
    /// if `max_steps` run out first — distilled programs routinely spin
    /// forever when an asserted exit branch was distilled away, so
    /// termination is the caller's contract to check.
    pub fn run_to_halt(&self, max_steps: u64) -> Result<MachineState, DistilledRunError> {
        let mut m = SeqMachine::boot(&self.program);
        for _ in 0..max_steps {
            let info = m.step().map_err(DistilledRunError::Fault)?;
            if info.halted {
                return Ok(m.into_state());
            }
            if info.instr.is_indirect_jump() {
                // Translate original-space target to distilled space.
                let dist = self
                    .to_dist(info.next_pc)
                    .ok_or(DistilledRunError::Untranslatable(info.next_pc))?;
                let mut s = m.into_state();
                s.set_pc(dist);
                m = SeqMachine::resume(&self.program, s);
            }
        }
        Err(DistilledRunError::DidNotHalt)
    }
}

/// Why a functional run of a distilled program failed — see
/// [`Distilled::run_to_halt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistilledRunError {
    /// The distilled program faulted.
    Fault(Fault),
    /// An indirect jump produced an original-space target that has no
    /// distilled translation.
    Untranslatable(u64),
    /// The step budget ran out before `halt`.
    DidNotHalt,
}

impl fmt::Display for DistilledRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistilledRunError::Fault(fault) => {
                write!(f, "distilled program faulted: {fault}")
            }
            DistilledRunError::Untranslatable(pc) => {
                write!(f, "indirect target {pc:#x} has no distilled translation")
            }
            DistilledRunError::DidNotHalt => write!(f, "distilled program did not halt"),
        }
    }
}

impl std::error::Error for DistilledRunError {}

/// Distills `program` using `profile` as training data.
///
/// # Errors
///
/// Returns [`DistillError`] if relocation overflows a branch offset or the
/// distilled image cannot be placed (both indicate a program far larger
/// than this ISA's 16-bit displacement reach).
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::Profile;
/// use mssp_distill::{distill, DistillConfig};
///
/// let p = assemble(
///     "main: addi a0, zero, 500
///      loop: addi a1, a1, 3
///            addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
/// let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
/// assert!(!d.boundaries().is_empty());
/// ```
pub fn distill(
    program: &Program,
    profile: &Profile,
    config: &DistillConfig,
) -> Result<Distilled, DistillError> {
    distill_pinned(program, profile, config, None)
}

/// Re-distills `program` against a fresher `profile` while *pinning* the
/// task-boundary set and crossings-per-task grouping of an earlier
/// distillation.
///
/// This is the online adaptive loop's re-entry point. Boundaries define
/// the task segmentation that the engine's slaves, verify unit and
/// recovery path all agree on; keeping them (and the crossing grouping)
/// fixed means a hot-swapped distilled program changes only the *master's
/// fast path* — branch assertions, cold-code elision and the optimizing
/// pass pipeline re-run against current behaviour — while the slave
/// protocol is untouched. Pinned boundary blocks are force-retained so
/// every boundary keeps a distilled-PC mapping even if the new profile
/// calls it cold.
///
/// `boundaries` must be block starts of `program` (true of any boundary
/// set produced by [`distill`] on the same program).
///
/// # Errors
///
/// Same failure modes as [`distill`].
pub fn redistill(
    program: &Program,
    profile: &Profile,
    config: &DistillConfig,
    boundaries: &BTreeSet<u64>,
    crossings_per_task: u64,
) -> Result<Distilled, DistillError> {
    distill_pinned(
        program,
        profile,
        config,
        Some((boundaries, crossings_per_task)),
    )
}

fn distill_pinned(
    program: &Program,
    profile: &Profile,
    config: &DistillConfig,
    pin: Option<(&BTreeSet<u64>, u64)>,
) -> Result<Distilled, DistillError> {
    let cfg = Cfg::build(program);
    let dom = Dominators::compute(&cfg);

    // --- Pass 1: decide branch assertions. ---
    #[derive(Clone, Copy)]
    enum Assert {
        Taken(u64),
        NotTaken,
    }
    let mut asserts: BTreeMap<usize, Assert> = BTreeMap::new();
    if let Some(threshold) = config.effective_assert_bias() {
        for (bid, block) in cfg.blocks().iter().enumerate() {
            let Terminator::Branch { .. } = block.terminator else {
                continue;
            };
            let branch_pc = block.end - INSTR_BYTES;
            let Some(counts) = profile.branch(branch_pc) else {
                continue; // never executed in training: leave intact
            };
            let Some(bias) = counts.bias() else { continue };
            if bias >= threshold {
                if counts.mostly_taken() {
                    let target = program
                        .fetch(branch_pc)
                        .and_then(|i| i.static_target(branch_pc))
                        .expect("branch has a static target");
                    asserts.insert(bid, Assert::Taken(target));
                } else {
                    asserts.insert(bid, Assert::NotTaken);
                }
            }
        }
    }

    // --- Pass 2: reachability over the asserted CFG. ---
    // Successors honour assertions; calls additionally reach their return
    // site (the master returns there via the translated indirect jump).
    let is_call = |bid: usize| -> bool {
        let last_pc = cfg.blocks()[bid].end - INSTR_BYTES;
        match program.fetch(last_pc) {
            Some(Instr::Jal(rd, _)) | Some(Instr::Jalr(rd, _, _)) => !rd.is_zero(),
            _ => false,
        }
    };
    let succs = |bid: usize| -> Vec<usize> {
        let block = &cfg.blocks()[bid];
        let mut out = match (block.terminator, asserts.get(&bid)) {
            (Terminator::Branch { taken, .. }, Some(Assert::Taken(_))) => vec![taken],
            (Terminator::Branch { fallthrough, .. }, Some(Assert::NotTaken)) => {
                vec![fallthrough]
            }
            _ => cfg.successors(bid),
        };
        if is_call(bid) {
            if let Some(ret) = cfg.block_at(block.end) {
                out.push(ret);
            }
        }
        out
    };
    // Roots: the entry plus every block executed in training. Asserting a
    // loop's back edge makes the code after the loop *statically*
    // unreachable in the asserted CFG, but that code is hot — the master
    // gets re-seeded into it at the next recovery point — so anything the
    // profile saw must stay in the distilled image. Only blocks that never
    // executed and are reachable solely through asserted-away directions
    // (error handlers, guard-repair paths) are elided.
    let mut retained = vec![false; cfg.blocks().len()];
    let mut stack: Vec<usize> = vec![cfg.entry()];
    stack.extend(
        cfg.blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| profile.exec_count(b.start) > 0)
            .map(|(bid, _)| bid),
    );
    // Pinned boundaries (re-distillation) must keep their distilled-PC
    // mapping even when the fresher profile no longer reaches them, so
    // their blocks join the retention roots.
    if let Some((fixed, _)) = pin {
        stack.extend(
            cfg.blocks()
                .iter()
                .enumerate()
                .filter(|(_, b)| fixed.contains(&b.start))
                .map(|(bid, _)| bid),
        );
    }
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut retained[b], true) {
            continue;
        }
        stack.extend(succs(b));
    }
    let removed_blocks = retained.iter().filter(|r| !**r).count();

    // --- Pass 3: boundaries (restricted to retained blocks), or the
    // pinned set verbatim when re-distilling. ---
    let boundaries: BTreeSet<u64> = match pin {
        Some((fixed, _)) => fixed.clone(),
        None => {
            let retained_starts: BTreeSet<u64> = cfg
                .blocks()
                .iter()
                .enumerate()
                .filter(|(bid, _)| retained[*bid])
                .map(|(_, b)| b.start)
                .collect();
            select_boundaries(program, &cfg, &dom, profile, config.target_task_size)
                .intersection(&retained_starts)
                .copied()
                .collect()
        }
    };

    // --- Pass 4: build the relocatable IR. ---
    let mut blocks: Vec<DBlock> = Vec::new();
    let mut asserted_branches = 0;
    let mut calls_rewritten = 0;
    let mut stores_elided = 0;
    let elide_stores = config.level == DistillLevel::Aggressive;
    for (bid, block) in cfg.blocks().iter().enumerate() {
        if !retained[bid] {
            continue;
        }
        let mut instrs = Vec::new();
        for pc in block.pcs() {
            let instr = program.fetch(pc).expect("pc in text");
            match instr {
                Instr::Jal(rd, _) => {
                    let target = instr.static_target(pc).expect("jal target");
                    if !rd.is_zero() {
                        calls_rewritten += 1;
                        for li in li_sequence(rd, (pc + INSTR_BYTES) as i64) {
                            instrs.push(DInstr::Copy(li));
                        }
                    }
                    instrs.push(DInstr::Jump(block_start_of(&cfg, target)));
                }
                Instr::Jalr(rd, base, off) => {
                    if !rd.is_zero() {
                        calls_rewritten += 1;
                        for li in li_sequence(rd, (pc + INSTR_BYTES) as i64) {
                            instrs.push(DInstr::Copy(li));
                        }
                        instrs.push(DInstr::Copy(Instr::Jalr(mssp_isa::Reg::ZERO, base, off)));
                    } else {
                        instrs.push(DInstr::Copy(instr));
                    }
                }
                _ if instr.is_branch() && pc == block.end - INSTR_BYTES => {
                    match asserts.get(&bid) {
                        Some(Assert::Taken(target)) => {
                            asserted_branches += 1;
                            instrs.push(DInstr::Jump(block_start_of(&cfg, *target)));
                        }
                        Some(Assert::NotTaken) => {
                            asserted_branches += 1;
                            // Dropped: execution falls through.
                        }
                        None => {
                            let target = instr.static_target(pc).expect("branch target");
                            instrs.push(DInstr::Branch(instr, block_start_of(&cfg, target)));
                        }
                    }
                }
                _ if instr.is_store() && elide_stores && profile.store_is_write_only(pc) => {
                    stores_elided += 1;
                }
                _ => instrs.push(DInstr::Copy(instr)),
            }
        }
        blocks.push(DBlock {
            orig_start: block.start,
            instrs,
        });
    }

    // --- Pass 5: the optimizing pass pipeline (skipped for the identity
    // level, which promises a verbatim relocated image). At every task
    // boundary the master must still be able to predict any register the
    // *original* program may read before writing (those are exactly the
    // register live-ins of tasks starting there), so original liveness at
    // boundary PCs is injected as a DCE floor; the same boundary set — plus
    // the original program's materialized constants, which over-approximate
    // indirect-jump landing sites — seeds pessimistic dataflow facts in the
    // folding passes (the master can enter there with arbitrary state).
    let pipeline = if config.level == DistillLevel::None || !config.passes.any_enabled() {
        PipelineOutcome::default()
    } else {
        let orig_live = Liveness::compute(program, &cfg);
        let boundary_live: crate::ir::BoundaryLive = boundaries
            .iter()
            .map(|&b| (b, orig_live.live_in(b)))
            .collect();
        let mut reseed: BTreeSet<u64> = boundaries.clone();
        if config.passes.const_fold {
            reseed.extend(ConstProp::compute(program, &cfg).materialized(program));
        }
        let hot_roots: BTreeSet<u64> = cfg
            .blocks()
            .iter()
            .filter(|b| profile.exec_count(b.start) > 0)
            .map(|b| b.start)
            .collect();
        let entry_start = cfg.blocks()[cfg.entry()].start;
        let block_ends: BTreeMap<u64, u64> =
            cfg.blocks().iter().map(|b| (b.start, b.end)).collect();
        run_pipeline(
            &mut blocks,
            &config.passes,
            profile,
            &boundary_live,
            entry_start,
            &reseed,
            &hot_roots,
            &block_ends,
        )
    };

    // --- Pass 6: layout and emission. ---
    let (text, orig_to_dist) = layout(&blocks, config.dist_text_base)
        .map_err(|e| DistillError::BranchOutOfRange(e.orig_block))?;
    let text_end = config.dist_text_base + text.len() as u64 * INSTR_BYTES;
    if config.dist_text_base < program.data_base() && text_end > program.data_base() {
        return Err(DistillError::DoesNotFit);
    }
    let entry_block = cfg.blocks()[cfg.entry()].start;
    let dist_entry = orig_to_dist[&entry_block];
    let distilled_program = Program::new(
        text,
        config.dist_text_base,
        Vec::new(),
        program.data_base(),
        dist_entry,
        BTreeMap::new(),
    );
    distilled_program
        .validate()
        .expect("layout produced in-range targets");

    let dist_to_orig: BTreeMap<u64, u64> = orig_to_dist.iter().map(|(&o, &d)| (d, o)).collect();
    let boundary_dist: BTreeMap<u64, u64> = boundaries
        .iter()
        .filter_map(|&b| orig_to_dist.get(&b).map(|&d| (d, b)))
        .collect();

    // --- Pass 7: pre-computation slices (squash-feedback-gated). ---
    let crossings_per_task = match pin {
        Some((_, n)) => n.max(1),
        None => crossings_per_task_of(profile, &boundaries, config),
    };
    let slices = compute_slices(
        program,
        &cfg,
        profile,
        &boundaries,
        crossings_per_task,
        config,
    );

    let counters = pipeline.counters;
    let stats = DistillStats {
        original_static: program.len(),
        distilled_static: distilled_program.len(),
        asserted_branches,
        removed_blocks: removed_blocks + counters.pruned_blocks,
        dce_removed: counters.dce_removed,
        stores_elided,
        calls_rewritten,
        const_folded: counters.const_folded,
        branches_folded: counters.branches_folded,
        copies_propagated: counters.copies_propagated,
        jumps_threaded: counters.jumps_threaded,
        pipeline_iterations: counters.iterations,
        slices_emitted: slices.values().map(Vec::len).sum(),
    };

    Ok(Distilled {
        program: distilled_program,
        boundaries,
        orig_to_dist,
        dist_to_orig,
        boundary_dist,
        crossings_per_task,
        stats,
        pass_trace: pipeline.trace,
        slices,
    })
}

/// Groups crossings so the *average* task hits the configured size.
fn crossings_per_task_of(
    profile: &Profile,
    boundaries: &BTreeSet<u64>,
    config: &DistillConfig,
) -> u64 {
    let total_crossings: u64 = boundaries.iter().map(|&b| profile.exec_count(b)).sum();
    if total_crossings == 0 {
        1
    } else {
        let gap = profile.dynamic_instructions() as f64 / total_crossings as f64;
        ((config.target_task_size as f64 / gap).round() as u64).clamp(1, 4096)
    }
}

fn block_start_of(cfg: &Cfg, pc: u64) -> u64 {
    let bid = cfg.block_at(pc).expect("control targets are block leaders");
    cfg.blocks()[bid].start
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;
    use mssp_machine::SeqMachine;

    const LOOPY: &str = "
        main:   addi s0, zero, 400
        loop:   andi t0, s0, 7
                bnez t0, common      ; taken 7/8 of the time
        rare:   addi s1, s1, 100     ; cold-ish path
                j next
        common: addi s1, s1, 1
        next:   addi s0, s0, -1
                bnez s0, loop
                halt";

    fn distilled(src: &str, level: DistillLevel) -> (Program, Distilled) {
        let p = assemble(src).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let cfg = DistillConfig::at_level(level);
        let d = distill(&p, &prof, &cfg).unwrap();
        (p, d)
    }

    /// Runs the distilled program sequentially (with indirect-target
    /// translation as the master would perform it) and returns the final
    /// register `r`.
    fn run_distilled(d: &Distilled, r: Reg) -> u64 {
        d.run_to_halt(1_000_000)
            .expect("distilled fixture halts")
            .reg(r)
    }

    #[test]
    fn run_to_halt_reports_non_termination_as_typed_error() {
        // An always-spinning master is perfectly legal MSSP input; a
        // functional run of it must end in a typed error, not a panic.
        let spin = assemble("main: j main").unwrap();
        let d = Distilled::from_parts(spin, BTreeSet::new(), BTreeMap::new());
        assert_eq!(d.run_to_halt(100), Err(DistilledRunError::DidNotHalt));
    }

    #[test]
    fn run_to_halt_reports_untranslatable_indirect_targets() {
        // `jalr` produces an original-space target (see module docs); if
        // the distiller retained no image for it, the master is lost.
        let p = assemble("main: li a0, 0x5000\n jalr ra, 0(a0)\n halt").unwrap();
        let d = Distilled::from_parts(p, BTreeSet::new(), BTreeMap::new());
        assert_eq!(
            d.run_to_halt(100),
            Err(DistilledRunError::Untranslatable(0x5000))
        );
    }

    #[test]
    fn run_to_halt_propagates_faults_as_typed_error() {
        // A direct jump clear out of the text segment faults at fetch.
        let p = Program::from_instrs(vec![Instr::Jal(Reg::RA, 0x400)]);
        match d_from(p).run_to_halt(100) {
            Err(DistilledRunError::Fault(_)) => {}
            other => panic!("expected fault, got {other:?}"),
        }
    }

    fn d_from(p: Program) -> Distilled {
        Distilled::from_parts(p, BTreeSet::new(), BTreeMap::new())
    }

    #[test]
    fn identity_level_preserves_semantics_exactly() {
        let (p, d) = distilled(LOOPY, DistillLevel::None);
        let mut orig = SeqMachine::boot(&p);
        orig.run(u64::MAX).unwrap();
        let got = run_distilled(&d, Reg::S1);
        assert_eq!(got, orig.state().reg(Reg::S1));
        assert_eq!(d.stats().asserted_branches, 0);
        assert_eq!(d.stats().dce_removed, 0);
    }

    #[test]
    fn conservative_never_asserts_partially_biased_branches() {
        let (_, d) = distilled(LOOPY, DistillLevel::Conservative);
        // Both branches are taken sometimes and not others: nothing to
        // assert, nothing unreachable.
        assert_eq!(d.stats().asserted_branches, 0);
        assert_eq!(d.stats().removed_blocks, 0);
    }

    #[test]
    fn aggressive_asserts_and_shrinks() {
        let p = assemble(
            "main:   addi s0, zero, 1000
             loop:   addi s1, s1, 1
                     beqz s1, never       ; never taken (s1 counts up from 1)
                     addi s0, s0, -1
                     bnez s0, loop
                     halt
             never:  addi s1, zero, -1
                     j loop",
        )
        .unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(
            &p,
            &prof,
            &DistillConfig::at_level(DistillLevel::Aggressive),
        )
        .unwrap();
        assert!(d.stats().asserted_branches >= 1);
        assert!(d.stats().removed_blocks >= 1);
        assert!(d.stats().distilled_static < d.stats().original_static);
        // With the branch asserted, s1 is no longer consumed anywhere in
        // the distilled program and its updates are legitimately removed —
        // the loop counter s0, which controls retained branches, survives.
        let s0 = run_distilled(&d, Reg::S0);
        assert_eq!(s0, 0);
    }

    #[test]
    fn calls_link_original_return_addresses() {
        let src = "
            main:  addi s0, zero, 5
            loop:  call bump
                   addi s0, s0, -1
                   bnez s0, loop
                   halt
            bump:  addi s1, s1, 2
                   ret";
        let (p, d) = distilled(src, DistillLevel::None);
        assert!(d.stats().calls_rewritten >= 1);
        // Execute distilled code; `ret` targets must be original-space
        // block starts that translate back into distilled space.
        let got = run_distilled(&d, Reg::S1);
        let mut orig = SeqMachine::boot(&p);
        orig.run(u64::MAX).unwrap();
        assert_eq!(got, orig.state().reg(Reg::S1));
        assert_eq!(got, 10);
    }

    #[test]
    fn boundaries_map_into_distilled_space() {
        let (_, d) = distilled(LOOPY, DistillLevel::Aggressive);
        for &b in d.boundaries() {
            let dist = d.to_dist(b).expect("boundary retained");
            assert_eq!(d.to_orig(dist), Some(b));
            assert_eq!(d.boundary_at_dist(dist), Some(b));
        }
    }

    #[test]
    fn dce_removes_computation_feeding_asserted_branches() {
        // t0 exists only to steer a fully-biased branch; after asserting,
        // the andi producing it is dead.
        let p = assemble(
            "main:   addi s0, zero, 64
             loop:   andi t0, s0, 1023   ; always nonzero for s0 in 1..=64
                     beqz t0, cold
                     addi s1, s1, 1
             back:   addi s0, s0, -1
                     bnez s0, loop
                     halt
             cold:   addi s1, s1, 50
                     j back",
        )
        .unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(
            &p,
            &prof,
            &DistillConfig::at_level(DistillLevel::Aggressive),
        )
        .unwrap();
        assert!(d.stats().asserted_branches >= 1);
        assert!(d.stats().dce_removed >= 1, "stats: {:?}", d.stats());
    }

    #[test]
    fn redistill_pins_boundaries_and_crossings() {
        let p = assemble(LOOPY).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let cfg = DistillConfig::at_level(DistillLevel::Aggressive);
        let first = distill(&p, &prof, &cfg).unwrap();
        // Re-distill against a much shorter (phase-truncated) profile:
        // the boundary set and crossing grouping must survive verbatim,
        // and every pinned boundary must stay mapped.
        let short = Profile::collect(&p, 40).unwrap();
        let second = redistill(
            &p,
            &short,
            &cfg,
            first.boundaries(),
            first.crossings_per_task(),
        )
        .unwrap();
        assert_eq!(second.boundaries(), first.boundaries());
        assert_eq!(second.crossings_per_task(), first.crossings_per_task());
        for &b in second.boundaries() {
            let dist = second.to_dist(b).expect("pinned boundary retained");
            assert_eq!(second.boundary_at_dist(dist), Some(b));
        }
    }

    #[test]
    fn redistill_with_empty_profile_keeps_boundaries_mapped() {
        // The decayed-to-nothing extreme: no block is profile-hot, so
        // retention rests entirely on the entry walk + pinned roots.
        let p = assemble(LOOPY).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let cfg = DistillConfig::at_level(DistillLevel::Aggressive);
        let first = distill(&p, &prof, &cfg).unwrap();
        let second = redistill(
            &p,
            &Profile::empty(),
            &cfg,
            first.boundaries(),
            first.crossings_per_task(),
        )
        .unwrap();
        assert_eq!(second.boundaries(), first.boundaries());
        for &b in second.boundaries() {
            assert!(second.to_dist(b).is_some());
        }
        // An empty profile asserts nothing, so the image is conservative.
        assert_eq!(second.stats().asserted_branches, 0);
    }

    #[test]
    fn distilled_dynamic_length_is_shorter() {
        let (p, d) = distilled(LOOPY, DistillLevel::Aggressive);
        let mut orig = SeqMachine::boot(&p);
        orig.run(u64::MAX).unwrap();
        let mut dist = SeqMachine::boot(d.program());
        dist.run(u64::MAX).unwrap();
        // LOOPY has no calls, so the distilled program runs standalone.
        assert!(dist.instructions() <= orig.instructions());
    }
}
