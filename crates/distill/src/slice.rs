//! Pre-computation slices (the Prophet-style squash-rate attack).
//!
//! When a previous MSSP run reports *where* speculation failed — the
//! architected PCs of wrong-path squashes and the registers behind
//! live-in mismatches, threaded back into the [`Profile`] as slice
//! feedback — this pass extracts, per task boundary, short straight-line
//! programs the run-time can execute against the master's checkpoint
//! view:
//!
//! * **Spawn guards** re-evaluate an asserted branch condition over the
//!   upcoming task window. The distilled program replaced the branch with
//!   its dominant direction; the guard recomputes the *real* condition
//!   from spawn-available values and, when the rare direction is due
//!   inside the window, tells the master to veto the spawn and fall back
//!   to a sequential recovery segment instead of feeding the verify unit
//!   a doomed task.
//! * **Live-in slices** recompute a hard-to-predict live-in register from
//!   loop-invariant inputs, so the checkpoint ships the computed value
//!   instead of the master's (possibly stale) copy.
//!
//! Like distillation itself, slices are purely a performance artifact:
//! a wrong guard costs a recovery segment or a squash, never
//! correctness — every slice-sourced value still rides the normal
//! live-in verification. The `slice-unsound` lint additionally proves
//! each emitted slice reads only spawn-available values (declared
//! inputs, earlier slice results, or — in guards — loads answered from
//! the master's spawn-time memory view), keeping the contract auditable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mssp_analysis::{Cfg, Profile, Terminator};
use mssp_isa::{Instr, Program, Reg, INSTR_BYTES};

use crate::DistillConfig;

/// What a slice computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// Re-evaluates an asserted branch condition; the final instruction
    /// of the slice program is the branch itself. If any evaluation over
    /// the spawn window resolves *against* the asserted direction, the
    /// master vetoes the spawn.
    SpawnGuard {
        /// The direction the distiller asserted (and the master follows).
        asserted_taken: bool,
    },
    /// Recomputes one live-in register from spawn-available inputs; the
    /// result overrides the master's checkpoint value for that cell.
    LiveIn {
        /// The register the slice produces.
        target: Reg,
    },
}

/// A pre-computation slice attached to a task boundary.
#[derive(Debug, Clone)]
pub struct Slice {
    /// What the slice computes.
    pub kind: SliceKind,
    /// The slice body as a standalone straight-line program (entry at its
    /// text base; live-in slices end in `halt`, guards end in the guarded
    /// branch, whose encoded offset is never followed).
    pub program: Program,
    /// Input registers the slice reads, each with its estimated
    /// per-boundary-crossing stride in the original loop (`0` for
    /// loop-invariant inputs). The evaluator seeds input `r` with
    /// `view(r) + stride * j` when probing crossing `j` of the window —
    /// except inputs the slice itself redefines (induction updates,
    /// pointer-chase loads), which are fed back probe-to-probe instead
    /// and carry stride `0` here.
    pub inputs: Vec<(Reg, i64)>,
    /// Boundary crossings one spawned task covers — the range of `j` a
    /// guard must clear before the spawn is allowed.
    pub window: u64,
    /// The original-program PC the slice was extracted from (the asserted
    /// branch, or the live-in's defining instruction) — the diagnostic
    /// anchor for `slice-unsound`.
    pub home_pc: u64,
}

/// Hard ceiling on slice length, enforced by construction here and
/// re-proved by the `slice-unsound` lint on every `Distilled`.
pub const MAX_SLICE_LEN: usize = 16;

/// Is this instruction pure ALU (no memory, no control, no halt)?
fn is_pure_alu(i: &Instr) -> bool {
    !i.is_mem() && !i.is_control() && !i.is_halt() && !i.is_branch()
}

/// Bounded forward reachability walk from `start` over static control
/// flow, returning the visited PCs (at most `max` instructions).
fn forward_walk(program: &Program, start: u64, max: usize) -> BTreeSet<u64> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(pc) = queue.pop_front() {
        if seen.len() >= max || !seen.insert(pc) {
            continue;
        }
        let Some(instr) = program.fetch(pc) else {
            continue;
        };
        if instr.is_halt() || instr.is_indirect_jump() {
            continue;
        }
        if let Some(t) = instr.static_target(pc) {
            queue.push_back(t);
        }
        if !instr.is_jump() {
            queue.push_back(pc + INSTR_BYTES);
        }
    }
    seen
}

/// The per-crossing stride of `reg` inside `[lo, hi)`: `Some(imm)` if the
/// region's only def of `reg` is a single self-increment `addi reg, reg,
/// imm`, `Some(0)` if the region never defines it, `None` otherwise.
fn region_stride(program: &Program, reg: Reg, lo: u64, hi: u64) -> Option<i64> {
    let mut stride: Option<i64> = None;
    let mut pc = lo;
    while pc < hi {
        let Some(instr) = program.fetch(pc) else {
            break;
        };
        if instr.def_reg() == Some(reg) {
            match (instr, stride) {
                (Instr::Addi(d, s, imm), None) if d == s => stride = Some(i64::from(imm)),
                _ => return None, // multiple or non-induction defs
            }
        }
        pc += INSTR_BYTES;
    }
    Some(stride.unwrap_or(0))
}

/// Backward condition slice within one block: the pure-ALU (or load)
/// instructions, in program order, needed to recompute `branch_pc`'s
/// condition from block-entry values, plus the registers left as inputs.
/// `None` when a needed register is defined by a store/control
/// instruction or the slice would exceed the length budget.
fn condition_slice(
    program: &Program,
    block_start: u64,
    branch_pc: u64,
) -> Option<(Vec<Instr>, BTreeSet<Reg>)> {
    let branch = program.fetch(branch_pc)?;
    let mut needed: BTreeSet<Reg> = branch.use_regs().into_iter().flatten().collect();
    needed.remove(&Reg::ZERO);
    let mut picked: Vec<(u64, Instr)> = Vec::new();
    let mut pc = branch_pc;
    while pc > block_start {
        pc -= INSTR_BYTES;
        let instr = program.fetch(pc)?;
        let Some(def) = instr.def_reg() else { continue };
        if !needed.remove(&def) {
            continue;
        }
        // Loads are admitted alongside pure ALU: the evaluator answers
        // them from the master's spawn-time memory view, which makes
        // pointer-chase exit conditions guardable. Stores and control
        // stay out.
        if !(is_pure_alu(&instr) || instr.is_load()) || picked.len() + 1 >= MAX_SLICE_LEN {
            return None;
        }
        picked.push((pc, instr));
        needed.extend(instr.use_regs().into_iter().flatten());
        needed.remove(&Reg::ZERO);
    }
    picked.reverse();
    Some((picked.into_iter().map(|(_, i)| i).collect(), needed))
}

/// Runs the slice pass. Active only when the profile carries slice
/// feedback (squash observations from a previous run); without feedback
/// the result is empty and distillation output is byte-identical to a
/// feedback-free run.
pub(crate) fn compute_slices(
    program: &Program,
    cfg: &Cfg,
    profile: &Profile,
    boundaries: &BTreeSet<u64>,
    crossings_per_task: u64,
    config: &DistillConfig,
) -> BTreeMap<u64, Vec<Slice>> {
    let mut out: BTreeMap<u64, Vec<Slice>> = BTreeMap::new();
    if !profile.has_slice_feedback() || boundaries.is_empty() {
        return out;
    }
    let Some(threshold) = config.effective_assert_bias() else {
        return out;
    };
    let hard = profile.hard_live_ins();
    let wrong = profile.wrong_path_pcs();

    for block in cfg.blocks() {
        let Terminator::Branch { .. } = block.terminator else {
            continue;
        };
        let branch_pc = block.end - INSTR_BYTES;
        let Some(counts) = profile.branch(branch_pc) else {
            continue;
        };
        if counts.bias().is_none_or(|b| b < threshold) {
            continue; // not asserted: the master evaluates it for real
        }
        let asserted_taken = counts.mostly_taken();
        // The direction the distiller threw away.
        let away_pc = if asserted_taken {
            block.end // fall-through
        } else {
            let branch = program.fetch(branch_pc).expect("branch in text");
            branch.static_target(branch_pc).expect("branch target")
        };
        // Relevance: the discarded path either reaches a PC where a
        // wrong-path squash landed, or defines a hard-to-predict live-in.
        let walk = forward_walk(program, away_pc, config.slice_max_walk);
        let reaches_wrong = walk.iter().any(|pc| wrong.contains(pc));
        let defines_hard = walk.iter().any(|&pc| {
            program
                .fetch(pc)
                .and_then(|i| i.def_reg())
                .is_some_and(|r| hard.contains(&r))
        });
        if !reaches_wrong && !defines_hard {
            continue;
        }
        // Home boundary: the nearest boundary at or below the branch.
        let Some(&home) = boundaries.range(..=branch_pc).next_back() else {
            continue;
        };
        let next_boundary = boundaries
            .range(branch_pc + 1..)
            .next()
            .copied()
            .unwrap_or(program.text_end());
        let Some((mut instrs, inputs)) = condition_slice(program, block.start, branch_pc) else {
            continue;
        };
        // Inputs the slice itself redefines (induction updates, pointer
        // loads) are fed back probe-to-probe by the evaluator; every
        // other input needs a recognizable per-crossing stride.
        let slice_defs: BTreeSet<Reg> = instrs.iter().filter_map(Instr::def_reg).collect();
        let mut strided: Vec<(Reg, i64)> = Vec::with_capacity(inputs.len());
        let mut ok = true;
        for &reg in &inputs {
            if slice_defs.contains(&reg) {
                strided.push((reg, 0));
                continue;
            }
            match region_stride(program, reg, home, next_boundary) {
                Some(s) => strided.push((reg, s)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Window in *loop iterations*: a task covers `crossings_per_task`
        // crossings of the home boundary's phase; scale by how often this
        // branch runs per home-boundary crossing so loops containing
        // several boundary sites are not vetoed early, while
        // temporally-phased loops still get the full task window.
        let iters = profile.exec_count(branch_pc);
        let home_crossings = profile.exec_count(home);
        let window = if home_crossings == 0 || iters == 0 {
            crossings_per_task
        } else {
            let w = (crossings_per_task as f64 * iters as f64 / home_crossings as f64).ceil();
            (w as u64).clamp(1, 4096)
        };
        instrs.push(program.fetch(branch_pc).expect("branch in text"));
        out.entry(home).or_default().push(Slice {
            kind: SliceKind::SpawnGuard { asserted_taken },
            program: Program::from_instrs(instrs),
            inputs: strided,
            window,
            home_pc: branch_pc,
        });

        // Live-in slice: if the discarded path is the only thing keeping a
        // hard register fresh, but the *hot* region recomputes it from
        // loop-invariant inputs, ship the recomputation. Conservative by
        // design — only loop-invariant operands qualify, so the value the
        // master computes at spawn holds for the whole window.
        for &reg in hard.iter() {
            let mut defs = Vec::new();
            let mut pc = home;
            while pc < next_boundary {
                if let Some(i) = program.fetch(pc) {
                    if i.def_reg() == Some(reg) {
                        defs.push((pc, i));
                    }
                }
                pc += INSTR_BYTES;
            }
            let [(def_pc, def)] = defs[..] else { continue };
            if !is_pure_alu(&def) || def.use_regs().into_iter().flatten().any(|u| u == reg) {
                continue;
            }
            let operands: Vec<Reg> = def
                .use_regs()
                .into_iter()
                .flatten()
                .filter(|r| *r != Reg::ZERO)
                .collect();
            let invariant = operands
                .iter()
                .all(|&r| region_stride(program, r, home, next_boundary) == Some(0));
            if !invariant {
                continue;
            }
            let slices = out.entry(home).or_default();
            if slices
                .iter()
                .any(|s| matches!(s.kind, SliceKind::LiveIn { target } if target == reg))
            {
                continue;
            }
            slices.push(Slice {
                kind: SliceKind::LiveIn { target: reg },
                program: Program::from_instrs(vec![def, Instr::Halt]),
                inputs: operands.into_iter().map(|r| (r, 0)).collect(),
                window,
                home_pc: def_pc,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distill, DistillConfig};
    use mssp_analysis::Profile;
    use mssp_isa::asm::assemble;

    // 8000 iterations: the back-edge bias (7999/8000) must clear the
    // default 0.9995 assert threshold for the branch to be asserted at
    // all — guards only attach to asserted branches.
    const LOOP: &str = "
        main: addi s3, zero, 7
              addi s0, zero, 1000
              slli s0, s0, 3
        loop: add  s2, s3, zero
              add  s1, s1, s2
              addi s0, s0, -1
              bnez s0, loop
              halt";

    #[test]
    fn no_feedback_emits_no_slices() {
        let p = assemble(LOOP).unwrap();
        let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        assert_eq!(d.stats().slices_emitted, 0);
        assert!(d.slices().is_empty());
    }

    #[test]
    fn wrong_path_feedback_emits_a_fed_back_guard() {
        let p = assemble(LOOP).unwrap();
        let mut profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        // A previous run squash-sampled a wrong-path event whose
        // architected PC was the loop exit (the halt).
        let exit_pc = p.text_end() - INSTR_BYTES;
        profile.mark_wrong_path(exit_pc);
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        let guard = d
            .slices()
            .values()
            .flatten()
            .find(|s| matches!(s.kind, SliceKind::SpawnGuard { .. }))
            .expect("a spawn guard for the asserted back-edge");
        assert_eq!(
            guard.kind,
            SliceKind::SpawnGuard {
                asserted_taken: true
            }
        );
        // The slice ends in the guarded branch and redefines its own
        // input (the induction decrement), so the input is declared with
        // stride 0 and fed back probe-to-probe.
        let last = guard.program.iter_pcs().last().unwrap().1;
        assert!(last.is_branch());
        assert!(guard.inputs.contains(&(Reg::S0, 0)));
        assert!(guard.window >= 1);
        assert!(guard.program.len() <= MAX_SLICE_LEN);
    }

    #[test]
    fn hard_live_in_feedback_emits_an_invariant_recomputation() {
        let p = assemble(LOOP).unwrap();
        let mut profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        let exit_pc = p.text_end() - INSTR_BYTES;
        profile.mark_wrong_path(exit_pc);
        // s2 kept mismatching at verify; the hot region recomputes it
        // from the loop-invariant s3, so a live-in slice can ship that
        // recomputation to spawn time.
        profile.mark_hard_live_in(Reg::S2);
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        let live_in = d
            .slices()
            .values()
            .flatten()
            .find(|s| matches!(s.kind, SliceKind::LiveIn { .. }))
            .expect("a live-in recomputation slice for s2");
        assert_eq!(live_in.kind, SliceKind::LiveIn { target: Reg::S2 });
        assert_eq!(live_in.inputs, vec![(Reg::S3, 0)]);
        let last = live_in.program.iter_pcs().last().unwrap().1;
        assert!(last.is_halt());
    }

    #[test]
    fn non_strided_free_input_suppresses_the_guard() {
        // The asserted back-edge tests `t3`, which is defined in an
        // *earlier* block (so the condition slice cannot absorb and feed
        // it back) by a non-self-increment (so it has no recognizable
        // per-crossing stride either). The pass must drop the guard
        // rather than emit one that would stride-seed an unreplayable
        // input.
        let p = assemble(
            "main: addi s0, zero, 1000
                   slli s0, s0, 3
             loop: add  t3, s0, s0
                   andi t2, s0, 1
                   beqz t2, skip
                   addi s1, s1, 1
             skip: addi s0, s0, -1
                   bnez t3, loop
                   halt",
        )
        .unwrap();
        let mut profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        profile.mark_wrong_path(p.text_end() - INSTR_BYTES);
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        assert!(
            d.slices()
                .values()
                .flatten()
                .all(|s| !matches!(s.kind, SliceKind::SpawnGuard { .. })),
            "the t3 guard must be dropped, got {:?}",
            d.slices()
        );
    }
}
