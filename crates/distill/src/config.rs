//! Distillation configuration.

/// How aggressively the distiller approximates the original program.
///
/// More aggressive distillation yields a shorter (faster) distilled program
/// but mispredicts live-ins more often — the central performance/accuracy
/// tradeoff the ablation experiment (F8) sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistillLevel {
    /// No approximation: the distilled program is a relocated copy of the
    /// original (calls still rewritten to preserve the original's
    /// register/memory image). The master's predictions are always right;
    /// any residual slowdown/speedup isolates the paradigm's overheads.
    None,
    /// Remove only what the training run proves unused: blocks unreachable
    /// once never-taken branch directions are asserted away, plus writes
    /// that are dead in the resulting code.
    Conservative,
    /// Additionally assert branches whose training bias meets
    /// [`DistillConfig::assert_bias`], accepting occasional mispredictions
    /// in exchange for a much shorter fast path.
    Aggressive,
}

impl DistillLevel {
    /// All levels, in increasing aggressiveness (handy for sweeps).
    #[must_use]
    pub fn all() -> [DistillLevel; 3] {
        [
            DistillLevel::None,
            DistillLevel::Conservative,
            DistillLevel::Aggressive,
        ]
    }
}

impl std::fmt::Display for DistillLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DistillLevel::None => "none",
            DistillLevel::Conservative => "conservative",
            DistillLevel::Aggressive => "aggressive",
        };
        f.write_str(s)
    }
}

/// Full distiller configuration.
///
/// # Examples
///
/// ```
/// use mssp_distill::{DistillConfig, DistillLevel};
///
/// let cfg = DistillConfig {
///     target_task_size: 512,
///     ..DistillConfig::default()
/// };
/// assert_eq!(cfg.level, DistillLevel::Aggressive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Approximation level.
    pub level: DistillLevel,
    /// Minimum training-run bias at which an `Aggressive` distiller
    /// asserts a branch to its dominant direction (`0.5 < assert_bias <=
    /// 1.0`). `Conservative` uses `1.0` regardless.
    pub assert_bias: f64,
    /// Desired average dynamic task length, in original-program
    /// instructions. Boundary selection aims for this.
    pub target_task_size: u64,
    /// Base address at which the distilled text segment is placed; must
    /// not overlap the original text or data.
    pub dist_text_base: u64,
}

impl Default for DistillConfig {
    fn default() -> DistillConfig {
        DistillConfig {
            level: DistillLevel::Aggressive,
            assert_bias: 0.9995,
            target_task_size: 256,
            dist_text_base: 0x0008_0000,
        }
    }
}

impl DistillConfig {
    /// A configuration at the given level with default knobs.
    #[must_use]
    pub fn at_level(level: DistillLevel) -> DistillConfig {
        DistillConfig {
            level,
            ..DistillConfig::default()
        }
    }

    /// The effective assert threshold for this configuration: branches at
    /// or above this bias get asserted.
    ///
    /// Returns `None` when the level never asserts ([`DistillLevel::None`]).
    #[must_use]
    pub fn effective_assert_bias(&self) -> Option<f64> {
        match self.level {
            DistillLevel::None => None,
            DistillLevel::Conservative => Some(1.0),
            DistillLevel::Aggressive => Some(self.assert_bias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bias_by_level() {
        assert_eq!(
            DistillConfig::at_level(DistillLevel::None).effective_assert_bias(),
            None
        );
        assert_eq!(
            DistillConfig::at_level(DistillLevel::Conservative).effective_assert_bias(),
            Some(1.0)
        );
        let agg = DistillConfig::at_level(DistillLevel::Aggressive);
        assert!(agg.effective_assert_bias().unwrap() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DistillLevel::Aggressive.to_string(), "aggressive");
        assert_eq!(DistillLevel::all().len(), 3);
    }
}
