//! Distillation configuration.

/// How aggressively the distiller approximates the original program.
///
/// More aggressive distillation yields a shorter (faster) distilled program
/// but mispredicts live-ins more often — the central performance/accuracy
/// tradeoff the ablation experiment (F8) sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistillLevel {
    /// No approximation: the distilled program is a relocated copy of the
    /// original (calls still rewritten to preserve the original's
    /// register/memory image). The master's predictions are always right;
    /// any residual slowdown/speedup isolates the paradigm's overheads.
    None,
    /// Remove only what the training run proves unused: blocks unreachable
    /// once never-taken branch directions are asserted away, plus writes
    /// that are dead in the resulting code.
    Conservative,
    /// Additionally assert branches whose training bias meets
    /// [`DistillConfig::assert_bias`], accepting occasional mispredictions
    /// in exchange for a much shorter fast path.
    Aggressive,
}

impl DistillLevel {
    /// All levels, in increasing aggressiveness (handy for sweeps).
    #[must_use]
    pub fn all() -> [DistillLevel; 3] {
        [
            DistillLevel::None,
            DistillLevel::Conservative,
            DistillLevel::Aggressive,
        ]
    }
}

impl std::fmt::Display for DistillLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DistillLevel::None => "none",
            DistillLevel::Conservative => "conservative",
            DistillLevel::Aggressive => "aggressive",
        };
        f.write_str(s)
    }
}

/// Per-pass toggles and the fixpoint budget of the distiller's optimizing
/// pass pipeline (see `mssp_distill::passes`).
///
/// The pipeline runs after branch asserting / cold-code elision and before
/// layout, at every level except [`DistillLevel::None`]. Each toggle
/// enables one pass; [`PassConfig::dce_only`] reproduces the pre-pipeline
/// distiller (liveness DCE alone).
///
/// # Examples
///
/// ```
/// use mssp_distill::{DistillConfig, PassConfig};
///
/// let cfg = DistillConfig {
///     passes: PassConfig {
///         jump_thread: false,
///         ..PassConfig::all()
///     },
///     ..DistillConfig::default()
/// };
/// assert!(cfg.passes.const_fold && !cfg.passes.jump_thread);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Constant propagation & folding on the asserted CFG: ALU results
    /// with known operands become `li`s, decided conditional branches
    /// collapse into jumps or fall-throughs, and code left unreachable by
    /// the collapsed branches is pruned.
    pub const_fold: bool,
    /// Copy propagation: uses of a register that provably mirrors another
    /// are rewritten to the source, exposing the move to DCE.
    pub copy_prop: bool,
    /// Liveness dead-code elimination (with the task-boundary live-in
    /// floor).
    pub dce: bool,
    /// Profile-guided jump threading / superblock straightening: hot
    /// paths are relaid so the master falls through its dominant trace.
    pub jump_thread: bool,
    /// Maximum pipeline iterations; within one iteration each enabled
    /// pass runs once, and the pipeline stops early at a fixpoint.
    pub max_iterations: usize,
}

impl PassConfig {
    /// Every pass enabled — the default pipeline.
    #[must_use]
    pub fn all() -> PassConfig {
        PassConfig {
            const_fold: true,
            copy_prop: true,
            dce: true,
            jump_thread: true,
            max_iterations: 4,
        }
    }

    /// No optimizing passes at all (the raw asserted image).
    #[must_use]
    pub fn none() -> PassConfig {
        PassConfig {
            const_fold: false,
            copy_prop: false,
            dce: false,
            jump_thread: false,
            max_iterations: 0,
        }
    }

    /// Liveness DCE alone — the distiller's behaviour before the pass
    /// pipeline existed; the benchmark baseline pipeline improvements are
    /// measured against.
    #[must_use]
    pub fn dce_only() -> PassConfig {
        PassConfig {
            dce: true,
            max_iterations: 1,
            ..PassConfig::none()
        }
    }

    /// Whether any pass is enabled (with a non-zero budget).
    #[must_use]
    pub fn any_enabled(&self) -> bool {
        self.max_iterations > 0
            && (self.const_fold || self.copy_prop || self.dce || self.jump_thread)
    }
}

impl Default for PassConfig {
    fn default() -> PassConfig {
        PassConfig::all()
    }
}

/// A recompilation tier for the online adaptive loop: which slice of the
/// optimizing pass pipeline a re-distillation runs.
///
/// The tiers mirror a JIT's compilation levels: when the controller first
/// detects divergence it wants relief *now*, so the fast tier runs DCE
/// alone (cheap, single iteration); once the live profile has been stable
/// for a while the full pipeline is worth its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// DCE-only pipeline ([`PassConfig::dce_only`]): one iteration of
    /// liveness dead-code elimination over the re-asserted image.
    Fast,
    /// The full pipeline ([`PassConfig::all`]): constant folding, copy
    /// propagation, DCE and jump threading to a fixpoint.
    Full,
}

impl Tier {
    /// Both tiers, in increasing cost.
    #[must_use]
    pub fn all() -> [Tier; 2] {
        [Tier::Fast, Tier::Full]
    }

    /// The pass-pipeline configuration this tier runs.
    #[must_use]
    pub fn pass_config(self) -> PassConfig {
        match self {
            Tier::Fast => PassConfig::dce_only(),
            Tier::Full => PassConfig::all(),
        }
    }

    /// `config` with this tier's pass pipeline substituted in.
    #[must_use]
    pub fn apply(self, config: &DistillConfig) -> DistillConfig {
        DistillConfig {
            passes: self.pass_config(),
            ..*config
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Fast => "fast",
            Tier::Full => "full",
        })
    }
}

impl std::str::FromStr for Tier {
    type Err = String;

    fn from_str(s: &str) -> Result<Tier, String> {
        match s {
            "fast" => Ok(Tier::Fast),
            "full" => Ok(Tier::Full),
            other => Err(format!("unknown tier `{other}` (expected fast|full)")),
        }
    }
}

/// Full distiller configuration.
///
/// # Examples
///
/// ```
/// use mssp_distill::{DistillConfig, DistillLevel};
///
/// let cfg = DistillConfig {
///     target_task_size: 512,
///     ..DistillConfig::default()
/// };
/// assert_eq!(cfg.level, DistillLevel::Aggressive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Approximation level.
    pub level: DistillLevel,
    /// Minimum training-run bias at which an `Aggressive` distiller
    /// asserts a branch to its dominant direction (`0.5 < assert_bias <=
    /// 1.0`). `Conservative` uses `1.0` regardless.
    pub assert_bias: f64,
    /// Desired average dynamic task length, in original-program
    /// instructions. Boundary selection aims for this.
    pub target_task_size: u64,
    /// Base address at which the distilled text segment is placed; must
    /// not overlap the original text or data.
    pub dist_text_base: u64,
    /// The optimizing pass pipeline (ignored at [`DistillLevel::None`],
    /// which emits a verbatim relocated image).
    pub passes: PassConfig,
    /// Pre-computation slice pass: instruction budget for the forward
    /// relevance walk from an asserted-away branch direction toward the
    /// profile's squash-feedback PCs. The pass itself only runs when the
    /// profile carries slice feedback.
    pub slice_max_walk: usize,
}

impl Default for DistillConfig {
    fn default() -> DistillConfig {
        DistillConfig {
            level: DistillLevel::Aggressive,
            assert_bias: 0.9995,
            target_task_size: 256,
            dist_text_base: 0x0008_0000,
            passes: PassConfig::all(),
            slice_max_walk: 32,
        }
    }
}

impl DistillConfig {
    /// A configuration at the given level with default knobs.
    #[must_use]
    pub fn at_level(level: DistillLevel) -> DistillConfig {
        DistillConfig {
            level,
            ..DistillConfig::default()
        }
    }

    /// The effective assert threshold for this configuration: branches at
    /// or above this bias get asserted.
    ///
    /// Returns `None` when the level never asserts ([`DistillLevel::None`]).
    #[must_use]
    pub fn effective_assert_bias(&self) -> Option<f64> {
        match self.level {
            DistillLevel::None => None,
            DistillLevel::Conservative => Some(1.0),
            DistillLevel::Aggressive => Some(self.assert_bias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bias_by_level() {
        assert_eq!(
            DistillConfig::at_level(DistillLevel::None).effective_assert_bias(),
            None
        );
        assert_eq!(
            DistillConfig::at_level(DistillLevel::Conservative).effective_assert_bias(),
            Some(1.0)
        );
        let agg = DistillConfig::at_level(DistillLevel::Aggressive);
        assert!(agg.effective_assert_bias().unwrap() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DistillLevel::Aggressive.to_string(), "aggressive");
        assert_eq!(DistillLevel::all().len(), 3);
    }

    #[test]
    fn tier_roundtrips_and_selects_pipelines() {
        for tier in Tier::all() {
            assert_eq!(tier.to_string().parse::<Tier>(), Ok(tier));
        }
        assert!("mid".parse::<Tier>().is_err());
        assert_eq!(Tier::Fast.pass_config(), PassConfig::dce_only());
        assert_eq!(Tier::Full.pass_config(), PassConfig::all());
        let cfg = Tier::Fast.apply(&DistillConfig::default());
        assert_eq!(cfg.passes, PassConfig::dce_only());
        assert_eq!(cfg.level, DistillLevel::Aggressive);
    }
}
