//! # mssp-distill
//!
//! The MSSP program distiller: produces the approximate, speculatively
//! optimized *distilled program* that the master processor executes, plus
//! the task-boundary set and the PC correspondence map between original
//! and distilled space.
//!
//! Distillation is profile-guided and **purely a performance artifact** —
//! nothing the distiller emits can affect correctness, because slave tasks
//! execute the original program and are verified against architected
//! state. The distiller may therefore be arbitrarily wrong; it should just
//! be *usually right* (the paper's decoupling of performance from
//! correctness).
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::Profile;
//! use mssp_distill::{distill, DistillConfig, DistillLevel};
//!
//! let program = assemble(
//!     "main:  addi s0, zero, 2000
//!      loop:  addi s1, s1, 1
//!             beqz s1, cold        ; never taken in training
//!             addi s0, s0, -1
//!             bnez s0, loop
//!             halt
//!      cold:  addi s1, zero, 0
//!             j loop",
//! ).unwrap();
//!
//! let profile = Profile::collect(&program, Profile::UNBOUNDED).unwrap();
//! let d = distill(&program, &profile, &DistillConfig::at_level(DistillLevel::Aggressive)).unwrap();
//! assert!(d.stats().distilled_static < d.stats().original_static);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod boundary;
mod config;
mod distill;
mod ir;
mod passes;
mod slice;

pub use boundary::select_boundaries;
pub use config::{DistillConfig, DistillLevel, PassConfig, Tier};
pub use distill::{distill, redistill, DistillError, DistillStats, Distilled, DistilledRunError};
pub use passes::PassDelta;
pub use slice::{Slice, SliceKind, MAX_SLICE_LEN};
