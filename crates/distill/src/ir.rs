//! The distiller's relocatable intermediate representation.
//!
//! Between transformation and final layout, the distilled program is a list
//! of [`DBlock`]s whose control-flow targets are *symbolic* (original-
//! program block-start addresses). This lets dead-code elimination delete
//! instructions without invalidating branch offsets; a final layout pass
//! assigns distilled addresses and resolves offsets.

use std::collections::BTreeMap;

use mssp_analysis::RegSet;
use mssp_isa::{Instr, INSTR_BYTES};

/// Registers that must stay predictable at given original block starts:
/// at every task boundary, slaves may read (as live-ins) any register the
/// *original* program has live there, so the master must keep computing
/// them. Maps original block-start address → required-live registers.
pub(crate) type BoundaryLive = BTreeMap<u64, RegSet>;

/// One instruction in the relocatable IR. Every variant encodes to exactly
/// one ISA instruction, so layout is stable under everything except
/// deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DInstr {
    /// A verbatim (non-relative) instruction.
    Copy(Instr),
    /// A conditional branch to the block starting at the given *original*
    /// address; falls through otherwise. The carried instruction's offset
    /// field is ignored until layout.
    Branch(Instr, u64),
    /// An unconditional jump to the block starting at the given *original*
    /// address.
    Jump(u64),
}

impl DInstr {
    pub(crate) fn def_reg(&self) -> Option<mssp_isa::Reg> {
        match self {
            DInstr::Copy(i) => i.def_reg(),
            DInstr::Branch(..) | DInstr::Jump(_) => None,
        }
    }

    fn use_regs(&self) -> [Option<mssp_isa::Reg>; 2] {
        match self {
            DInstr::Copy(i) | DInstr::Branch(i, _) => i.use_regs(),
            DInstr::Jump(_) => [None, None],
        }
    }

    /// Whether DCE may remove this instruction when its write is dead.
    fn removable(&self) -> bool {
        match self {
            DInstr::Copy(i) => i.def_reg().is_some() && !i.is_store() && !i.is_control(),
            _ => false,
        }
    }
}

/// A block of the relocatable IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DBlock {
    /// Original-program address of the block's first instruction; doubles
    /// as the symbolic name control flow targets.
    pub orig_start: u64,
    pub instrs: Vec<DInstr>,
}

/// How a block's execution can leave it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockExit {
    /// Falls into the next emitted block (possibly also branching).
    Open { branch_target: Option<u64> },
    /// Always jumps to a known block.
    Always(u64),
    /// Ends at an indirect jump: successors unknown, every register live.
    Barrier,
    /// Ends at `halt`: *nothing* is live. The master's post-halt state is
    /// never consumed (architected state is produced by slaves executing
    /// the original program), so keeping values alive to the distilled
    /// program's end would only inflate the fast path. Removing a write on
    /// this basis is an approximation — if a slave does read the register
    /// on some cold path, verification squashes — which is exactly the
    /// performance-not-correctness contract of distillation.
    End,
}

pub(crate) fn exit_of(block: &DBlock) -> BlockExit {
    match block.instrs.last() {
        Some(DInstr::Jump(t)) => BlockExit::Always(*t),
        Some(DInstr::Branch(_, t)) => BlockExit::Open {
            branch_target: Some(*t),
        },
        Some(DInstr::Copy(i)) if i.is_halt() => BlockExit::End,
        Some(DInstr::Copy(i)) if i.is_indirect_jump() => BlockExit::Barrier,
        _ => BlockExit::Open {
            branch_target: None,
        },
    }
}

/// Dead-code elimination over the IR, to a fixpoint.
///
/// Returns the number of instructions removed. Liveness is the classic
/// backward may-analysis; `halt` and indirect jumps keep all registers
/// live, and a fall-through off the end of the IR is treated as a barrier
/// too (it only happens for the final block).
pub(crate) fn eliminate_dead_code(blocks: &mut [DBlock], boundary_live: &BoundaryLive) -> usize {
    let mut removed = 0;
    loop {
        let n = dce_pass(blocks, boundary_live);
        if n == 0 {
            return removed;
        }
        removed += n;
    }
}

fn dce_pass(blocks: &mut [DBlock], boundary_live: &BoundaryLive) -> usize {
    let index: BTreeMap<u64, usize> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.orig_start, i))
        .collect();

    // Block-level live-in fixpoint. Boundary blocks additionally require
    // the original program's live set at their start (task live-ins).
    // Branches may appear mid-block after jump threading, so every branch
    // unions its target's live-in, not just the terminator's.
    let n = blocks.len();
    let mut live_in = vec![RegSet::empty(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let out = block_exit_live(blocks, i, &index, &live_in);
            let mut live = out;
            for di in blocks[i].instrs.iter().rev() {
                if let DInstr::Branch(_, t) = di {
                    live = live.union(target_live_in(*t, &index, &live_in));
                }
                live = transfer(di, live);
            }
            if let Some(&req) = boundary_live.get(&blocks[i].orig_start) {
                live = live.union(req);
            }
            if live != live_in[i] {
                live_in[i] = live;
                changed = true;
            }
        }
    }

    // Removal sweep.
    let mut removed = 0;
    for i in 0..n {
        let mut live = block_exit_live(blocks, i, &index, &live_in);
        let mut keep = vec![true; blocks[i].instrs.len()];
        for (j, di) in blocks[i].instrs.iter().enumerate().rev() {
            if let DInstr::Branch(_, t) = di {
                live = live.union(target_live_in(*t, &index, &live_in));
            }
            if di.removable() {
                if let Some(rd) = di.def_reg() {
                    if !live.contains(rd) {
                        keep[j] = false;
                        removed += 1;
                        continue; // dead instruction: no transfer
                    }
                }
            }
            live = transfer(di, live);
        }
        let mut it = keep.into_iter();
        blocks[i].instrs.retain(|_| it.next().unwrap());
    }
    removed
}

fn target_live_in(target: u64, index: &BTreeMap<u64, usize>, live_in: &[RegSet]) -> RegSet {
    index
        .get(&target)
        .map(|&j| live_in[j])
        .unwrap_or_else(RegSet::all)
}

fn block_exit_live(
    blocks: &[DBlock],
    i: usize,
    index: &BTreeMap<u64, usize>,
    live_in: &[RegSet],
) -> RegSet {
    let lookup = |t: u64| {
        index
            .get(&t)
            .map(|&j| live_in[j])
            .unwrap_or_else(RegSet::all)
    };
    match exit_of(&blocks[i]) {
        BlockExit::Barrier => RegSet::all(),
        BlockExit::End => RegSet::empty(),
        BlockExit::Always(t) => lookup(t),
        BlockExit::Open { branch_target } => {
            let fall = if i + 1 < blocks.len() {
                live_in[i + 1]
            } else {
                RegSet::all()
            };
            match branch_target {
                Some(t) => fall.union(lookup(t)),
                None => fall,
            }
        }
    }
}

/// Strongly-live transfer: a *pure* definition (removable instruction)
/// propagates its uses only when its own result is live. This kills
/// self-sustaining dead chains — `addi s8, s8, 8`-style instrumentation
/// counters whose only consumer is themselves — which classic may-liveness
/// keeps alive forever.
fn transfer(di: &DInstr, mut live: RegSet) -> RegSet {
    if di.removable() {
        let rd = di.def_reg().expect("removable implies a definition");
        if !live.contains(rd) {
            // Dead pure definition: contributes nothing.
            return live;
        }
        live.remove(rd);
    } else if let Some(rd) = di.def_reg() {
        live.remove(rd);
    }
    for r in di.use_regs().into_iter().flatten() {
        if !r.is_zero() {
            live.insert(r);
        }
    }
    live
}

/// Final layout: assigns distilled addresses and resolves symbolic targets.
///
/// Returns the instruction list plus the `original block start → distilled
/// address` map. Fails if a resolved displacement overflows the 16-bit
/// offset field.
pub(crate) fn layout(
    blocks: &[DBlock],
    dist_base: u64,
) -> Result<(Vec<Instr>, BTreeMap<u64, u64>), LayoutError> {
    // Pass 1: addresses.
    let mut addr_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut cursor = dist_base;
    for b in blocks {
        addr_of.insert(b.orig_start, cursor);
        cursor += b.instrs.len() as u64 * INSTR_BYTES;
    }
    // Pass 2: emission.
    let mut out = Vec::new();
    let mut pc = dist_base;
    for b in blocks {
        for di in &b.instrs {
            let instr = match di {
                DInstr::Copy(i) => *i,
                DInstr::Jump(t) => {
                    let off = rel_offset(pc, addr_of[t]).ok_or(LayoutError {
                        orig_block: b.orig_start,
                    })?;
                    Instr::Jal(mssp_isa::Reg::ZERO, off)
                }
                DInstr::Branch(i, t) => {
                    let off = rel_offset(pc, addr_of[t]).ok_or(LayoutError {
                        orig_block: b.orig_start,
                    })?;
                    i.with_offset(off).expect("branch carries an offset")
                }
            };
            out.push(instr);
            pc += INSTR_BYTES;
        }
    }
    Ok((out, addr_of))
}

fn rel_offset(pc: u64, target: u64) -> Option<i16> {
    let delta = target.wrapping_sub(pc.wrapping_add(INSTR_BYTES)) as i64;
    i16::try_from(delta).ok()
}

/// A branch displacement overflowed during layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LayoutError {
    pub orig_block: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::Reg;

    fn block(start: u64, instrs: Vec<DInstr>) -> DBlock {
        DBlock {
            orig_start: start,
            instrs,
        }
    }

    #[test]
    fn dce_removes_overwritten_and_terminal_writes() {
        let mut blocks = vec![block(
            0x100,
            vec![
                DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 1)), // overwritten
                DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 2)), // dead at halt
                DInstr::Copy(Instr::Halt),
            ],
        )];
        // Nothing is live at the distilled program's halt (the master's
        // final state is never consumed), so both writes go.
        assert_eq!(eliminate_dead_code(&mut blocks, &BTreeMap::new()), 2);
        assert_eq!(blocks[0].instrs.len(), 1);
    }

    #[test]
    fn dce_keeps_branch_inputs() {
        let mut blocks = vec![
            block(
                0x100,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 1)),
                    DInstr::Branch(Instr::Bne(Reg::A0, Reg::ZERO, 0), 0x100),
                ],
            ),
            block(0x108, vec![DInstr::Copy(Instr::Halt)]),
        ];
        assert_eq!(eliminate_dead_code(&mut blocks, &BTreeMap::new()), 0);
        assert_eq!(blocks[0].instrs.len(), 2);
    }

    #[test]
    fn dce_cascades_through_chains() {
        // The store keeps a1's final value live; the a0-chain feeding the
        // overwritten a1 is removed transitively.
        let mut blocks = vec![block(
            0x100,
            vec![
                DInstr::Copy(Instr::Addi(Reg::A0, Reg::ZERO, 1)), // feeds dead a1
                DInstr::Copy(Instr::Addi(Reg::A1, Reg::A0, 1)),   // overwritten
                DInstr::Copy(Instr::Addi(Reg::A1, Reg::ZERO, 9)),
                DInstr::Copy(Instr::Sd(Reg::A1, Reg::SP, 0)),
                DInstr::Copy(Instr::Halt),
            ],
        )];
        assert_eq!(eliminate_dead_code(&mut blocks, &BTreeMap::new()), 2);
        assert_eq!(blocks[0].instrs.len(), 3);
    }

    #[test]
    fn dce_kills_self_sustaining_counters() {
        // `addi a0, a0, 1` reads only itself; nothing effectful consumes
        // a0, so the whole chain is faint and must go — even across a
        // loop back edge.
        let head = 0x100;
        let mut blocks = vec![
            block(
                head,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A0, Reg::A0, 1)), // faint
                    DInstr::Copy(Instr::Addi(Reg::A1, Reg::A1, -1)),
                    DInstr::Branch(Instr::Bne(Reg::A1, Reg::ZERO, 0), head),
                ],
            ),
            block(
                0x200,
                vec![
                    DInstr::Copy(Instr::Sd(Reg::A1, Reg::SP, 0)),
                    DInstr::Copy(Instr::Halt),
                ],
            ),
        ];
        assert_eq!(eliminate_dead_code(&mut blocks, &BTreeMap::new()), 1);
        assert_eq!(blocks[0].instrs.len(), 2);
    }

    #[test]
    fn dce_respects_loop_liveness() {
        // a0 incremented in a loop and consumed by the loop branch.
        let loop_head = 0x200;
        let mut blocks = vec![
            block(
                loop_head,
                vec![
                    DInstr::Copy(Instr::Addi(Reg::A0, Reg::A0, -1)),
                    DInstr::Branch(Instr::Bne(Reg::A0, Reg::ZERO, 0), loop_head),
                ],
            ),
            block(0x300, vec![DInstr::Copy(Instr::Halt)]),
        ];
        assert_eq!(eliminate_dead_code(&mut blocks, &BTreeMap::new()), 0);
    }

    #[test]
    fn layout_resolves_forward_and_backward() {
        let blocks = vec![
            block(
                0x100,
                vec![
                    DInstr::Copy(Instr::nop()),
                    DInstr::Branch(Instr::Beq(Reg::A0, Reg::ZERO, 0), 0x300),
                ],
            ),
            block(0x200, vec![DInstr::Jump(0x100)]),
            block(0x300, vec![DInstr::Copy(Instr::Halt)]),
        ];
        let (instrs, map) = layout(&blocks, 0x8000).unwrap();
        assert_eq!(instrs.len(), 4);
        assert_eq!(map[&0x100], 0x8000);
        assert_eq!(map[&0x200], 0x8008);
        assert_eq!(map[&0x300], 0x800C);
        // The branch at 0x8004 targets 0x800C: offset 4.
        assert_eq!(instrs[1], Instr::Beq(Reg::A0, Reg::ZERO, 4));
        // The jump at 0x8008 targets 0x8000: offset -12.
        assert_eq!(instrs[2], Instr::Jal(Reg::ZERO, -12));
    }

    #[test]
    fn empty_block_maps_to_following_address() {
        let blocks = vec![
            block(0x100, vec![]),
            block(0x104, vec![DInstr::Copy(Instr::Halt)]),
        ];
        let (instrs, map) = layout(&blocks, 0x8000).unwrap();
        assert_eq!(instrs.len(), 1);
        assert_eq!(map[&0x100], 0x8000);
        assert_eq!(map[&0x104], 0x8000);
    }
}
