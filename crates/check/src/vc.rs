//! Vector clocks: the partial order underlying both the happens-before
//! race detector and the stale-value eligibility floor in the memory model.
//!
//! Thread ids are small dense indices assigned at spawn, so a `Vec<u32>`
//! (grown on demand) is the whole representation.

/// A vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// The component for `tid` (0 if never touched).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Set the component for `tid`.
    pub fn set(&mut self, tid: usize, v: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Increment `tid`'s own component and return the new value.
    pub fn bump(&mut self, tid: usize) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum: `self ← self ⊔ other`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Does this clock know about event `(tid, stamp)`?  I.e. does
    /// `stamp ≤ self[tid]` — the event happens-before the clock's owner.
    pub fn dominates(&self, tid: usize, stamp: u32) -> bool {
        self.get(tid) >= stamp
    }

    /// Iterate over `(tid, component)` pairs with non-zero components.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.0.iter().copied().enumerate().filter(|&(_, v)| v != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_dominates() {
        let mut a = VClock::default();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::default();
        b.bump(3);
        assert!(!a.dominates(3, 1));
        a.join(&b);
        assert!(a.dominates(3, 1));
        assert!(a.dominates(0, 2));
        assert!(!a.dominates(0, 3));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 2), (3, 1)]);
    }
}
