//! Schedules as data: every nondeterministic choice the checker makes is
//! recorded as a [`Decision`], so a failing execution is a value — it can
//! be printed, parsed back, and replayed exactly.

use std::fmt;

/// What kind of choice a decision point was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// Which thread runs the next operation. `current_runnable` records
    /// whether option 0 was "keep running the current thread", in which
    /// case any other choice costs one preemption against the bound.
    Schedule {
        /// True when the previously running thread was itself schedulable.
        current_runnable: bool,
    },
    /// Which store a (relaxed) atomic load observes. Option 0 is the
    /// newest store; any other choice is a stale read and costs one
    /// against the stale-read bound.
    Value,
}

/// One recorded choice: `chosen` out of `options` (only choice points with
/// more than one option are recorded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Index of the selected option.
    pub chosen: u32,
    /// How many options existed at this point.
    pub options: u32,
    /// What was being decided.
    pub kind: DecisionKind,
}

/// A complete schedule: the decision sequence of one execution.
///
/// The `Display` form is a single self-describing token — e.g.
/// `mssp-check-v1:S1/2,s0/3,v2/3` — where `S` is a schedule decision whose
/// non-zero choices are preemptions, `s` a schedule decision where the
/// current thread was not runnable (a forced or free switch), and `v` a
/// value (stale-read) decision. [`Trace::parse`] inverts it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The recorded decisions, in execution order.
    pub decisions: Vec<Decision>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mssp-check-v1:")?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let tag = match d.kind {
                DecisionKind::Schedule {
                    current_runnable: true,
                } => 'S',
                DecisionKind::Schedule {
                    current_runnable: false,
                } => 's',
                DecisionKind::Value => 'v',
            };
            write!(f, "{tag}{}/{}", d.chosen, d.options)?;
        }
        Ok(())
    }
}

impl Trace {
    /// Parse a trace printed by `Display`. Returns `None` on malformed
    /// input (wrong version tag, bad token shape, chosen ≥ options).
    pub fn parse(s: &str) -> Option<Trace> {
        let body = s.trim().strip_prefix("mssp-check-v1:")?;
        let mut decisions = Vec::new();
        if body.is_empty() {
            return Some(Trace { decisions });
        }
        for tok in body.split(',') {
            let mut chars = tok.chars();
            let kind = match chars.next()? {
                'S' => DecisionKind::Schedule {
                    current_runnable: true,
                },
                's' => DecisionKind::Schedule {
                    current_runnable: false,
                },
                'v' => DecisionKind::Value,
                _ => return None,
            };
            let rest = chars.as_str();
            let (c, o) = rest.split_once('/')?;
            let chosen: u32 = c.parse().ok()?;
            let options: u32 = o.parse().ok()?;
            if chosen >= options || options < 2 {
                return None;
            }
            decisions.push(Decision {
                chosen,
                options,
                kind,
            });
        }
        Some(Trace { decisions })
    }
}

/// Why an execution failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Unsynchronized conflicting accesses to a non-atomic location.
    DataRace,
    /// No thread can run, but some are blocked (parked / lock / condvar /
    /// join) — a lost wakeup or lock cycle.
    Deadlock,
    /// A tracked allocation was never dropped by the end of the execution.
    Leak,
    /// A tracked allocation was dropped twice (e.g. a ring slot recycled
    /// while still owned).
    DoubleFree,
    /// A model thread panicked (assertion failure inside the harness).
    Panic,
    /// Replay diverged from the recorded schedule — the harness is
    /// nondeterministic outside the checker's control (time, I/O, maps
    /// with random iteration order).
    NondeterministicReplay,
    /// The runtime watchdog fired: a model thread stopped reaching
    /// schedule points (a livelock outside shim operations).
    Stalled,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::DataRace => "data race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Leak => "leak",
            FailureKind::DoubleFree => "double free",
            FailureKind::Panic => "panic",
            FailureKind::NondeterministicReplay => "nondeterministic replay",
            FailureKind::Stalled => "stalled",
        };
        f.write_str(s)
    }
}

/// A counterexample: the failure, the exact schedule that produced it,
/// and the tail of the per-operation log for human consumption.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable detail (threads, locations, values involved).
    pub message: String,
    /// The schedule to feed back into [`crate::replay`].
    pub trace: Trace,
    /// The last operations executed before the failure, oldest first
    /// (bounded; for reading, not replaying).
    pub recent_ops: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(f, "  replayable trace: {}", self.trace)?;
        writeln!(f, "  last {} operations:", self.recent_ops.len())?;
        for op in &self.recent_ops {
            writeln!(f, "    {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_display_and_parse() {
        let t = Trace {
            decisions: vec![
                Decision {
                    chosen: 1,
                    options: 2,
                    kind: DecisionKind::Schedule {
                        current_runnable: true,
                    },
                },
                Decision {
                    chosen: 0,
                    options: 3,
                    kind: DecisionKind::Schedule {
                        current_runnable: false,
                    },
                },
                Decision {
                    chosen: 2,
                    options: 3,
                    kind: DecisionKind::Value,
                },
            ],
        };
        let s = t.to_string();
        assert_eq!(s, "mssp-check-v1:S1/2,s0/3,v2/3");
        assert_eq!(Trace::parse(&s), Some(t));
        assert_eq!(Trace::parse("mssp-check-v1:"), Some(Trace::default()));
        assert_eq!(Trace::parse("garbage"), None);
        assert_eq!(Trace::parse("mssp-check-v1:x1/2"), None);
        assert_eq!(Trace::parse("mssp-check-v1:S2/2"), None);
    }
}
