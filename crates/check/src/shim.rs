//! Drop-in replacements for the std concurrency primitives the mssp hot
//! path uses. Outside a model execution every operation falls straight
//! through to the real std implementation; inside one, it becomes a
//! schedule point in the checker.
//!
//! The production build of `mssp-core` never sees these types at all — its
//! `sync` seam re-exports std directly when the `model-check` feature is
//! off. When the feature is on, these shims keep *both* behaviors live:
//! the dispatch is per-thread at runtime (is this thread part of a model
//! execution?), so ordinary tests in the same process still run on real
//! std concurrency.
//!
//! Atomics write through to their real std storage on every model store,
//! keeping the std value at modification-order-latest. That makes
//! `get_mut`/`into_inner`/drop paths correct in both worlds, and lets an
//! aborting execution unwind its destructors against consistent real state.

use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;

use crate::exec::{current_ctx, with_op, CtxHandle, Exec, OpCtx};

/// Memory orderings are the real std orderings; the model interprets them.
pub use std::sync::atomic::Ordering;

/// Cached model-location id for one shim object: `gen << 32 | (loc + 1)`,
/// 0 when unregistered. Objects are registered lazily on first touch inside
/// an execution; the generation tag invalidates ids from prior executions.
#[derive(Debug)]
pub(crate) struct ModelRef {
    packed: std::sync::atomic::AtomicU64,
}

impl ModelRef {
    pub(crate) const fn new() -> ModelRef {
        ModelRef {
            packed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub(crate) fn resolve(
        &self,
        op: &mut OpCtx<'_>,
        register: impl FnOnce(&mut Exec, usize) -> u32,
    ) -> u32 {
        let gen = op.ex().gen;
        let packed = self.packed.load(StdOrdering::Relaxed);
        if packed != 0 && (packed >> 32) as u32 == gen {
            return packed as u32 - 1;
        }
        let tid = op.tid;
        let loc = register(op.ex(), tid);
        self.packed.store(
            ((gen as u64) << 32) | (loc as u64 + 1),
            StdOrdering::Relaxed,
        );
        loc
    }
}

/// Atomics, fences, and orderings.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    /// Primitive values an atomic shim can carry (widened to `u64` for the
    /// model's store history).
    pub trait Prim: Copy {
        #[doc(hidden)]
        fn to_u64(self) -> u64;
        #[doc(hidden)]
        fn from_u64(v: u64) -> Self;
    }

    impl Prim for usize {
        fn to_u64(self) -> u64 {
            self as u64
        }
        fn from_u64(v: u64) -> Self {
            v as usize
        }
    }

    impl Prim for u64 {
        fn to_u64(self) -> u64 {
            self
        }
        fn from_u64(v: u64) -> Self {
            v
        }
    }

    impl Prim for bool {
        fn to_u64(self) -> u64 {
            self as u64
        }
        fn from_u64(v: u64) -> Self {
            v != 0
        }
    }

    fn ord_acquires(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    macro_rules! shim_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$meta])*
            pub struct $name {
                std: $std,
                model: ModelRef,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self {
                        std: <$std>::new(v),
                        model: ModelRef::new(),
                    }
                }

                fn loc(&self, op: &mut OpCtx<'_>) -> u32 {
                    let init = Prim::to_u64(self.std.load(StdOrdering::Relaxed));
                    self.model.resolve(op, |ex, tid| ex.register_atomic(tid, init))
                }

                /// Atomic load; inside the model the observed store is a
                /// recorded (possibly stale) choice.
                pub fn load(&self, order: Ordering) -> $prim {
                    match with_op(concat!(stringify!($name), "::load"), |op| {
                        let loc = self.loc(op);
                        let tid = op.tid;
                        <$prim as Prim>::from_u64(op.ex().atomic_load(tid, loc, order))
                    }) {
                        Some(v) => v,
                        None => self.std.load(order),
                    }
                }

                /// Atomic store; writes through to the real storage so
                /// `get_mut`/drop paths stay coherent.
                pub fn store(&self, val: $prim, order: Ordering) {
                    match with_op(concat!(stringify!($name), "::store"), |op| {
                        let loc = self.loc(op);
                        let tid = op.tid;
                        op.ex().atomic_store(tid, loc, Prim::to_u64(val), order);
                        self.std.store(val, StdOrdering::Relaxed);
                    }) {
                        Some(()) => {}
                        None => self.std.store(val, order),
                    }
                }

                /// Compare-and-exchange. The model reads the newest store
                /// (RMWs read modification-order-latest); spurious weak
                /// failures are not modeled.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match with_op(concat!(stringify!($name), "::compare_exchange"), |op| {
                        let loc = self.loc(op);
                        let tid = op.tid;
                        let cur = Prim::to_u64(current);
                        let old = op.ex().atomic_rmw(
                            tid,
                            loc,
                            success,
                            ord_acquires(failure),
                            |old| if old == cur { Some(Prim::to_u64(new)) } else { None },
                        );
                        if old == cur {
                            self.std.store(new, StdOrdering::Relaxed);
                            Ok(current)
                        } else {
                            Err(<$prim as Prim>::from_u64(old))
                        }
                    }) {
                        Some(r) => r,
                        None => self.std.compare_exchange(current, new, success, failure),
                    }
                }

                /// Weak CAS; modeled identically to the strong form (the
                /// rings already loop around it).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Exclusive access to the value (no model bookkeeping: the
                /// `&mut` proves no concurrent accessor exists, and write-
                /// through keeps the real value current).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.std.get_mut()
                }

                /// Consume the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.std.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.std.load(StdOrdering::Relaxed))
                        .finish()
                }
            }
        };
    }

    shim_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    shim_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    shim_atomic!(
        /// Model-aware `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );

    macro_rules! shim_fetch_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    match with_op(concat!(stringify!($name), "::fetch_add"), |op| {
                        let loc = self.loc(op);
                        let tid = op.tid;
                        let old = op.ex().atomic_rmw(tid, loc, order, false, |old| {
                            Some(old.wrapping_add(Prim::to_u64(val)))
                        });
                        self.std.store(
                            <$prim as Prim>::from_u64(old.wrapping_add(Prim::to_u64(val))),
                            StdOrdering::Relaxed,
                        );
                        <$prim as Prim>::from_u64(old)
                    }) {
                        Some(v) => v,
                        None => self.std.fetch_add(val, order),
                    }
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    match with_op(concat!(stringify!($name), "::fetch_sub"), |op| {
                        let loc = self.loc(op);
                        let tid = op.tid;
                        let old = op.ex().atomic_rmw(tid, loc, order, false, |old| {
                            Some(old.wrapping_sub(Prim::to_u64(val)))
                        });
                        self.std.store(
                            <$prim as Prim>::from_u64(old.wrapping_sub(Prim::to_u64(val))),
                            StdOrdering::Relaxed,
                        );
                        <$prim as Prim>::from_u64(old)
                    }) {
                        Some(v) => v,
                        None => self.std.fetch_sub(val, order),
                    }
                }
            }
        };
    }

    shim_fetch_ops!(AtomicUsize, usize);
    shim_fetch_ops!(AtomicU64, u64);

    /// Memory fence; a schedule point and clock operation in the model.
    pub fn fence(order: Ordering) {
        match with_op("fence", |op| {
            let tid = op.tid;
            op.ex().fence(tid, order);
        }) {
            Some(()) => {}
            None => std::sync::atomic::fence(order),
        }
    }
}

/// Interior-mutable cells with checked (loom-style) access.
pub mod cell {
    use super::*;

    /// An `UnsafeCell` whose accesses are race-checked inside the model.
    /// Access goes through `with`/`with_mut` so every read and write is
    /// visible to the vector-clock detector.
    #[derive(Debug)]
    pub struct UnsafeCell<T: ?Sized> {
        model: ModelRef,
        value: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> UnsafeCell<T> {
            UnsafeCell {
                model: ModelRef::new(),
                value: std::cell::UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> UnsafeCell<T> {
        fn track(&self, write: bool) {
            with_op(
                if write {
                    "UnsafeCell::with_mut"
                } else {
                    "UnsafeCell::with"
                },
                |op| {
                    let loc = self
                        .model
                        .resolve(op, |ex, _| ex.register_cell("UnsafeCell"));
                    let tid = op.tid;
                    op.ex().cell_access(tid, loc, write);
                },
            );
        }

        /// Shared (read) access to the raw pointer.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            self.track(false);
            f(self.value.get())
        }

        /// Exclusive (write) access to the raw pointer.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            self.track(true);
            f(self.value.get())
        }

        /// Untracked exclusive access: the `&mut self` borrow already
        /// proves no concurrent accessor exists (used by drop paths, where
        /// real `Arc` teardown provides the synchronization the model
        /// cannot see).
        pub fn get_mut(&mut self) -> &mut T {
            unsafe { &mut *self.value.get() }
        }
    }
}

/// Threads: spawn/join, park/unpark, yield.
pub mod thread {
    use super::*;

    #[derive(Clone)]
    enum ThreadRepr {
        Std(std::thread::Thread),
        // The tid alone identifies the target: model `Thread` handles never
        // outlive their execution, and unpark resolves through the caller's
        // own context.
        Model { tid: usize },
    }

    /// A handle to a thread, usable for `unpark` (mirrors
    /// `std::thread::Thread`).
    #[derive(Clone)]
    pub struct Thread {
        repr: ThreadRepr,
    }

    impl std::fmt::Debug for Thread {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.repr {
                ThreadRepr::Std(t) => f.debug_tuple("Thread").field(&t.id()).finish(),
                ThreadRepr::Model { tid, .. } => f
                    .debug_tuple("Thread")
                    .field(&format_args!("model-t{tid}"))
                    .finish(),
            }
        }
    }

    /// The current thread's handle.
    pub fn current() -> Thread {
        match current_ctx() {
            Some(CtxHandle { tid, .. }) => Thread {
                repr: ThreadRepr::Model { tid },
            },
            None => Thread {
                repr: ThreadRepr::Std(std::thread::current()),
            },
        }
    }

    impl Thread {
        /// Make the target's park token available and wake it if parked.
        pub fn unpark(&self) {
            match &self.repr {
                ThreadRepr::Std(t) => t.unpark(),
                ThreadRepr::Model { tid, .. } => {
                    let target = *tid;
                    // `None` only while unwinding from an abort, when the
                    // execution is already being torn down.
                    let _ = with_op("Thread::unpark", |op| {
                        let me = op.tid;
                        op.ex().unpark(me, target);
                    });
                }
            }
        }
    }

    /// Park the current thread until its token is available.
    pub fn park() {
        match with_op("thread::park", |op| op.park()) {
            Some(()) => {}
            None => std::thread::park(),
        }
    }

    /// Declare "no progress possible"; the model deprioritizes this thread
    /// until some other runnable thread has been scheduled, keeping spin
    /// loops finite under DFS.
    pub fn yield_now() {
        match with_op("thread::yield_now", |op| {
            let tid = op.tid;
            op.ex().set_yielded(tid);
        }) {
            Some(()) => {}
            None => std::thread::yield_now(),
        }
    }

    enum HandleRepr<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            slot: Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Owned permission to join a thread (mirrors
    /// `std::thread::JoinHandle`).
    pub struct JoinHandle<T> {
        repr: HandleRepr<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result. Panics from
        /// the thread are propagated as `Err`, like std.
        pub fn join(self) -> std::thread::Result<T> {
            match self.repr {
                HandleRepr::Std(h) => h.join(),
                HandleRepr::Model { tid, slot } => {
                    match with_op("thread::join", |op| op.join_thread(tid)) {
                        Some(()) => slot
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                            .expect("joined model thread left no result"),
                        None => Err(Box::new(
                            "thread::join outside a live model execution (abort unwind)",
                        )),
                    }
                }
            }
        }
    }

    /// Spawn a thread. Inside the model the child becomes a model thread:
    /// it only runs when granted, and its operations are schedule points.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(ctx) = current_ctx() else {
            return JoinHandle {
                repr: HandleRepr::Std(std::thread::spawn(f)),
            };
        };
        let slot: Arc<std::sync::Mutex<Option<std::thread::Result<T>>>> =
            Arc::new(std::sync::Mutex::new(None));
        let exec = Arc::clone(&ctx.exec);
        let slot2 = Arc::clone(&slot);
        let child = with_op("thread::spawn", move |op| {
            let parent = op.tid;
            let child = op.ex().register_thread(parent);
            let handle = std::thread::Builder::new()
                .name(format!("mssp-check-t{child}"))
                .spawn(move || {
                    crate::exec::run_model_thread(
                        exec,
                        child,
                        std::panic::AssertUnwindSafe(f),
                        &slot2,
                    )
                })
                .expect("failed to spawn model OS thread");
            op.ex().os_handles.push(handle);
            child
        })
        .expect("thread::spawn on a model thread during abort unwind");
        JoinHandle {
            repr: HandleRepr::Model { tid: child, slot },
        }
    }
}

/// A mutex that the model checks for deadlocks and uses as a
/// happens-before edge (mirrors `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    model: ModelRef,
    std: std::sync::Mutex<()>,
    value: std::cell::UnsafeCell<T>,
}

// Same bounds as std::sync::Mutex: the lock (model or std) provides the
// exclusion that makes sharing the UnsafeCell sound.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; `inner` is `Some` on the std path.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, ()>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            model: ModelRef::new(),
            std: std::sync::Mutex::new(()),
            value: std::cell::UnsafeCell::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn loc(&self, op: &mut OpCtx<'_>) -> u32 {
        self.model.resolve(op, |ex, _| ex.register_mutex())
    }

    /// Acquire the mutex (blocking; a model schedule point).
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        match with_op("Mutex::lock", |op| {
            let loc = self.loc(op);
            op.mutex_lock(loc);
        }) {
            Some(()) => Ok(MutexGuard {
                lock: self,
                inner: None,
            }),
            None => match self.std.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                }),
                Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                })),
            },
        }
    }

    /// Exclusive access without locking (borrow-checked).
    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        Ok(unsafe { &mut *self.value.get() })
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> std::sync::LockResult<T>
    where
        T: Sized,
    {
        Ok(self.value.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_none() {
            // Model-held: release in the model. `None` from with_op means
            // we are unwinding from an abort; the execution is over.
            let _ = with_op("Mutex::unlock", |op| {
                let loc = self.lock.loc(op);
                let tid = op.tid;
                op.ex().mutex_unlock(tid, loc);
            });
        }
    }
}

/// A condition variable paired with [`Mutex`] (mirrors
/// `std::sync::Condvar`; no spurious wakeups in the model).
pub struct Condvar {
    model: ModelRef,
    std: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condvar.
    pub const fn new() -> Condvar {
        Condvar {
            model: ModelRef::new(),
            std: std::sync::Condvar::new(),
        }
    }

    fn loc(&self, op: &mut OpCtx<'_>) -> u32 {
        self.model.resolve(op, |ex, _| ex.register_cv())
    }

    /// Release the guard's mutex, wait for a notification, re-acquire.
    pub fn wait<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if guard.inner.is_none() {
            // Model path: we release/re-acquire through the model, so the
            // guard's Drop (model unlock) must not run.
            std::mem::forget(guard);
            let _ = with_op("Condvar::wait", |op| {
                let cv = self.loc(op);
                let mutex = lock.loc(op);
                op.cv_wait(cv, mutex);
            });
            Ok(MutexGuard { lock, inner: None })
        } else {
            let mut guard = guard;
            let inner = guard.inner.take().expect("std guard present");
            // Drop with `inner == None` would model-unlock; this guard was
            // std-held, so skip Drop entirely.
            std::mem::forget(guard);
            match self.std.wait(inner) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                }),
                Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        match with_op("Condvar::notify_one", |op| {
            let loc = self.loc(op);
            op.ex().cv_notify(loc, false);
        }) {
            Some(()) => {}
            None => self.std.notify_one(),
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        match with_op("Condvar::notify_all", |op| {
            let loc = self.loc(op);
            op.ex().cv_notify(loc, true);
        }) {
            Some(()) => {}
            None => self.std.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
