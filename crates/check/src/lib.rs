//! # mssp-check
//!
//! A std-only, loom-style deterministic concurrency model checker for the
//! mssp lock-free hot path (the SPSC/MPSC rings, the doorbell, and the
//! Condvar channel in `mssp-core`).
//!
//! The production code is ported onto a thin `sync` seam; with
//! `mssp-core`'s `model-check` feature enabled the seam resolves to the
//! [`shim`] types in this crate, and a harness closure passed to [`check`]
//! runs under a **baton-passing scheduler**: real OS threads, but exactly
//! one runs at a time, every shim operation is a schedule point, and every
//! scheduling (and stale-value) choice is recorded. The explorer then
//! enumerates all schedules within a preemption/stale-read bound
//! (CHESS-style iterative DFS), or samples randomly for larger harnesses.
//!
//! What it detects:
//!
//! * **assertion failures** under any explored interleaving (FIFO order,
//!   no-loss, no-duplication — whatever the harness asserts),
//! * **data races** on non-atomic state, via FastTrack-style vector
//!   clocks on [`shim::cell::UnsafeCell`] accesses,
//! * **deadlocks / lost wakeups**: every thread blocked (parked, lock,
//!   condvar, join) with nobody left to wake them,
//! * **leaks and double frees** of [`leak::Tracked`] payloads — the slot
//!   recycling failure modes of a ring,
//! * **stale-value bugs**: relaxed loads may observe a bounded set of
//!   outdated stores, chosen and recorded like scheduling decisions, so
//!   a missing Acquire/Release/SeqCst is *modeled*, not raced for.
//!
//! Every counterexample carries a [`Trace`] — a printable, parseable
//! schedule that [`replay`] re-runs exactly.
//!
//! ## Fidelity notes (deliberate approximations)
//!
//! * SeqCst is modeled by a global SC clock joined at every SC fence/op —
//!   slightly *stronger* than C11 (it may hide races that require subtle
//!   SC/non-SC mixing), but it captures exactly the Dekker/StoreLoad
//!   guarantee the doorbell's paired `fence(SeqCst)` relies on.
//! * Spurious wakeups (condvar, weak CAS failures, `park`) are not
//!   generated; the modeled behavior is a subset of what std allows.
//! * Store histories are bounded (default 3 per location), so arbitrarily
//!   old values are not observable.
//!
//! A checker pass is therefore evidence within these bounds, not proof —
//! while a counterexample is a real, replayable bug.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod exec;
mod explorer;
pub mod leak;
pub mod shim;
mod trace;
mod vc;

pub use explorer::{check, replay, Config, Mode, Report};
pub use trace::{Decision, DecisionKind, Failure, FailureKind, Trace};

/// Convenience re-export: model-aware `thread::{spawn, yield_now, ...}`
/// for harness closures.
pub use shim::thread;
