//! The exploration driver: runs a harness closure under every schedule the
//! bounds allow (iterative-deepening DFS over recorded decisions), or under
//! randomly sampled schedules for harnesses too big to exhaust.
//!
//! DFS works by *prefix replay*: each execution replays a prefix of
//! decisions, then extends with defaults (option 0 everywhere: run the
//! current thread, read the newest store). Afterwards the explorer scans
//! the recorded decision list right-to-left for the last decision with an
//! untried, in-bounds alternative, and restarts with that flipped prefix.
//! Option 0 being the "free" choice makes the bound accounting local: a
//! schedule's preemption/stale-read cost is just the number of non-zero
//! choices of each kind.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::exec::{run_model_thread, ExecShared};
use crate::trace::{Decision, DecisionKind, Failure, FailureKind, Trace};

/// How the explorer searches the schedule space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Bounded-exhaustive DFS: every schedule within the preemption and
    /// stale-read bounds (up to `max_schedules`).
    Exhaustive,
    /// Random sampling for harnesses whose bounded space is still too big.
    Random {
        /// Number of schedules to sample.
        iterations: u64,
        /// Base seed; each iteration derives its own stream from it.
        seed: u64,
    },
}

/// Exploration bounds and knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Max preemptive context switches per schedule (CHESS-style small
    /// bound; most concurrency bugs need ≤ 2).
    pub preemption_bound: usize,
    /// Max stale atomic loads per schedule (each relaxed load observing an
    /// outdated store costs one).
    pub stale_read_bound: usize,
    /// Stores kept per atomic location for stale loads to observe.
    pub store_history: usize,
    /// Per-execution step budget; executions that exceed it are counted as
    /// pruned and the report is marked incomplete.
    pub max_steps: usize,
    /// Total schedule budget (overridable via `MSSP_CHECK_MAX_SCHEDULES`).
    pub max_schedules: u64,
    /// Search strategy.
    pub mode: Mode,
    /// Where `check` writes failing traces (`MSSP_CHECK_TRACE_DIR`), for CI
    /// artifact upload.
    pub trace_dir: Option<std::path::PathBuf>,
}

impl Default for Config {
    fn default() -> Config {
        let max_schedules = std::env::var("MSSP_CHECK_MAX_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        let trace_dir = std::env::var_os("MSSP_CHECK_TRACE_DIR").map(Into::into);
        Config {
            preemption_bound: 2,
            stale_read_bound: 2,
            store_history: 3,
            max_steps: 5_000,
            max_schedules,
            mode: Mode::Exhaustive,
            trace_dir,
        }
    }
}

impl Config {
    /// Shorthand: default bounds with a different preemption bound.
    pub fn with_preemptions(preemption_bound: usize) -> Config {
        Config {
            preemption_bound,
            ..Config::default()
        }
    }
}

/// What an exploration did and found.
#[derive(Debug)]
pub struct Report {
    /// Executions run.
    pub schedules: u64,
    /// True when the bounded space was fully explored (no budget stop, no
    /// pruned executions, not random mode).
    pub complete: bool,
    /// Executions abandoned for exceeding `max_steps`.
    pub pruned: u64,
    /// The first counterexample found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic (with the replayable trace) if a counterexample was found;
    /// otherwise print the exploration stats. Harnesses end with this.
    pub fn assert_pass(&self, name: &str) {
        if let Some(f) = &self.failure {
            panic!(
                "mssp-check: {name}: counterexample after {} schedule(s):\n{f}",
                self.schedules
            );
        }
        println!(
            "mssp-check: {name}: explored {} schedule(s) (complete: {}, pruned: {})",
            self.schedules, self.complete, self.pruned
        );
    }

    /// Unwrap the counterexample a mutation test expects the checker to
    /// find; panics (loudly) if the buggy code passed.
    pub fn expect_failure(self, name: &str) -> Failure {
        match self.failure {
            Some(f) => {
                println!(
                    "mssp-check: {name}: found expected counterexample after {} schedule(s): {}",
                    self.schedules, f.kind
                );
                f
            }
            None => panic!(
                "mssp-check: {name}: expected a counterexample but {} schedule(s) all passed \
                 (complete: {}, pruned: {})",
                self.schedules, self.complete, self.pruned
            ),
        }
    }
}

struct ExecOutcome {
    decisions: Vec<Decision>,
    outcome: Option<Failure>,
    pruned: bool,
}

/// Run one execution with the given decision prefix (DFS) or rng seed
/// (random mode).
fn run_one(
    cfg: &Config,
    prefix: Vec<Decision>,
    seed: Option<u64>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ExecOutcome {
    let shared = ExecShared::new(cfg, prefix, seed);
    let shared2 = Arc::clone(&shared);
    let slot: Arc<Mutex<Option<std::thread::Result<()>>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let main = std::thread::Builder::new()
        .name("mssp-check-main".to_string())
        .spawn(move || {
            run_model_thread(
                shared2,
                0,
                std::panic::AssertUnwindSafe(move || f()),
                &slot2,
            )
        })
        .expect("failed to spawn model main thread");

    // Watchdog loop: model threads hand the baton among themselves; the
    // driver only waits for the execution to end, flagging a stall if no
    // operation lands for ~10s (a harness looping outside shim ops).
    let mut g = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
    let mut last_steps = usize::MAX;
    let mut stalled_ticks = 0u32;
    while !(g.done || g.aborting) {
        let (ng, _timeout) = shared
            .cv
            .wait_timeout(g, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner);
        g = ng;
        if g.done || g.aborting {
            break;
        }
        if g.steps == last_steps {
            stalled_ticks += 1;
            if stalled_ticks > 100 {
                g.fail(
                    FailureKind::Stalled,
                    "no model thread reached a schedule point for 10s (harness loops \
                     outside shim operations?)"
                        .to_string(),
                );
                break;
            }
        } else {
            last_steps = g.steps;
            stalled_ticks = 0;
        }
    }
    if g.done && g.outcome.is_none() {
        g.check_leaks();
    }
    let stalled = matches!(
        g.outcome.as_ref().map(|f| f.kind),
        Some(FailureKind::Stalled)
    );
    let handles = std::mem::take(&mut g.os_handles);
    drop(g);
    if stalled {
        // A stalled model thread may never exit; detach instead of hanging
        // the test suite. (The spinning thread leaks — acceptable for what
        // is already a harness bug.)
        drop(handles);
        drop(main);
    } else {
        for h in handles {
            let _ = h.join();
        }
        let _ = main.join();
    }
    let g = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
    ExecOutcome {
        decisions: g.decisions.clone(),
        outcome: g.outcome.clone(),
        pruned: g.pruned,
    }
}

/// Cost of the non-zero choices of `kind` in `decisions[..i]`.
fn cost_before(decisions: &[Decision], i: usize, preemptive: bool) -> usize {
    decisions[..i]
        .iter()
        .filter(|d| {
            d.chosen > 0
                && if preemptive {
                    matches!(
                        d.kind,
                        DecisionKind::Schedule {
                            current_runnable: true
                        }
                    )
                } else {
                    d.kind == DecisionKind::Value
                }
        })
        .count()
}

/// Find the next DFS prefix: the rightmost decision with an untried
/// alternative that stays within the bounds.
fn next_prefix(decisions: &[Decision], cfg: &Config) -> Option<Vec<Decision>> {
    for i in (0..decisions.len()).rev() {
        let d = decisions[i];
        let next = d.chosen + 1;
        if next >= d.options {
            continue;
        }
        let feasible = match d.kind {
            DecisionKind::Schedule {
                current_runnable: true,
            } => cost_before(decisions, i, true) < cfg.preemption_bound,
            DecisionKind::Schedule {
                current_runnable: false,
            } => true,
            DecisionKind::Value => cost_before(decisions, i, false) < cfg.stale_read_bound,
        };
        if !feasible {
            continue;
        }
        let mut prefix = decisions[..i].to_vec();
        prefix.push(Decision {
            chosen: next,
            options: d.options,
            kind: d.kind,
        });
        return Some(prefix);
    }
    None
}

/// Explore `f` under `cfg`, returning what was searched and the first
/// counterexample found (with its replayable trace). On failure, writes the
/// trace to `cfg.trace_dir/{name}.trace` when a trace dir is configured.
pub fn check(name: &str, cfg: &Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    let mut complete = true;
    let mut failure = None;

    match &cfg.mode {
        Mode::Exhaustive => {
            let mut prefix = Vec::new();
            loop {
                let out = run_one(cfg, prefix.clone(), None, Arc::clone(&f));
                schedules += 1;
                if out.pruned {
                    pruned += 1;
                    complete = false;
                }
                if out.outcome.is_some() {
                    complete = false;
                    failure = out.outcome;
                    break;
                }
                match next_prefix(&out.decisions, cfg) {
                    Some(p) => prefix = p,
                    None => break,
                }
                if schedules >= cfg.max_schedules {
                    complete = false;
                    break;
                }
            }
        }
        Mode::Random { iterations, seed } => {
            complete = false;
            for i in 0..*iterations {
                let exec_seed = seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let out = run_one(cfg, Vec::new(), Some(exec_seed), Arc::clone(&f));
                schedules += 1;
                if out.pruned {
                    pruned += 1;
                }
                if out.outcome.is_some() {
                    failure = out.outcome;
                    break;
                }
                if schedules >= cfg.max_schedules {
                    break;
                }
            }
        }
    }

    if let (Some(fail), Some(dir)) = (&failure, &cfg.trace_dir) {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.trace"));
        let body = format!("{fail}");
        if std::fs::write(&path, body).is_ok() {
            eprintln!(
                "mssp-check: {name}: wrote failing trace to {}",
                path.display()
            );
        }
    }

    Report {
        schedules,
        complete,
        pruned,
        failure,
    }
}

/// Re-run `f` under one exact recorded schedule (e.g. a trace parsed from
/// a CI artifact) and return what it produces.
pub fn replay(
    cfg: &Config,
    trace: &Trace,
    f: impl Fn() + Send + Sync + 'static,
) -> Option<Failure> {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    run_one(cfg, trace.decisions.clone(), None, f).outcome
}
