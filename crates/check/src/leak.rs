//! Leak and double-free accounting for model executions.
//!
//! A [`Tracked`] value registers itself with the execution when created on
//! a model thread and reports its drop. Because ids travel *with the bytes*
//! (a `Tracked` is `Copy`-free but a buggy ring can still duplicate it by
//! reading a slot twice), the checker observes exactly the failure modes
//! that matter for slot recycling:
//!
//! * the same id dropped twice → **double free** (a slot was handed out
//!   while still owned, e.g. a tail published before the read),
//! * an id never dropped by the end of a clean execution → **leak**
//!   (a slot overwritten without dropping its occupant).
//!
//! Outside a model execution a `Tracked` is inert (id 0, no accounting).

use crate::exec::with_op;

/// A payload whose lifetime the checker audits. Use as the element type in
/// model-check harnesses wherever the stress suite would count drops.
#[derive(Debug)]
pub struct Tracked {
    id: u64,
    /// Free-form label included in failure messages.
    pub label: &'static str,
}

impl Tracked {
    /// Allocate a tracked value (registers with the current execution when
    /// called on a model thread).
    pub fn new(label: &'static str) -> Tracked {
        let id = with_op("Tracked::new", |op| op.ex().leak_alloc(label)).unwrap_or(0);
        Tracked { id, label }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        if self.id != 0 {
            // `None` (outside the model / abort unwind): the execution is
            // being torn down and leak accounting no longer applies.
            let _ = with_op("Tracked::drop", |op| op.ex().leak_free(self.id));
        }
    }
}
