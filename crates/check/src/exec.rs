//! The model-checking runtime: one *execution* runs the harness closure on
//! real OS threads, but a baton-passing scheduler ensures exactly one model
//! thread runs at a time and every shim operation is a schedule point.
//!
//! ## How control flows
//!
//! Every shim operation calls [`with_op`]: the thread declares its pending
//! operation, a *scheduling decision* picks which declared thread executes
//! next (recorded as a [`Decision`] so schedules are replayable), and the
//! granted thread performs its operation under the one global lock, then
//! keeps running user code until its next shim call. Threads that must wait
//! (park, contended mutex, condvar, join) mark themselves blocked and hand
//! the baton on; wakers flip them back to ready.
//!
//! ## How weak memory is modeled
//!
//! Atomics keep a bounded per-location history of stores, each stamped with
//! the storing thread's vector clock and a release clock. A load may observe
//! any store not excluded by coherence (the reader's clock, its own previous
//! reads of the location); when several stores are eligible the choice is a
//! recorded decision, so stale values are *enumerated*, not raced for.
//! Acquire loads join the store's release clock into the reader's clock;
//! relaxed loads park it in `acq_pending` until an acquire fence. SeqCst
//! fences join a global `sc_clock` in both directions — a deliberate
//! over-approximation of C11 (it can introduce extra happens-before edges
//! near SC fences) that exactly captures the Dekker/StoreLoad guarantee the
//! doorbell relies on: of two threads that each store then SC-fence then
//! load, at least one must observe the other's store.
//!
//! Non-atomic accesses ([`crate::shim::cell::UnsafeCell`]) are checked with
//! a FastTrack-style vector-clock race detector instead.

use std::collections::{HashMap, VecDeque};
use std::panic::panic_any;
use std::sync::atomic::{AtomicU32, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::trace::{Decision, DecisionKind, Failure, FailureKind, Trace};
use crate::vc::VClock;
use crate::Config;

pub(crate) use std::sync::atomic::Ordering;

/// Payload used to unwind model threads when an execution ends early
/// (failure found, or the step budget pruned it). Never escapes the crate:
/// every model thread runs under `catch_unwind`.
pub(crate) struct AbortToken;

/// Per-OS-thread handle tying it to the execution it belongs to.
#[derive(Clone)]
pub(crate) struct CtxHandle {
    pub exec: Arc<ExecShared>,
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<CtxHandle>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<CtxHandle> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<CtxHandle>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// True when the calling OS thread belongs to a live model execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install (once, process-wide) a panic hook that silences panics raised on
/// model threads: abort unwinds and caught harness assertion failures would
/// otherwise spam stderr thousands of times per exploration. Panics on
/// ordinary threads still reach the previously installed hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

static NEXT_GEN: AtomicU32 = AtomicU32::new(1);

/// The lock + condvar every model thread synchronizes through. The condvar
/// is shared (via `Arc`) with [`Exec`] itself so state-mutating methods can
/// wake waiters while the caller still holds the guard.
pub(crate) struct ExecShared {
    pub m: Mutex<Exec>,
    pub cv: Arc<Condvar>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    Park,
    Mutex(u32),
    Condvar(u32),
    Join(usize),
}

impl BlockedOn {
    fn describe(self) -> &'static str {
        match self {
            BlockedOn::Park => "parked",
            BlockedOn::Mutex(_) => "waiting for a mutex",
            BlockedOn::Condvar(_) => "waiting on a condvar",
            BlockedOn::Join(_) => "joining a thread",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Ready,
    Blocked(BlockedOn),
    Finished,
}

pub(crate) struct ThreadSt {
    name: String,
    status: Status,
    /// The operation this thread will run when granted; `None` while it is
    /// actively running user code. Only `Ready` threads with a pending op
    /// are schedulable.
    pending: Option<&'static str>,
    clock: VClock,
    /// Clock captured at the last Release (or stronger) fence; becomes the
    /// release clock of subsequent relaxed stores.
    fence_rel: VClock,
    /// Release clocks of stores observed by relaxed loads, held back until
    /// an Acquire (or stronger) fence folds them into `clock`.
    acq_pending: VClock,
    /// Coherence floor per atomic location: the newest store index this
    /// thread has already read (a later load may not go further back).
    last_read: HashMap<u32, u64>,
    park_token: bool,
    token_clock: VClock,
    yielded: bool,
}

impl ThreadSt {
    fn new(name: String, clock: VClock) -> ThreadSt {
        ThreadSt {
            name,
            status: Status::Ready,
            pending: Some("start"),
            clock,
            fence_rel: VClock::default(),
            acq_pending: VClock::default(),
            last_read: HashMap::new(),
            park_token: false,
            token_clock: VClock::default(),
            yielded: false,
        }
    }
}

/// One store in a location's (bounded) modification-order history.
#[derive(Clone, Debug)]
struct Store {
    value: u64,
    /// Position in modification order (monotone per location).
    idx: u64,
    tid: usize,
    stamp: u32,
    /// Clock a reader acquires by observing this store with Acquire.
    rel: VClock,
}

struct AtomicLoc {
    history: VecDeque<Store>,
}

struct CellLoc {
    label: &'static str,
    last_write: Option<(usize, u32)>,
    reads: VClock,
}

struct MutexLoc {
    owner: Option<usize>,
    /// Release clock transferred lock-to-lock.
    clock: VClock,
}

struct CvLoc {
    waiters: VecDeque<usize>,
}

enum Loc {
    Atomic(AtomicLoc),
    Cell(CellLoc),
    Mutex(MutexLoc),
    Cv(CvLoc),
}

struct LeakEntry {
    label: &'static str,
    freed: bool,
}

struct Rng(u64);

impl Rng {
    fn pick(&mut self, bound: u32) -> u32 {
        // xorshift64*; plenty for schedule sampling.
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32 % bound
    }
}

const OP_LOG_CAP: usize = 48;

/// The full state of one model execution.
pub(crate) struct Exec {
    /// Unique per execution; lets shim objects detect that a cached
    /// location id belongs to a previous execution.
    pub gen: u32,
    max_steps: usize,
    store_history: usize,
    preemption_bound: usize,
    stale_read_bound: usize,
    rng: Option<Rng>,
    preemptions_used: usize,
    stale_reads_used: usize,

    threads: Vec<ThreadSt>,
    active: usize,
    locs: Vec<Loc>,
    sc_clock: VClock,

    /// Choices to replay (DFS prefix or a parsed failing trace).
    prefix: Vec<Decision>,
    /// Choices actually made this execution.
    pub decisions: Vec<Decision>,

    pub steps: usize,
    pub done: bool,
    pub aborting: bool,
    pub pruned: bool,
    pub outcome: Option<Failure>,

    leaks: HashMap<u64, LeakEntry>,
    next_leak_id: u64,
    op_log: VecDeque<(usize, &'static str)>,

    pub os_handles: Vec<std::thread::JoinHandle<()>>,

    cv: Arc<Condvar>,
}

impl ExecShared {
    /// Create an execution primed with `prefix` and a registered main
    /// thread (tid 0) already granted (it starts as soon as its OS thread
    /// checks in).
    pub(crate) fn new(
        cfg: &Config,
        prefix: Vec<Decision>,
        rng_seed: Option<u64>,
    ) -> Arc<ExecShared> {
        install_quiet_hook();
        let gen = NEXT_GEN.fetch_add(1, StdOrdering::Relaxed);
        let cv = Arc::new(Condvar::new());
        let mut main = ThreadSt::new("main".to_string(), VClock::default());
        main.clock.bump(0);
        Arc::new(ExecShared {
            m: Mutex::new(Exec {
                gen,
                max_steps: cfg.max_steps,
                store_history: cfg.store_history.max(1),
                preemption_bound: cfg.preemption_bound,
                stale_read_bound: cfg.stale_read_bound,
                rng: rng_seed.map(Rng),
                preemptions_used: 0,
                stale_reads_used: 0,
                threads: vec![main],
                active: 0,
                locs: Vec::new(),
                sc_clock: VClock::default(),
                prefix,
                decisions: Vec::new(),
                steps: 0,
                done: false,
                aborting: false,
                pruned: false,
                outcome: None,
                leaks: HashMap::new(),
                next_leak_id: 1,
                op_log: VecDeque::new(),
                os_handles: Vec::new(),
                cv: Arc::clone(&cv),
            }),
            cv,
        })
    }
}

impl Exec {
    // ---- choice recording ------------------------------------------------

    /// Make (or replay) a choice with `options ≥ 2` alternatives. Returns
    /// the chosen index; on replay divergence, records a failure and
    /// returns 0 (the execution is aborting; callers just need *a* valid
    /// index to finish the current operation).
    fn choose(&mut self, kind: DecisionKind, options: u32) -> u32 {
        debug_assert!(options >= 2);
        let idx = self.decisions.len();
        let chosen = if idx < self.prefix.len() {
            let p = self.prefix[idx];
            if p.options != options || p.kind != kind {
                self.fail(
                    FailureKind::NondeterministicReplay,
                    format!(
                        "decision {idx}: recorded {:?} with {} options, \
                         replay hit {:?} with {} options — harness is \
                         nondeterministic outside the model",
                        p.kind, p.options, kind, options
                    ),
                );
                0
            } else {
                p.chosen
            }
        } else if let Some(rng) = &mut self.rng {
            // Random sampling mode: pick freely but respect the bounds so
            // sampled schedules stay comparable to the exhaustive set.
            let bounded = match kind {
                DecisionKind::Schedule {
                    current_runnable: true,
                } => self.preemptions_used >= self.preemption_bound,
                DecisionKind::Schedule {
                    current_runnable: false,
                } => false,
                DecisionKind::Value => self.stale_reads_used >= self.stale_read_bound,
            };
            if bounded {
                0
            } else {
                rng.pick(options)
            }
        } else {
            // DFS extension past the prefix: always take option 0 (run the
            // current thread / read the newest store).
            0
        };
        match kind {
            DecisionKind::Schedule {
                current_runnable: true,
            } if chosen > 0 => self.preemptions_used += 1,
            DecisionKind::Value if chosen > 0 => self.stale_reads_used += 1,
            _ => {}
        }
        self.decisions.push(Decision {
            chosen,
            options,
            kind,
        });
        chosen
    }

    // ---- scheduling ------------------------------------------------------

    /// Pick which declared thread runs next and grant it the baton. Called
    /// by the active thread whenever it arrives at an operation, blocks, or
    /// finishes.
    fn schedule_decision(&mut self) {
        let mut ready: Vec<usize> = (0..self.threads.len())
            .filter(|&t| {
                self.threads[t].status == Status::Ready && self.threads[t].pending.is_some()
            })
            .collect();
        if ready.is_empty() {
            if self.threads.iter().all(|t| t.status == Status::Finished) {
                self.done = true;
                self.cv.notify_all();
            } else {
                let blocked: Vec<String> = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.status {
                        Status::Blocked(b) => Some(format!("`{}` {}", t.name, b.describe())),
                        _ => None,
                    })
                    .collect();
                self.fail(
                    FailureKind::Deadlock,
                    format!(
                        "no thread can make progress: {}",
                        if blocked.is_empty() {
                            "no blocked threads recorded".to_string()
                        } else {
                            blocked.join(", ")
                        }
                    ),
                );
            }
            return;
        }
        // Yield fairness: a thread that called `yield_now` declared it
        // cannot progress; don't reschedule it while a non-yielded thread
        // is runnable. This keeps spin loops finite without losing any
        // schedule in which the spinner's retry could succeed.
        if ready.iter().any(|&t| !self.threads[t].yielded) {
            ready.retain(|&t| !self.threads[t].yielded);
        } else {
            for &t in &ready {
                self.threads[t].yielded = false;
            }
        }
        // Option 0 is "keep running the current thread" when possible, so
        // the DFS default (all-zeros) is the no-preemption schedule.
        let cur = self.active;
        let current_runnable = if let Some(pos) = ready.iter().position(|&t| t == cur) {
            ready.remove(pos);
            ready.insert(0, cur);
            true
        } else {
            false
        };
        let chosen = if ready.len() == 1 {
            0
        } else {
            self.choose(
                DecisionKind::Schedule { current_runnable },
                ready.len() as u32,
            ) as usize
        };
        let next = ready.get(chosen).copied().unwrap_or(ready[0]);
        self.active = next;
        self.cv.notify_all();
    }

    /// Record a failure (first one wins) and begin aborting the execution.
    pub(crate) fn fail(&mut self, kind: FailureKind, message: String) {
        if self.outcome.is_none() {
            let recent_ops = self
                .op_log
                .iter()
                .map(|&(tid, desc)| format!("`{}`: {desc}", self.threads[tid].name))
                .collect();
            self.outcome = Some(Failure {
                kind,
                message,
                trace: Trace {
                    decisions: self.decisions.clone(),
                },
                recent_ops,
            });
        }
        self.aborting = true;
        self.cv.notify_all();
    }

    /// Step budget exhausted: abandon this execution without calling it a
    /// failure. The explorer counts pruned executions in its report.
    fn prune(&mut self) {
        self.pruned = true;
        self.aborting = true;
        self.cv.notify_all();
    }

    fn log_op(&mut self, tid: usize, desc: &'static str) {
        if self.op_log.len() == OP_LOG_CAP {
            self.op_log.pop_front();
        }
        self.op_log.push_back((tid, desc));
    }

    // ---- thread lifecycle ------------------------------------------------

    /// Register a newly spawned model thread; it inherits the parent's
    /// clock (the spawn edge) and waits for a start grant.
    pub(crate) fn register_thread(&mut self, parent: usize) -> usize {
        let tid = self.threads.len();
        let mut clock = self.threads[parent].clock.clone();
        clock.bump(tid);
        self.threads.push(ThreadSt::new(format!("t{tid}"), clock));
        tid
    }

    /// Mark a thread finished and hand the baton on (wakes joiners).
    pub(crate) fn finish_thread(&mut self, tid: usize) {
        self.threads[tid].status = Status::Finished;
        self.threads[tid].pending = None;
        for t in 0..self.threads.len() {
            if self.threads[t].status == Status::Blocked(BlockedOn::Join(tid)) {
                self.threads[t].status = Status::Ready;
                self.threads[t].pending = Some("join-wake");
            }
        }
        if !self.aborting {
            self.schedule_decision();
        } else {
            self.cv.notify_all();
        }
    }

    pub(crate) fn thread_finished(&self, tid: usize) -> bool {
        self.threads[tid].status == Status::Finished
    }

    /// Join edge: the joiner acquires everything the joined thread did.
    pub(crate) fn absorb_thread_clock(&mut self, joiner: usize, joined: usize) {
        let c = self.threads[joined].clock.clone();
        self.threads[joiner].clock.join(&c);
    }

    pub(crate) fn set_yielded(&mut self, tid: usize) {
        self.threads[tid].yielded = true;
    }

    // ---- location registration ------------------------------------------

    pub(crate) fn register_atomic(&mut self, tid: usize, init: u64) -> u32 {
        let id = self.locs.len() as u32;
        // The initial value behaves like a store by the registering thread
        // (first toucher): its release clock is that thread's clock, which
        // precedes every spawn edge out of it, so threads created later can
        // always observe it.
        let rel = self.threads[tid].clock.clone();
        let stamp = rel.get(tid);
        self.locs.push(Loc::Atomic(AtomicLoc {
            history: VecDeque::from([Store {
                value: init,
                idx: 0,
                tid,
                stamp,
                rel,
            }]),
        }));
        id
    }

    pub(crate) fn register_cell(&mut self, label: &'static str) -> u32 {
        let id = self.locs.len() as u32;
        self.locs.push(Loc::Cell(CellLoc {
            label,
            last_write: None,
            reads: VClock::default(),
        }));
        id
    }

    pub(crate) fn register_mutex(&mut self) -> u32 {
        let id = self.locs.len() as u32;
        self.locs.push(Loc::Mutex(MutexLoc {
            owner: None,
            clock: VClock::default(),
        }));
        id
    }

    pub(crate) fn register_cv(&mut self) -> u32 {
        let id = self.locs.len() as u32;
        self.locs.push(Loc::Cv(CvLoc {
            waiters: VecDeque::new(),
        }));
        id
    }

    fn atomic(&mut self, loc: u32) -> &mut AtomicLoc {
        match &mut self.locs[loc as usize] {
            Loc::Atomic(a) => a,
            _ => unreachable!("location {loc} is not an atomic"),
        }
    }

    fn mutex(&mut self, loc: u32) -> &mut MutexLoc {
        match &mut self.locs[loc as usize] {
            Loc::Mutex(m) => m,
            _ => unreachable!("location {loc} is not a mutex"),
        }
    }

    fn cvloc(&mut self, loc: u32) -> &mut CvLoc {
        match &mut self.locs[loc as usize] {
            Loc::Cv(c) => c,
            _ => unreachable!("location {loc} is not a condvar"),
        }
    }

    // ---- atomic memory model ---------------------------------------------

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// An atomic load: choose (as a recorded decision) which store in the
    /// location's history to observe, subject to coherence.
    pub(crate) fn atomic_load(&mut self, tid: usize, loc: u32, ord: Ordering) -> u64 {
        if ord == Ordering::SeqCst {
            // Over-approximate SC: the load may not observe anything older
            // than what the global SC order has already made visible.
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        // Coherence floor: the newest store this thread is *forced* to see —
        // anything its clock already covers, and anything it has already
        // read from this location (read-read coherence).
        let (floor, n_eligible) = {
            let clock = self.threads[tid].clock.clone();
            let last = self.threads[tid].last_read.get(&loc).copied().unwrap_or(0);
            let a = self.atomic(loc);
            let mut floor = a.history.front().map(|s| s.idx).unwrap_or(0);
            for s in &a.history {
                if clock.dominates(s.tid, s.stamp) {
                    floor = floor.max(s.idx);
                }
            }
            floor = floor.max(last);
            let n = a.history.iter().filter(|s| s.idx >= floor).count();
            (floor, n)
        };
        // Option 0 is the newest store; older eligible stores are stale
        // reads, each a recorded decision counted against the bound.
        let pick = if n_eligible > 1 {
            self.choose(DecisionKind::Value, n_eligible as u32) as usize
        } else {
            0
        };
        let (value, idx, rel) = {
            let a = self.atomic(loc);
            let s = a
                .history
                .iter()
                .rev()
                .filter(|s| s.idx >= floor)
                .nth(pick)
                .expect("eligible store disappeared");
            (s.value, s.idx, s.rel.clone())
        };
        self.threads[tid].last_read.insert(loc, idx);
        if Self::is_acquire(ord) {
            self.threads[tid].clock.join(&rel);
        } else {
            self.threads[tid].acq_pending.join(&rel);
        }
        if ord == Ordering::SeqCst {
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        value
    }

    /// An atomic store: appends to modification order; the store's release
    /// clock is what an acquire reader will synchronize with.
    pub(crate) fn atomic_store(&mut self, tid: usize, loc: u32, value: u64, ord: Ordering) {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let rel = if Self::is_release(ord) {
            self.threads[tid].clock.clone()
        } else {
            self.threads[tid].fence_rel.clone()
        };
        let stamp = self.threads[tid].clock.get(tid);
        if ord == Ordering::SeqCst {
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        let cap = self.store_history;
        let a = self.atomic(loc);
        let idx = a.history.back().map(|s| s.idx + 1).unwrap_or(0);
        a.history.push_back(Store {
            value,
            idx,
            tid,
            stamp,
            rel,
        });
        while a.history.len() > cap {
            a.history.pop_front();
        }
        self.threads[tid].last_read.insert(loc, idx);
    }

    /// A read-modify-write. Always reads the *newest* store (RMWs read the
    /// latest value in modification order) and continues its release
    /// sequence. Returns the old value; stores `f(old)` if it is `Some`.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: usize,
        loc: u32,
        ord: Ordering,
        failure_acquires: bool,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let (old, old_idx, old_rel) = {
            let a = self.atomic(loc);
            let s = a.history.back().expect("atomic history empty");
            (s.value, s.idx, s.rel.clone())
        };
        let new = f(old);
        let success = new.is_some();
        if (success && Self::is_acquire(ord)) || (!success && failure_acquires) {
            self.threads[tid].clock.join(&old_rel);
        } else {
            self.threads[tid].acq_pending.join(&old_rel);
        }
        if let Some(new) = new {
            // Release sequence: the RMW's release clock includes the clock
            // of the store it read from, so an acquire of the RMW's store
            // still synchronizes with the original release.
            let mut rel = if Self::is_release(ord) {
                self.threads[tid].clock.clone()
            } else {
                self.threads[tid].fence_rel.clone()
            };
            rel.join(&old_rel);
            let stamp = self.threads[tid].clock.get(tid);
            let cap = self.store_history;
            let a = self.atomic(loc);
            let idx = old_idx + 1;
            a.history.push_back(Store {
                value: new,
                idx,
                tid,
                stamp,
                rel,
            });
            while a.history.len() > cap {
                a.history.pop_front();
            }
            self.threads[tid].last_read.insert(loc, idx);
        } else {
            self.threads[tid].last_read.insert(loc, old_idx);
        }
        if ord == Ordering::SeqCst {
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        old
    }

    /// A memory fence. SeqCst joins the global SC clock both ways, which is
    /// what makes the doorbell's store→fence→load pattern work in the model.
    pub(crate) fn fence(&mut self, tid: usize, ord: Ordering) {
        assert!(
            ord != Ordering::Relaxed,
            "fence with Relaxed ordering (matches std's panic)"
        );
        if Self::is_acquire(ord) {
            let pend = std::mem::take(&mut self.threads[tid].acq_pending);
            self.threads[tid].clock.join(&pend);
        }
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        if Self::is_release(ord) {
            self.threads[tid].fence_rel = self.threads[tid].clock.clone();
        }
    }

    // ---- non-atomic accesses: race detection ----------------------------

    /// Check a non-atomic access against the location's access history
    /// (FastTrack-style): a read races with a non-happens-before write; a
    /// write races with any non-happens-before read or write.
    pub(crate) fn cell_access(&mut self, tid: usize, loc: u32, is_write: bool) {
        let clock = self.threads[tid].clock.clone();
        let stamp = clock.get(tid);
        let me = self.threads[tid].name.clone();
        let (label, conflict) = match &mut self.locs[loc as usize] {
            Loc::Cell(c) => {
                let mut conflict: Option<usize> = None;
                if let Some((wt, ws)) = c.last_write {
                    if wt != tid && !clock.dominates(wt, ws) {
                        conflict = Some(wt);
                    }
                }
                if is_write && conflict.is_none() {
                    for (rt, rs) in c.reads.iter() {
                        if rt != tid && !clock.dominates(rt, rs) {
                            conflict = Some(rt);
                            break;
                        }
                    }
                }
                if conflict.is_none() {
                    if is_write {
                        c.last_write = Some((tid, stamp));
                        c.reads = VClock::default();
                    } else {
                        let prev = c.reads.get(tid);
                        c.reads.set(tid, prev.max(stamp));
                    }
                }
                (c.label, conflict)
            }
            _ => unreachable!("location {loc} is not a cell"),
        };
        if let Some(other) = conflict {
            let other_name = self.threads[other].name.clone();
            self.fail(
                FailureKind::DataRace,
                format!(
                    "`{me}` {} `{label}` concurrently with `{other_name}` \
                     (no happens-before edge between the accesses)",
                    if is_write { "writes" } else { "reads" },
                ),
            );
        }
    }

    // ---- park / unpark ---------------------------------------------------

    /// Consume the park token if present; returns false when the caller
    /// must block.
    pub(crate) fn try_consume_park_token(&mut self, tid: usize) -> bool {
        if self.threads[tid].park_token {
            self.threads[tid].park_token = false;
            let tc = self.threads[tid].token_clock.clone();
            self.threads[tid].clock.join(&tc);
            true
        } else {
            false
        }
    }

    /// Make the target's token available and wake it if parked. The token
    /// carries the caller's clock: `unpark` synchronizes-with the `park`
    /// that consumes it (matching std's documented guarantee).
    pub(crate) fn unpark(&mut self, tid: usize, target: usize) {
        let c = self.threads[tid].clock.clone();
        self.threads[target].park_token = true;
        self.threads[target].token_clock.join(&c);
        if self.threads[target].status == Status::Blocked(BlockedOn::Park) {
            self.threads[target].status = Status::Ready;
            self.threads[target].pending = Some("unparked");
        }
    }

    // ---- mutex / condvar -------------------------------------------------

    /// Try to take the mutex; true on success (acquires the lock's clock).
    pub(crate) fn mutex_try_lock(&mut self, tid: usize, loc: u32) -> bool {
        let m = self.mutex(loc);
        if m.owner.is_none() {
            m.owner = Some(tid);
            let c = m.clock.clone();
            self.threads[tid].clock.join(&c);
            true
        } else {
            false
        }
    }

    /// Release the mutex and wake every waiter (they re-contend; the
    /// scheduler enumerates who wins).
    pub(crate) fn mutex_unlock(&mut self, tid: usize, loc: u32) {
        let c = self.threads[tid].clock.clone();
        let m = self.mutex(loc);
        debug_assert_eq!(m.owner, Some(tid), "unlock of a mutex not held");
        m.owner = None;
        m.clock.join(&c);
        for t in 0..self.threads.len() {
            if self.threads[t].status == Status::Blocked(BlockedOn::Mutex(loc)) {
                self.threads[t].status = Status::Ready;
                self.threads[t].pending = Some("lock-retry");
            }
        }
    }

    /// Enqueue the caller on the condvar (must be called with the paired
    /// mutex already released by `mutex_unlock`).
    pub(crate) fn cv_enqueue(&mut self, tid: usize, loc: u32) {
        self.cvloc(loc).waiters.push_back(tid);
    }

    /// Wake one / all waiters. No happens-before edge here: real condvars
    /// synchronize through their mutex, and so does the model.
    pub(crate) fn cv_notify(&mut self, loc: u32, all: bool) {
        while let Some(w) = self.cvloc(loc).waiters.pop_front() {
            if self.threads[w].status == Status::Blocked(BlockedOn::Condvar(loc)) {
                self.threads[w].status = Status::Ready;
                self.threads[w].pending = Some("condvar-wake");
            }
            if !all {
                break;
            }
        }
    }

    // ---- leak accounting -------------------------------------------------

    /// Register a tracked allocation; returns its id.
    pub(crate) fn leak_alloc(&mut self, label: &'static str) -> u64 {
        let id = self.next_leak_id;
        self.next_leak_id += 1;
        self.leaks.insert(
            id,
            LeakEntry {
                label,
                freed: false,
            },
        );
        id
    }

    /// Record a drop of a tracked allocation; a second drop of the same id
    /// is a double free (a slot recycled while still owned).
    pub(crate) fn leak_free(&mut self, id: u64) {
        match self.leaks.get_mut(&id) {
            Some(e) if !e.freed => e.freed = true,
            Some(e) => {
                let label = e.label;
                self.fail(
                    FailureKind::DoubleFree,
                    format!("tracked value `{label}` (id {id}) dropped twice"),
                );
            }
            None => {}
        }
    }

    /// Called by the driver after a clean finish: any live tracked value is
    /// a leak.
    pub(crate) fn check_leaks(&mut self) {
        let mut live: Vec<(u64, &'static str)> = self
            .leaks
            .iter()
            .filter(|(_, e)| !e.freed)
            .map(|(&id, e)| (id, e.label))
            .collect();
        if live.is_empty() {
            return;
        }
        live.sort_unstable();
        let list: Vec<String> = live
            .iter()
            .map(|(id, label)| format!("`{label}` (id {id})"))
            .collect();
        self.fail(
            FailureKind::Leak,
            format!(
                "{} tracked value(s) never dropped: {}",
                live.len(),
                list.join(", ")
            ),
        );
    }
}

// ---- the operation wrapper ----------------------------------------------

/// Borrow of the execution taken by a granted operation. Provides the
/// blocking primitive on top of `Exec`'s pure state transitions.
pub(crate) struct OpCtx<'a> {
    shared: &'a ExecShared,
    guard: Option<MutexGuard<'a, Exec>>,
    pub tid: usize,
}

impl<'a> OpCtx<'a> {
    /// Access the execution state (the guard is always held between waits).
    pub fn ex(&mut self) -> &mut Exec {
        self.guard.as_mut().expect("guard held")
    }

    /// Block the calling thread on `on`, hand the baton away, and return
    /// once a waker has made it ready *and* the scheduler has granted it
    /// again. Callers must re-check their wait condition afterwards.
    pub fn block(&mut self, on: BlockedOn) {
        let tid = self.tid;
        {
            let ex = self.ex();
            ex.threads[tid].status = Status::Blocked(on);
            ex.threads[tid].pending = Some("resume");
            ex.schedule_decision();
        }
        let mut g = self.guard.take().expect("guard held");
        loop {
            if g.aborting {
                drop(g);
                panic_any(AbortToken);
            }
            if g.threads[tid].status == Status::Ready && g.active == tid {
                break;
            }
            g = self
                .shared
                .cv
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        g.threads[tid].pending = None;
        g.threads[tid].yielded = false;
        // A resume is an event of its own.
        g.steps += 1;
        g.threads[tid].clock.bump(tid);
        self.guard = Some(g);
    }

    /// Blocking mutex acquire, built from try-lock + block.
    pub fn mutex_lock(&mut self, loc: u32) {
        let tid = self.tid;
        while !self.ex().mutex_try_lock(tid, loc) {
            self.block(BlockedOn::Mutex(loc));
        }
    }

    /// Full condvar wait: atomically release the mutex and enqueue, block
    /// until notified, then re-acquire the mutex.
    pub fn cv_wait(&mut self, cv: u32, mutex: u32) {
        let tid = self.tid;
        self.ex().mutex_unlock(tid, mutex);
        self.ex().cv_enqueue(tid, cv);
        self.block(BlockedOn::Condvar(cv));
        self.mutex_lock(mutex);
    }

    /// Park until the token is available (models `std::thread::park`; no
    /// spurious wakeups — see the crate docs for why that is sound here).
    pub fn park(&mut self) {
        let tid = self.tid;
        while !self.ex().try_consume_park_token(tid) {
            self.block(BlockedOn::Park);
        }
    }

    /// Wait until `target` finishes, then absorb its clock (join edge).
    pub fn join_thread(&mut self, target: usize) {
        let tid = self.tid;
        while !self.ex().thread_finished(target) {
            self.block(BlockedOn::Join(target));
        }
        self.ex().absorb_thread_clock(tid, target);
    }
}

/// Run one shim operation on the model, or return `None` when the caller
/// should fall through to the real std implementation (not a model thread,
/// or currently unwinding from an abort).
pub(crate) fn with_op<R>(desc: &'static str, f: impl FnOnce(&mut OpCtx<'_>) -> R) -> Option<R> {
    let ctx = current_ctx()?;
    if std::thread::panicking() {
        // Unwinding (typically from an AbortToken): perform cleanup against
        // the real std state so destructors stay sound, without touching
        // the (aborting) model.
        return None;
    }
    let tid = ctx.tid;
    let shared = &*ctx.exec;
    let mut g = lock_ignore_poison(&shared.m);
    if g.aborting {
        drop(g);
        panic_any(AbortToken);
    }
    g.threads[tid].pending = Some(desc);
    g.schedule_decision();
    while !(g.aborting || g.active == tid) {
        g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    if g.aborting {
        drop(g);
        panic_any(AbortToken);
    }
    g.threads[tid].pending = None;
    g.threads[tid].yielded = false;
    g.steps += 1;
    if g.steps > g.max_steps {
        g.prune();
        drop(g);
        panic_any(AbortToken);
    }
    g.threads[tid].clock.bump(tid);
    g.log_op(tid, desc);
    let mut op = OpCtx {
        shared,
        guard: Some(g),
        tid,
    };
    Some(f(&mut op))
}

/// Entry point for a model thread's OS thread: wait for the start grant,
/// run the body, record the result, and hand the baton on.
pub(crate) fn run_model_thread<T>(
    exec: Arc<ExecShared>,
    tid: usize,
    body: impl FnOnce() -> T + std::panic::UnwindSafe,
    result: &Mutex<Option<std::thread::Result<T>>>,
) {
    set_ctx(Some(CtxHandle {
        exec: Arc::clone(&exec),
        tid,
    }));
    // Wait for the start grant.
    let started = {
        let mut g = lock_ignore_poison(&exec.m);
        loop {
            if g.aborting {
                break false;
            }
            if g.active == tid && g.threads[tid].status == Status::Ready {
                g.threads[tid].pending = None;
                break true;
            }
            g = exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    };
    if !started {
        let mut g = lock_ignore_poison(&exec.m);
        g.finish_thread(tid);
        set_ctx(None);
        return;
    }
    let r = std::panic::catch_unwind(body);
    let panic_msg = match &r {
        Ok(_) => None,
        Err(p) if p.is::<AbortToken>() => None,
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Some(msg)
        }
    };
    *lock_ignore_poison(result) = Some(r);
    let mut g = lock_ignore_poison(&exec.m);
    if let Some(msg) = panic_msg {
        let name = g.threads[tid].name.clone();
        g.fail(
            FailureKind::Panic,
            format!("thread `{name}` panicked: {msg}"),
        );
    }
    g.finish_thread(tid);
    drop(g);
    set_ctx(None);
}
