//! Model-check harnesses for the mssp transport: the SPSC/MPSC rings,
//! the doorbell, the delta-arena recycling protocol, and the Condvar
//! channel — all running on the real `mssp-core` code via its `sync`
//! seam (feature `model-check`), under the deterministic scheduler.
//!
//! Two kinds of tests:
//!
//! * **Invariant harnesses** (`mc_*`): the stress-test invariants from
//!   `crates/core/tests/ring_stress.rs`, re-proved bounded-exhaustively —
//!   FIFO across wraparound, no loss / no duplication on disconnect,
//!   no lost doorbell wakeup, no leaked or double-recycled payload.
//! * **Mutation (teeth) tests** (`mutation_*`): arm a seeded ordering
//!   bug from `mssp_core::mutation` and require the checker to produce a
//!   counterexample — then parse and replay its trace to prove the
//!   counterexample is reproducible, not a flake.
//!
//! The mutation flags are process globals, so every test here serializes
//! on one lock and disarms the flags on drop (panic-safe).

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use mssp_check::leak::Tracked;
use mssp_check::{check, replay, thread, Config, FailureKind, Trace};
use mssp_core::chan;
use mssp_core::mutation;
use mssp_core::ring::{mpsc, spsc, TryRecvError};
use mssp_machine::{Cell, DeltaArena};

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests and guarantee mutations are disarmed afterwards, even
/// when the test panics mid-run.
struct Serial(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Serial {
    fn drop(&mut self) {
        mutation::reset_all();
    }
}

fn serial() -> Serial {
    mutation::reset_all();
    Serial(TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner))
}

fn cfg() -> Config {
    // trace_dir / max_schedules come from Config::default(), which honors
    // MSSP_CHECK_TRACE_DIR and MSSP_CHECK_MAX_SCHEDULES so CI can collect
    // failing traces as artifacts and raise the budget.
    Config {
        preemption_bound: 2,
        stale_read_bound: 2,
        ..Config::default()
    }
}

// ---------------------------------------------------------------------------
// Invariant harnesses
// ---------------------------------------------------------------------------

/// SPSC FIFO across the wraparound boundary: capacity 2, four items, so
/// the indices lap the mask twice while producer and consumer interleave
/// arbitrarily. Order and values must survive every schedule.
#[test]
fn mc_spsc_wraparound_fifo() {
    let _g = serial();
    let report = check("mc-spsc-wraparound-fifo", &cfg(), || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            for i in 0..4 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i), "FIFO violated at item {i}");
        }
        t.join().unwrap();
        assert_eq!(rx.recv(), Err(TryRecvError::Disconnected));
    });
    report.assert_pass("mc-spsc-wraparound-fifo");
    assert!(report.complete, "wraparound space must be fully explored");
}

/// SPSC drain-then-disconnect: a producer that sends its last items and
/// drops immediately must never lose them, under any interleaving of the
/// publish, the close flag, and the consumer's park/re-check path.
#[test]
fn mc_spsc_no_loss_on_disconnect() {
    let _g = serial();
    let report = check("mc-spsc-no-loss-on-disconnect", &cfg(), || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // tx drops here, racing the consumer's drain.
        });
        let mut got = Vec::new();
        loop {
            match rx.recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => unreachable!("recv never returns Empty"),
            }
        }
        t.join().unwrap();
        assert_eq!(got, vec![1, 2], "items lost or reordered across disconnect");
    });
    report.assert_pass("mc-spsc-no-loss-on-disconnect");
    assert!(report.complete, "disconnect space must be fully explored");
}

/// Doorbell: a consumer that decides to park and a producer that
/// publishes-then-rings must never miss each other. A lost wakeup shows
/// up as a deadlock (consumer parked, producer finished).
#[test]
fn mc_doorbell_no_lost_wakeup() {
    let _g = serial();
    let report = check("mc-doorbell-no-lost-wakeup", &cfg(), || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap();
    });
    report.assert_pass("mc-doorbell-no-lost-wakeup");
    assert!(
        report.complete,
        "doorbell space must be fully explored for the no-lost-wakeup claim"
    );
}

/// MPSC with two racing producers: every item arrives exactly once and
/// per-producer FIFO order holds (the coordinator relies on it to keep a
/// master's spawns ordered before its stall report).
#[test]
fn mc_mpsc_no_loss_no_dup() {
    let _g = serial();
    // Three threads and the CAS claim loop make the full bound-2 space
    // larger than the schedule budget; one preemption still interleaves
    // the producers' claim/publish/doorbell steps and completes.
    let cfg = Config {
        preemption_bound: 1,
        ..cfg()
    };
    let report = check("mc-mpsc-no-loss-no-dup", &cfg, || {
        let (tx_a, mut rx) = mpsc::<(usize, u32)>(2);
        let tx_b = tx_a.clone();
        let a = thread::spawn(move || {
            tx_a.send((0, 0)).unwrap();
            tx_a.send((0, 1)).unwrap();
        });
        let b = thread::spawn(move || {
            tx_b.send((1, 0)).unwrap();
        });
        let mut got = Vec::new();
        loop {
            match rx.recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => unreachable!("recv never returns Empty"),
            }
        }
        a.join().unwrap();
        b.join().unwrap();
        let a_items: Vec<u32> = got
            .iter()
            .filter(|(p, _)| *p == 0)
            .map(|&(_, i)| i)
            .collect();
        let b_items: Vec<u32> = got
            .iter()
            .filter(|(p, _)| *p == 1)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(a_items, vec![0, 1], "producer A lost/duplicated/reordered");
        assert_eq!(b_items, vec![0], "producer B lost/duplicated");
        assert_eq!(got.len(), 3, "global count wrong");
    });
    report.assert_pass("mc-mpsc-no-loss-no-dup");
    assert!(report.complete, "mpsc bound-1 space must be fully explored");
}

/// Arena recycling over the transport: pooled `Delta` buffers ride the
/// ring to a worker (paired with a `Tracked` sentinel) and are recycled
/// into its pool. The leak accountant proves every buffer is handed out
/// and retired exactly once — no leak, no double-recycle — under every
/// explored schedule, including the drop-with-items-in-flight tail.
#[test]
fn mc_arena_no_double_recycle() {
    let _g = serial();
    let report = check("mc-arena-no-double-recycle", &cfg(), || {
        let mut coord = DeltaArena::with_limit(4);
        let (mut tx, mut rx) = spsc::<(mssp_machine::Delta, Tracked)>(2);
        let worker = thread::spawn(move || {
            let mut pool = DeltaArena::with_limit(4);
            let mut seen = 0u32;
            loop {
                match rx.recv() {
                    Ok((d, t)) => {
                        pool.put(d);
                        drop(t); // exactly-once retirement, checked globally
                        seen += 1;
                    }
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => unreachable!("recv never returns Empty"),
                }
            }
            (pool.pooled(), seen)
        });
        for i in 0..2u64 {
            let mut d = coord.take();
            d.set(Cell::Mem(i), i);
            tx.send((d, Tracked::new("pooled-delta"))).unwrap();
        }
        drop(tx);
        let (pooled, seen) = worker.join().unwrap();
        assert_eq!(seen, 2, "a delta was lost in transit");
        assert_eq!(pooled, 2, "worker pool must hold both recycled buffers");
    });
    report.assert_pass("mc-arena-no-double-recycle");
    assert!(report.complete, "arena space must be fully explored");
}

/// Satellite: the Condvar channel's drain-before-disconnect order. A
/// sender that enqueues its final message and drops in the same instant
/// must never lose it, under every mutex/condvar interleaving.
#[test]
fn mc_chan_drain_before_disconnect() {
    let _g = serial();
    let report = check("mc-chan-drain-before-disconnect", &cfg(), || {
        let (tx, rx) = chan::channel();
        let t = thread::spawn(move || {
            tx.send(42u32).unwrap();
            // tx drops here: "message ready" and "disconnected" become
            // true at the same instant for the woken receiver.
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, vec![42], "final message lost across disconnect");
    });
    report.assert_pass("mc-chan-drain-before-disconnect");
    assert!(report.complete, "chan space must be fully explored");
}

// ---------------------------------------------------------------------------
// Mutation (teeth) tests
// ---------------------------------------------------------------------------

/// Assert the failure's trace round-trips through its printed form and
/// replays to the same failure kind — the counterexample is a schedule,
/// not a fluke.
fn assert_replays(
    name: &str,
    failure: &mssp_check::Failure,
    harness: impl Fn() + Send + Sync + Clone + 'static,
) {
    let printed = failure.trace.to_string();
    let parsed =
        Trace::parse(&printed).unwrap_or_else(|| panic!("{name}: trace {printed:?} must parse"));
    assert_eq!(parsed, failure.trace, "{name}: trace print/parse mismatch");
    let replayed = replay(&cfg(), &parsed, harness)
        .unwrap_or_else(|| panic!("{name}: replay must reproduce the failure"));
    assert_eq!(
        replayed.kind, failure.kind,
        "{name}: replay found a different failure"
    );
}

/// Weakening the doorbell's SeqCst fences to AcqRel loses the wakeup:
/// the consumer's re-check misses the publish while the producer's ring
/// misses the sleep flag — a deadlock, found via two stale reads.
#[test]
fn mutation_doorbell_fence_acqrel_is_deadlock() {
    let _g = serial();
    mutation::DOORBELL_FENCE_ACQREL.store(true, std::sync::atomic::Ordering::Relaxed);
    let harness = || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap();
    };
    let failure =
        check("mutation-doorbell-fence", &cfg(), harness).expect_failure("mutation-doorbell-fence");
    assert_eq!(
        failure.kind,
        FailureKind::Deadlock,
        "expected a lost wakeup"
    );
    assert_replays("mutation-doorbell-fence", &failure, harness);
}

/// Demoting the consumer's Acquire load of the published `head` to
/// Relaxed severs the happens-before edge to the slot write: the payload
/// read races with the producer's write.
#[test]
fn mutation_relaxed_publish_load_is_a_race() {
    let _g = serial();
    mutation::RELAXED_PUBLISH_LOAD.store(true, std::sync::atomic::Ordering::Relaxed);
    let harness = || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            tx.send(7).unwrap();
        });
        loop {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, 7);
                    break;
                }
                Err(TryRecvError::Empty) => thread::yield_now(),
                Err(TryRecvError::Disconnected) => panic!("producer vanished"),
            }
        }
        t.join().unwrap();
    };
    let failure = check("mutation-relaxed-publish", &cfg(), harness)
        .expect_failure("mutation-relaxed-publish");
    assert_eq!(
        failure.kind,
        FailureKind::DataRace,
        "expected a payload race"
    );
    assert_replays("mutation-relaxed-publish", &failure, harness);
}

/// Publishing the advanced tail *before* reading the slot frees it for
/// the producer while the payload is still being taken: on a full ring
/// the producer's next write races the consumer's in-progress read.
#[test]
fn mutation_early_tail_publish_is_a_race() {
    let _g = serial();
    mutation::EARLY_TAIL_PUBLISH.store(true, std::sync::atomic::Ordering::Relaxed);
    let harness = || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            // Three items through a capacity-2 ring: the third send reuses
            // the slot the consumer's first (mutated) take is reading.
            for i in 0..3 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..3 {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().unwrap();
    };
    let failure =
        check("mutation-early-tail", &cfg(), harness).expect_failure("mutation-early-tail");
    assert_eq!(
        failure.kind,
        FailureKind::DataRace,
        "expected a slot reuse race"
    );
    assert_replays("mutation-early-tail", &failure, harness);
}

/// Testing disconnection before draining in `chan::recv` resurrects the
/// lost-final-message bug: the sender's last message and its drop arrive
/// as one wakeup, and the mutated order returns `RecvError` first.
#[test]
fn mutation_chan_disconnect_before_drain_loses_message() {
    let _g = serial();
    mutation::CHAN_DISCONNECT_BEFORE_DRAIN.store(true, std::sync::atomic::Ordering::Relaxed);
    let harness = || {
        let (tx, rx) = chan::channel();
        let t = thread::spawn(move || {
            tx.send(42u32).unwrap();
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, vec![42], "final message lost across disconnect");
    };
    let failure = check("mutation-chan-disconnect", &cfg(), harness)
        .expect_failure("mutation-chan-disconnect");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "expected the lost-message assert"
    );
    assert_replays("mutation-chan-disconnect", &failure, harness);
}

/// The unmutated configurations of the same four harnesses pass (checked
/// above); this meta-test pins that arming + resetting flags leaves no
/// residue for later tests in this binary.
#[test]
fn mutation_reset_leaves_clean_state() {
    let _g = serial();
    mutation::DOORBELL_FENCE_ACQREL.store(true, std::sync::atomic::Ordering::Relaxed);
    mutation::reset_all();
    let report = check("mutation-reset-clean", &cfg(), || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || tx.send(1).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
    });
    report.assert_pass("mutation-reset-clean");
}

/// `DecisionKind`/`VecDeque` imports are exercised here to keep the test
/// self-contained if harnesses above are pruned during triage.
#[test]
fn mc_try_send_batch_under_model() {
    let _g = serial();
    let report = check("mc-try-send-batch", &cfg(), || {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let t = thread::spawn(move || {
            let mut q: VecDeque<u32> = (0..3).collect();
            while !q.is_empty() {
                match tx.try_send_batch(&mut q) {
                    Ok(_) => thread::yield_now(),
                    Err(_) => panic!("receiver vanished"),
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 3 {
            match rx.recv() {
                Ok(v) => got.push(v),
                Err(_) => break,
            }
        }
        t.join().unwrap();
        assert_eq!(got, vec![0, 1, 2], "partial batches lost or reordered");
    });
    report.assert_pass("mc-try-send-batch");
    assert!(report.complete, "batch space must be fully explored");
}
