//! Litmus self-tests for the checker: tiny, hand-analyzable programs with
//! known-good and known-bad variants. These validate the *checker* (the
//! scheduler, the stale-value model, the detectors, replay) before it is
//! trusted to validate the mssp transport.

use std::sync::Arc;

use mssp_check::shim::atomic::{fence, AtomicUsize, Ordering};
use mssp_check::shim::cell::UnsafeCell;
use mssp_check::shim::{Condvar, Mutex};
use mssp_check::{check, leak::Tracked, replay, thread, Config, FailureKind, Mode, Trace};

fn cfg() -> Config {
    Config {
        // Self-tests are tiny; give them generous bounds so the known
        // outcomes are certainly inside the explored space.
        preemption_bound: 3,
        stale_read_bound: 2,
        trace_dir: None,
        ..Config::default()
    }
}

/// Store buffering (Dekker): with only Relaxed accesses both threads may
/// read 0 — the checker must *find* that outcome (via stale reads), which
/// the harness turns into a panic counterexample.
#[test]
fn store_buffering_relaxed_finds_both_stale() {
    let report = check("litmus-sb-relaxed", &cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        x.store(99, Ordering::Relaxed); // distinct value; never observed as 1
        y.store(1, Ordering::Relaxed);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        // r1: main's own coherence forces 99 unless t's 1 lands after;
        // the forbidden-under-SC outcome is r1 != 1 && r2 == 0.
        assert!(r2 == 1 || r1 == 1, "store-buffering outcome reached");
    });
    let failure = report.expect_failure("litmus-sb-relaxed");
    assert_eq!(failure.kind, FailureKind::Panic);
}

/// The same shape with SeqCst fences between store and load must pass:
/// at least one thread is forced to observe the other's store.
#[test]
fn store_buffering_with_seqcst_fences_passes() {
    let report = check("litmus-sb-seqcst", &cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(
            r1 == 1 || r2 == 1,
            "SeqCst fences must forbid the both-stale outcome"
        );
    });
    report.assert_pass("litmus-sb-seqcst");
    assert!(report.complete, "litmus space should be fully explored");
}

/// Message passing through a Release store / Acquire load is race-free.
#[test]
fn message_passing_release_acquire_passes() {
    let report = check("litmus-mp-relacq", &cfg(), || {
        struct Chan {
            data: UnsafeCell<u64>,
            flag: AtomicUsize,
        }
        unsafe impl Sync for Chan {}
        unsafe impl Send for Chan {}
        let c = Arc::new(Chan {
            data: UnsafeCell::new(0),
            flag: AtomicUsize::new(0),
        });
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.data.with_mut(|p| unsafe { *p = 42 });
            c2.flag.store(1, Ordering::Release);
        });
        if c.flag.load(Ordering::Acquire) == 1 {
            let v = c.data.with(|p| unsafe { *p });
            assert_eq!(v, 42, "acquire load must see the published data");
        }
        t.join().unwrap();
    });
    report.assert_pass("litmus-mp-relacq");
}

/// Demote the Acquire to Relaxed and the data read races with the write —
/// found by the vector-clock detector, not by luck.
#[test]
fn message_passing_relaxed_flag_is_a_race() {
    let report = check("litmus-mp-relaxed", &cfg(), || {
        struct Chan {
            data: UnsafeCell<u64>,
            flag: AtomicUsize,
        }
        unsafe impl Sync for Chan {}
        unsafe impl Send for Chan {}
        let c = Arc::new(Chan {
            data: UnsafeCell::new(0),
            flag: AtomicUsize::new(0),
        });
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.data.with_mut(|p| unsafe { *p = 42 });
            c2.flag.store(1, Ordering::Relaxed);
        });
        if c.flag.load(Ordering::Relaxed) == 1 {
            c.data.with(|p| unsafe { *p });
        }
        t.join().unwrap();
    });
    let failure = report.expect_failure("litmus-mp-relaxed");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

/// A parked thread nobody unparks is a deadlock, not a hang.
#[test]
fn park_without_unpark_is_deadlock() {
    let report = check("litmus-park-deadlock", &cfg(), || {
        let t = thread::spawn(|| {
            thread::park();
        });
        t.join().unwrap();
    });
    let failure = report.expect_failure("litmus-park-deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// Unprotected concurrent counter increments race; mutex-protected ones
/// don't (and the mutex edge is a real happens-before edge).
#[test]
fn counter_without_lock_races_with_lock_passes() {
    let racy = check("litmus-counter-racy", &cfg(), || {
        // The unsynchronized sharing is the point of the test: the
        // checker must flag it as a data race.
        #[allow(clippy::arc_with_non_send_sync)]
        let c = Arc::new(UnsafeCell::new(0u64));
        struct SendCell(Arc<UnsafeCell<u64>>);
        unsafe impl Send for SendCell {}
        let c2 = SendCell(Arc::clone(&c));
        let t = thread::spawn(move || {
            // Use the wrapper as a whole value so the closure captures
            // `SendCell` (Send), not the disjoint `Arc` field (RFC 2229
            // captures through destructuring patterns are field-precise).
            let wrapper = c2;
            wrapper.0.with_mut(|p| unsafe { *p += 1 });
        });
        c.with_mut(|p| unsafe { *p += 1 });
        t.join().unwrap();
    });
    assert_eq!(
        racy.expect_failure("litmus-counter-racy").kind,
        FailureKind::DataRace
    );

    let locked = check("litmus-counter-locked", &cfg(), || {
        let c = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *c.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*c.lock().unwrap(), 2);
    });
    locked.assert_pass("litmus-counter-locked");
}

/// Condvar send/recv with the drain in the right order passes; the model
/// must explore the wakeup/timing interleavings without losing the signal.
#[test]
fn condvar_handoff_passes() {
    let report = check("litmus-condvar", &cfg(), || {
        struct Slot {
            value: Mutex<Option<u64>>,
            ready: Condvar,
        }
        let s = Arc::new(Slot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        });
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            *s2.value.lock().unwrap() = Some(7);
            s2.ready.notify_one();
        });
        let mut guard = s.value.lock().unwrap();
        while guard.is_none() {
            guard = s.ready.wait(guard).unwrap();
        }
        assert_eq!(*guard, Some(7));
        drop(guard);
        t.join().unwrap();
    });
    report.assert_pass("litmus-condvar");
}

/// Leak detection: a tracked value that is forgotten must be reported.
#[test]
fn forgotten_tracked_value_is_a_leak() {
    let report = check("litmus-leak", &cfg(), || {
        let v = Tracked::new("forgotten");
        std::mem::forget(v);
    });
    let failure = report.expect_failure("litmus-leak");
    assert_eq!(failure.kind, FailureKind::Leak);
}

/// Double-free detection: duplicating a tracked value bit-for-bit (what a
/// buggy ring does when a slot is read twice) must be reported.
#[test]
fn duplicated_tracked_value_is_a_double_free() {
    let report = check("litmus-double-free", &cfg(), || {
        let v = Tracked::new("duplicated");
        // Simulate a ring handing the same slot out twice.
        let dup = unsafe { std::ptr::read(&v) };
        drop(v);
        drop(dup);
    });
    let failure = report.expect_failure("litmus-double-free");
    assert_eq!(failure.kind, FailureKind::DoubleFree);
}

/// A failing trace replays to the same failure, and the printed form
/// parses back to the same trace.
#[test]
fn failing_trace_replays_exactly() {
    let harness = || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Release);
        });
        let seen = x.load(Ordering::Acquire);
        t.join().unwrap();
        // Fails only under schedules where the store lands first.
        assert_eq!(seen, 0, "observed the spawned store");
    };
    let failure = check("litmus-replay", &cfg(), harness).expect_failure("litmus-replay");
    let parsed = Trace::parse(&failure.trace.to_string()).expect("trace must parse");
    assert_eq!(parsed, failure.trace);
    let replayed = replay(&cfg(), &parsed, harness).expect("replay must reproduce the failure");
    assert_eq!(replayed.kind, FailureKind::Panic);
    assert_eq!(replayed.trace, failure.trace);
}

/// Spin loops built on `yield_now` terminate under DFS (yield fairness) —
/// and the spun-for value is eventually observed.
#[test]
fn yield_spin_loop_terminates() {
    let report = check("litmus-yield-spin", &cfg(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        t.join().unwrap();
    });
    report.assert_pass("litmus-yield-spin");
}

/// Random sampling mode finds an easy bug too (smoke test for the rng
/// path).
#[test]
fn random_mode_finds_easy_bug() {
    let mut c = cfg();
    c.mode = Mode::Random {
        iterations: 200,
        seed: 0x5EED_CAFE,
    };
    let report = check("litmus-random", &c, || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Release));
        assert_eq!(x.load(Ordering::Acquire), 0, "store may land first");
        t.join().unwrap();
    });
    assert_eq!(
        report.expect_failure("litmus-random").kind,
        FailureKind::Panic
    );
}
