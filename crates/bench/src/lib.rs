//! # mssp-bench
//!
//! The experiment harness: shared plumbing used by the per-table /
//! per-figure binaries (`t1_workloads`, `f2_distillation`, `f3_speedup`,
//! ...) that regenerate the evaluation of the MSSP paper, plus the
//! Criterion micro-benchmarks.
//!
//! Each binary prints one table or bar-figure in a uniform format; see
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mssp_analysis::Profile;
use mssp_core::{EngineConfig, EngineStats, SquashReason, SquashSample};
use mssp_distill::{distill, DistillConfig, DistillStats, Distilled};
use mssp_isa::Program;
use mssp_machine::{Cell, SeqMachine};
use mssp_timing::{
    run_baseline, run_mssp, run_mssp_with_engine_setup, speedup, BaselineRun, TimingConfig,
    TimingRun,
};
use mssp_workloads::{Workload, CHECKSUM_REG, TRAIN_SEED};

/// A complete measurement of one workload under one configuration.
#[derive(Debug)]
pub struct Evaluation {
    /// The workload evaluated.
    pub workload: &'static Workload,
    /// Scale used.
    pub scale: u64,
    /// Sequential dynamic instruction count.
    pub seq_instructions: u64,
    /// Baseline uniprocessor timing run.
    pub baseline: BaselineRun,
    /// MSSP timing run.
    pub mssp: TimingRun,
    /// Static distillation statistics.
    pub distill: DistillStats,
    /// Number of task boundaries selected.
    pub boundary_count: usize,
    /// MSSP speedup over the baseline.
    pub speedup: f64,
}

/// Profiles, distills and measures one workload.
///
/// # Panics
///
/// Panics on any pipeline failure — the harness treats those as fatal
/// (they indicate a broken build, not a measurement).
#[must_use]
pub fn evaluate(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let program = workload.program(scale);
    let (distilled, profile) = prepare(&program, dcfg);
    let baseline = run_baseline(&program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: profile.dynamic_instructions(),
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// Profiles and distills a program, returning both artifacts.
#[must_use]
pub fn prepare(program: &Program, dcfg: &DistillConfig) -> (Distilled, Profile) {
    let profile = Profile::collect(program, u64::MAX).expect("profiling run");
    let distilled = distill(program, &profile, dcfg).expect("distillation");
    (distilled, profile)
}

/// Like [`evaluate`], but *cross-input*: the profile is collected on the
/// workload's training input ([`TRAIN_SEED`]) while distillation target
/// and measurement use the reference input — the paper's train/ref
/// methodology. Both binaries share one text layout (only data-generation
/// constants differ), so the PC-keyed profile transfers.
///
/// # Panics
///
/// Panics on pipeline failures or if the train/ref text layouts diverge.
#[must_use]
pub fn evaluate_cross_input(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let eval_program = workload.program(scale);
    let train_program = workload.program_with_seed(scale, TRAIN_SEED);
    assert_eq!(
        train_program.len(),
        eval_program.len(),
        "{}: train/ref text layouts diverged",
        workload.name
    );
    let profile = Profile::collect(&train_program, u64::MAX).expect("training run");
    let distilled = distill(&eval_program, &profile, dcfg).expect("distillation");
    let baseline = run_baseline(&eval_program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&eval_program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: baseline.instructions,
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// One workload's row in the machine-readable speedup benchmark
/// (`BENCH_speedup.json`): the numbers that track the perf trajectory of
/// the distiller across PRs.
#[derive(Debug, Clone)]
pub struct SpeedupRecord {
    /// Workload name.
    pub name: String,
    /// Scale the workload ran at.
    pub scale: u64,
    /// MSSP speedup over the uniprocessor baseline (default distillation).
    pub speedup: f64,
    /// Distilled/original dynamic instruction ratio (master instructions /
    /// committed instructions) under the default pass pipeline. Lower is
    /// better; this is the distiller's primary quality signal.
    pub dyn_ratio: f64,
    /// The same ratio with the pipeline reduced to liveness DCE only —
    /// the distiller's behaviour before the optimizing pass pipeline — so
    /// every record carries its own improvement baseline.
    pub dyn_ratio_dce_only: f64,
    /// Squash events per thousand spawned tasks in the headline run
    /// (slice-feedback distillation, live-in predictor on).
    pub squash_per_1k_tasks: f64,
    /// The same rate with the squash-rate attack disabled — feedback-free
    /// distillation (no slices) and the predictor off — so every record
    /// carries its own squash-rate improvement baseline.
    pub squash_per_1k_tasks_baseline: f64,
    /// Verified live-in predictor accuracy in the headline run
    /// (hits / (hits + misses); `0` when nothing was injected).
    pub predictor_accuracy: f64,
    /// Pre-computation slices the feedback distillation emitted.
    pub slices_emitted: usize,
    /// Static instructions in the original text.
    pub static_original: usize,
    /// Static instructions in the distilled text (default pipeline).
    pub static_distilled: usize,
}

/// Measures every bundled workload at `default_scale / divisor` and
/// returns one [`SpeedupRecord`] per workload, in bundle order.
///
/// Each workload runs the full squash-rate-attack pipeline: a
/// feedback-free measurement run with the live-in predictor off
/// establishes the baseline squash rate and collects squash samples,
/// those samples are threaded back into the profile as slice feedback
/// ([`apply_slice_feedback`]), and the headline numbers come from a
/// re-distillation carrying pre-computation slices, run with the
/// predictor on.
///
/// # Panics
///
/// Panics on any harness failure (broken build, not a measurement).
#[must_use]
pub fn collect_speedup_records(divisor: u64) -> Vec<SpeedupRecord> {
    let tcfg = TimingConfig::default();
    let default_cfg = DistillConfig::default();
    let dce_only_cfg = DistillConfig {
        passes: mssp_distill::PassConfig::dce_only(),
        ..DistillConfig::default()
    };
    mssp_workloads::workloads()
        .iter()
        .map(|w| {
            let scale = harness_scale(w, divisor);
            let program = w.program(scale);
            // Attack-off baseline: feedback-free distillation (no
            // slices), predictor disabled, squash samples recorded.
            let (distilled_off, mut profile) = prepare(&program, &default_cfg);
            let off_engine = EngineConfig {
                enable_predictor: false,
                ..tcfg.engine
            };
            let off =
                run_mssp_with_engine_setup(&program, &distilled_off, &tcfg, off_engine, |e| {
                    e.enable_squash_samples(512);
                })
                .expect("baseline mssp run");
            let squash_per_1k_tasks_baseline = squash_per_1k_tasks(&off.run.stats);
            // Thread the observed squashes back as slice feedback and
            // re-distill: this is where spawn guards and live-in slices
            // are born.
            apply_slice_feedback(
                &mut profile,
                off.run.squash_samples.as_deref().unwrap_or(&[]),
            );
            let distilled = distill(&program, &profile, &default_cfg).expect("distillation");
            // Headline run: slices + predictor on.
            let baseline = run_baseline(&program, &tcfg, u64::MAX).expect("baseline runs");
            let mssp = run_mssp(&program, &distilled, &tcfg).expect("mssp runs");
            assert_eq!(
                baseline.state.reg(CHECKSUM_REG),
                mssp.run.state.reg(CHECKSUM_REG),
                "{}: checksum mismatch — correctness bug",
                w.name
            );
            let dce = evaluate(w, scale, &dce_only_cfg, &tcfg);
            let stats = &mssp.run.stats;
            SpeedupRecord {
                name: w.name.to_string(),
                scale,
                speedup: speedup(baseline.cycles, mssp.run.cycles),
                dyn_ratio: stats.master_instructions as f64 / stats.committed_instructions as f64,
                dyn_ratio_dce_only: dyn_ratio(&dce),
                squash_per_1k_tasks: squash_per_1k_tasks(stats),
                squash_per_1k_tasks_baseline,
                predictor_accuracy: stats.predictor_accuracy(),
                slices_emitted: distilled.stats().slices_emitted,
                static_original: distilled.stats().original_static,
                static_distilled: distilled.stats().distilled_static,
            }
        })
        .collect()
}

/// Squash events per thousand spawned tasks; `0` for spawn-free runs.
#[must_use]
pub fn squash_per_1k_tasks(stats: &EngineStats) -> f64 {
    if stats.spawned_tasks == 0 {
        0.0
    } else {
        1000.0 * stats.squash_events() as f64 / stats.spawned_tasks as f64
    }
}

/// Threads squash observations from a measurement run back into the
/// profile as slice feedback — the distiller's input for the
/// pre-computation slice pass. Live-in mismatch register cells become
/// hard live-ins; wrong-path events record the architected PC the master
/// failed to predict.
pub fn apply_slice_feedback(profile: &mut Profile, samples: &[SquashSample]) {
    for s in samples {
        match s.reason {
            SquashReason::LiveInMismatch => {
                for &(cell, _, _) in &s.cells {
                    if let Cell::Reg(r) = cell {
                        profile.mark_hard_live_in(r);
                    }
                }
            }
            SquashReason::WrongPath => profile.mark_wrong_path(s.arch_pc),
            SquashReason::Overrun | SquashReason::Fault => {}
        }
    }
}

/// Master-instructions / committed-instructions for one evaluation — the
/// distilled/original dynamic instruction ratio.
#[must_use]
pub fn dyn_ratio(e: &Evaluation) -> f64 {
    e.mssp.run.stats.master_instructions as f64 / e.mssp.run.stats.committed_instructions as f64
}

/// Renders [`SpeedupRecord`]s as the `BENCH_speedup.json` document
/// (hand-rolled: the workspace is std-only).
#[must_use]
pub fn render_speedup_json(records: &[SpeedupRecord], divisor: u64) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mssp-bench-speedup/v2\",\n");
    out.push_str(&format!("  \"scale_divisor\": {divisor},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"speedup\": {}, \"dyn_ratio\": {}, \
             \"dyn_ratio_dce_only\": {}, \"squash_per_1k_tasks\": {}, \
             \"squash_per_1k_tasks_baseline\": {}, \"predictor_accuracy\": {}, \
             \"slices_emitted\": {}, \
             \"static_original\": {}, \"static_distilled\": {}}}{}\n",
            r.name,
            r.scale,
            num(r.speedup),
            num(r.dyn_ratio),
            num(r.dyn_ratio_dce_only),
            num(r.squash_per_1k_tasks),
            num(r.squash_per_1k_tasks_baseline),
            num(r.predictor_accuracy),
            r.slices_emitted,
            r.static_original,
            r.static_distilled,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let geo = |f: fn(&SpeedupRecord) -> f64| {
        mssp_stats::geomean(&records.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "  \"geomean_speedup\": {},\n",
        num(geo(|r| r.speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_dyn_ratio\": {},\n",
        num(geo(|r| r.dyn_ratio))
    ));
    out.push_str(&format!(
        "  \"geomean_dyn_ratio_dce_only\": {}\n",
        num(geo(|r| r.dyn_ratio_dce_only))
    ));
    out.push_str("}\n");
    out
}

/// Worker counts measured by the threaded-throughput benchmark.
pub const THREADED_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One worker-count measurement inside a [`ThreadedRecord`].
#[derive(Debug, Clone)]
pub struct ThreadedPoint {
    /// OS-thread slave count for this run.
    pub workers: usize,
    /// Best-of-`repeats` wall-clock seconds for the whole run.
    pub secs: f64,
    /// Committed tasks per wall-clock second.
    pub tasks_per_sec: f64,
    /// Wall-clock speedup over the 1-worker point of the same workload.
    pub speedup_vs_1w: f64,
}

/// One workload's row in the machine-readable threaded-throughput
/// benchmark (`BENCH_threaded.json`): wall-clock scaling of the real
/// OS-thread executor plus the O(delta) commit-pipeline counters that
/// track how much verify work the coordinator actually performs.
#[derive(Debug, Clone)]
pub struct ThreadedRecord {
    /// Workload name.
    pub name: String,
    /// Scale the workload ran at.
    pub scale: u64,
    /// Sequential dynamic instruction count at that scale.
    pub seq_instructions: u64,
    /// One point per entry of [`THREADED_WORKER_COUNTS`].
    pub points: Vec<ThreadedPoint>,
    /// Coordinator re-check ratio from the 4-worker run: live-in cells
    /// re-checked / live-in cells recorded. Lower is better — it is the
    /// fraction of the memoization test the coordinator still pays for.
    pub recheck_ratio: f64,
    /// Fraction of committed tasks whose verification was settled
    /// entirely by the worker-side pre-verification (4-worker run).
    pub pre_verified_fraction: f64,
    /// Full snapshots materialized by the coordinator (4-worker run).
    pub snapshots_materialized: u64,
    /// Incremental commit deltas published instead (4-worker run).
    pub deltas_published: u64,
}

/// Measures every bundled workload with the threaded executor at
/// `default_scale / divisor`, at each of [`THREADED_WORKER_COUNTS`],
/// keeping the best of `repeats` wall-clock runs per point.
///
/// # Panics
///
/// Panics on any harness failure, including a checksum mismatch between
/// the threaded executor and the sequential machine (a correctness bug,
/// not a measurement).
#[must_use]
pub fn collect_threaded_records(divisor: u64, repeats: u32) -> Vec<ThreadedRecord> {
    assert!(repeats > 0, "need at least one run per point");
    mssp_workloads::workloads()
        .iter()
        .map(|w| {
            let scale = harness_scale(w, divisor);
            let program = w.program(scale);
            let (distilled, _) = prepare(&program, &DistillConfig::default());
            let mut seq = SeqMachine::boot(&program);
            seq.run(u64::MAX).expect("workload halts");
            let expected = seq.state().reg(CHECKSUM_REG);

            let mut points = Vec::new();
            let mut four_worker_stats = None;
            for &workers in &THREADED_WORKER_COUNTS {
                let cfg = mssp_core::EngineConfig {
                    num_slaves: workers,
                    ..mssp_core::EngineConfig::default()
                };
                let mut best: Option<mssp_core::ThreadedRun> = None;
                for _ in 0..repeats {
                    let run = mssp_core::run_threaded(&program, &distilled, cfg)
                        .expect("threaded run succeeds");
                    assert_eq!(
                        run.state.reg(CHECKSUM_REG),
                        expected,
                        "{}: threaded checksum mismatch — correctness bug",
                        w.name
                    );
                    if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                        best = Some(run);
                    }
                }
                let run = best.expect("repeats > 0");
                let secs = run.elapsed.as_secs_f64().max(1e-9);
                let tasks_per_sec = run.stats.committed_tasks as f64 / secs;
                let speedup_vs_1w = points
                    .first()
                    .map_or(1.0, |p: &ThreadedPoint| p.secs / secs);
                points.push(ThreadedPoint {
                    workers,
                    secs,
                    tasks_per_sec,
                    speedup_vs_1w,
                });
                if workers == 4 {
                    four_worker_stats = Some(run.stats);
                }
            }
            let stats = four_worker_stats.expect("worker counts include 4");
            let pre_verified_fraction = if stats.committed_tasks == 0 {
                0.0
            } else {
                stats.pre_verified_tasks as f64 / stats.committed_tasks as f64
            };
            ThreadedRecord {
                name: w.name.to_string(),
                scale,
                seq_instructions: seq.instructions(),
                points,
                recheck_ratio: stats.recheck_ratio(),
                pre_verified_fraction,
                snapshots_materialized: stats.snapshots_materialized,
                deltas_published: stats.deltas_published,
            }
        })
        .collect()
}

/// Geometric-mean speedup over 1 worker at `workers`, across records.
#[must_use]
pub fn threaded_geomean_speedup(records: &[ThreadedRecord], workers: usize) -> f64 {
    let col: Vec<f64> = records
        .iter()
        .filter_map(|r| {
            r.points
                .iter()
                .find(|p| p.workers == workers)
                .map(|p| p.speedup_vs_1w)
        })
        .collect();
    mssp_stats::geomean(&col)
}

/// Renders [`ThreadedRecord`]s as the `BENCH_threaded.json` document
/// (hand-rolled: the workspace is std-only). `available_parallelism` is
/// recorded so consumers can tell real multi-core scaling from runs on
/// boxes where the OS serialized every worker.
#[must_use]
pub fn render_threaded_json(
    records: &[ThreadedRecord],
    divisor: u64,
    available_parallelism: usize,
) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mssp-bench-threaded/v1\",\n");
    out.push_str(&format!("  \"scale_divisor\": {divisor},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {available_parallelism},\n"
    ));
    out.push_str(&format!(
        "  \"worker_counts\": [{}],\n",
        THREADED_WORKER_COUNTS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"seq_instructions\": {},\n",
            r.name, r.scale, r.seq_instructions
        ));
        out.push_str("     \"runs\": [");
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "{{\"workers\": {}, \"secs\": {}, \"tasks_per_sec\": {}, \
                 \"speedup_vs_1w\": {}}}{}",
                p.workers,
                num(p.secs),
                num(p.tasks_per_sec),
                num(p.speedup_vs_1w),
                if j + 1 < r.points.len() { ", " } else { "" },
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "     \"recheck_ratio\": {}, \"pre_verified_fraction\": {}, \
             \"snapshots_materialized\": {}, \"deltas_published\": {}}}{}\n",
            num(r.recheck_ratio),
            num(r.pre_verified_fraction),
            r.snapshots_materialized,
            r.deltas_published,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    for &workers in &THREADED_WORKER_COUNTS[1..] {
        out.push_str(&format!(
            "  \"geomean_speedup_x{}\": {},\n",
            workers,
            num(threaded_geomean_speedup(records, workers))
        ));
    }
    let recheck: Vec<f64> = records.iter().map(|r| r.recheck_ratio).collect();
    out.push_str(&format!(
        "  \"geomean_recheck_ratio\": {}\n",
        num(mssp_stats::geomean(&recheck))
    ));
    out.push_str("}\n");
    out
}

/// Sequential dynamic instruction count of a program.
#[must_use]
pub fn seq_instructions(program: &Program) -> u64 {
    let mut m = SeqMachine::boot(program);
    m.run(u64::MAX).expect("program runs");
    m.instructions()
}

/// The scale used by the experiment harness for each workload: the
/// default scale, shrunk by `divisor` for the quicker sweep experiments.
#[must_use]
pub fn harness_scale(workload: &Workload, divisor: u64) -> u64 {
    (workload.default_scale / divisor.max(1)).max(256)
}

/// Prints the standard experiment header.
pub fn print_header(id: &str, title: &str, params: &str) {
    println!("== {id}: {title} ==");
    if !params.is_empty() {
        println!("   {params}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_workloads::workloads;

    #[test]
    fn evaluate_produces_consistent_numbers() {
        let w = &workloads()[0];
        let eval = evaluate(
            w,
            1_024,
            &DistillConfig::default(),
            &TimingConfig::default(),
        );
        assert!(eval.speedup > 0.0);
        assert_eq!(
            eval.mssp.run.stats.committed_instructions,
            eval.baseline.instructions
        );
        assert!(eval.boundary_count > 0);
    }

    #[test]
    fn speedup_json_is_well_formed() {
        let records = vec![SpeedupRecord {
            name: "gzip_like".to_string(),
            scale: 1024,
            speedup: 1.25,
            dyn_ratio: 0.62,
            dyn_ratio_dce_only: 0.70,
            squash_per_1k_tasks: 3.5,
            squash_per_1k_tasks_baseline: 7.0,
            predictor_accuracy: 0.875,
            slices_emitted: 2,
            static_original: 500,
            static_distilled: 320,
        }];
        let json = render_speedup_json(&records, 16);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"mssp-bench-speedup/v2\""));
        assert!(json.contains("\"dyn_ratio\": 0.620000"));
        assert!(json.contains("\"squash_per_1k_tasks_baseline\": 7.000000"));
        assert!(json.contains("\"predictor_accuracy\": 0.875000"));
        assert!(json.contains("\"slices_emitted\": 2"));
        assert!(json.contains("\"geomean_dyn_ratio_dce_only\": 0.700000"));
        // Balanced braces/brackets — a cheap structural sanity check for
        // the hand-rolled emitter.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn threaded_json_is_well_formed() {
        let records = vec![ThreadedRecord {
            name: "gzip_like".to_string(),
            scale: 2048,
            seq_instructions: 123_456,
            points: THREADED_WORKER_COUNTS
                .iter()
                .enumerate()
                .map(|(i, &workers)| ThreadedPoint {
                    workers,
                    secs: 0.5 / (i + 1) as f64,
                    tasks_per_sec: 100.0 * (i + 1) as f64,
                    speedup_vs_1w: (i + 1) as f64,
                })
                .collect(),
            recheck_ratio: 0.25,
            pre_verified_fraction: 0.75,
            snapshots_materialized: 3,
            deltas_published: 97,
        }];
        let json = render_threaded_json(&records, 8, 4);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"mssp-bench-threaded/v1\""));
        assert!(json.contains("\"available_parallelism\": 4"));
        assert!(json.contains("\"worker_counts\": [1, 2, 4, 8]"));
        assert!(json.contains("\"recheck_ratio\": 0.250000"));
        assert!(json.contains("\"geomean_speedup_x4\": 3.000000"));
        assert!(json.contains("\"geomean_recheck_ratio\": 0.250000"));
        // Balanced braces/brackets — a cheap structural sanity check for
        // the hand-rolled emitter.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(threaded_geomean_speedup(&records, 2), 2.0);
    }

    #[test]
    fn harness_scale_has_floor() {
        let w = &workloads()[0];
        assert_eq!(harness_scale(w, u64::MAX), 256);
        assert_eq!(harness_scale(w, 1), w.default_scale);
    }
}
