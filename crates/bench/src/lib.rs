//! # mssp-bench
//!
//! The experiment harness: shared plumbing used by the per-table /
//! per-figure binaries (`t1_workloads`, `f2_distillation`, `f3_speedup`,
//! ...) that regenerate the evaluation of the MSSP paper, plus the
//! Criterion micro-benchmarks.
//!
//! Each binary prints one table or bar-figure in a uniform format; see
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mssp_analysis::Profile;
use mssp_core::{
    AdaptiveConfig, AdaptiveController, EngineConfig, EngineStats, Recompiler, SquashReason,
    SquashSample,
};
use mssp_distill::{distill, DistillConfig, DistillStats, Distilled};
use mssp_isa::Program;
use mssp_lint::{redistill_validated, LintConfig};
use mssp_machine::{Cell, SeqMachine};
use mssp_timing::{
    run_baseline, run_mssp, run_mssp_with_engine_setup, speedup, BaselineRun, TimingConfig,
    TimingRun,
};
use mssp_workloads::{Workload, CHECKSUM_REG, TRAIN_SEED};

/// A complete measurement of one workload under one configuration.
#[derive(Debug)]
pub struct Evaluation {
    /// The workload evaluated.
    pub workload: &'static Workload,
    /// Scale used.
    pub scale: u64,
    /// Sequential dynamic instruction count.
    pub seq_instructions: u64,
    /// Baseline uniprocessor timing run.
    pub baseline: BaselineRun,
    /// MSSP timing run.
    pub mssp: TimingRun,
    /// Static distillation statistics.
    pub distill: DistillStats,
    /// Number of task boundaries selected.
    pub boundary_count: usize,
    /// MSSP speedup over the baseline.
    pub speedup: f64,
}

/// Profiles, distills and measures one workload.
///
/// # Panics
///
/// Panics on any pipeline failure — the harness treats those as fatal
/// (they indicate a broken build, not a measurement).
#[must_use]
pub fn evaluate(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let program = workload.program(scale);
    let (distilled, profile) = prepare(&program, dcfg);
    let baseline = run_baseline(&program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: profile.dynamic_instructions(),
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// Profiles and distills a program, returning both artifacts.
#[must_use]
pub fn prepare(program: &Program, dcfg: &DistillConfig) -> (Distilled, Profile) {
    let profile = Profile::collect(program, u64::MAX).expect("profiling run");
    let distilled = distill(program, &profile, dcfg).expect("distillation");
    (distilled, profile)
}

/// Like [`evaluate`], but *cross-input*: the profile is collected on the
/// workload's training input ([`TRAIN_SEED`]) while distillation target
/// and measurement use the reference input — the paper's train/ref
/// methodology. Both binaries share one text layout (only data-generation
/// constants differ), so the PC-keyed profile transfers.
///
/// # Panics
///
/// Panics on pipeline failures or if the train/ref text layouts diverge.
#[must_use]
pub fn evaluate_cross_input(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let eval_program = workload.program(scale);
    let train_program = workload.program_with_seed(scale, TRAIN_SEED);
    assert_eq!(
        train_program.len(),
        eval_program.len(),
        "{}: train/ref text layouts diverged",
        workload.name
    );
    let profile = Profile::collect(&train_program, u64::MAX).expect("training run");
    let distilled = distill(&eval_program, &profile, dcfg).expect("distillation");
    let baseline = run_baseline(&eval_program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&eval_program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: baseline.instructions,
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// One workload's row in the machine-readable speedup benchmark
/// (`BENCH_speedup.json`): the numbers that track the perf trajectory of
/// the distiller across PRs.
#[derive(Debug, Clone)]
pub struct SpeedupRecord {
    /// Workload name.
    pub name: String,
    /// Scale the workload ran at.
    pub scale: u64,
    /// MSSP speedup over the uniprocessor baseline (default distillation).
    pub speedup: f64,
    /// Distilled/original dynamic instruction ratio (master instructions /
    /// committed instructions) under the default pass pipeline. Lower is
    /// better; this is the distiller's primary quality signal.
    pub dyn_ratio: f64,
    /// The same ratio with the pipeline reduced to liveness DCE only —
    /// the distiller's behaviour before the optimizing pass pipeline — so
    /// every record carries its own improvement baseline.
    pub dyn_ratio_dce_only: f64,
    /// Squash events per thousand spawned tasks in the headline run
    /// (slice-feedback distillation, live-in predictor on).
    pub squash_per_1k_tasks: f64,
    /// The same rate with the squash-rate attack disabled — feedback-free
    /// distillation (no slices) and the predictor off — so every record
    /// carries its own squash-rate improvement baseline.
    pub squash_per_1k_tasks_baseline: f64,
    /// Verified live-in predictor accuracy in the headline run
    /// (hits / (hits + misses); `0` when nothing was injected).
    pub predictor_accuracy: f64,
    /// Pre-computation slices the feedback distillation emitted.
    pub slices_emitted: usize,
    /// Static instructions in the original text.
    pub static_original: usize,
    /// Static instructions in the distilled text (default pipeline).
    pub static_distilled: usize,
}

/// Measures every bundled workload at `default_scale / divisor` and
/// returns one [`SpeedupRecord`] per workload, in bundle order.
///
/// Each workload runs the full squash-rate-attack pipeline: a
/// feedback-free measurement run with the live-in predictor off
/// establishes the baseline squash rate and collects squash samples,
/// those samples are threaded back into the profile as slice feedback
/// ([`apply_slice_feedback`]), and the headline numbers come from a
/// re-distillation carrying pre-computation slices, run with the
/// predictor on.
///
/// # Panics
///
/// Panics on any harness failure (broken build, not a measurement).
#[must_use]
pub fn collect_speedup_records(divisor: u64) -> Vec<SpeedupRecord> {
    let tcfg = TimingConfig::default();
    let default_cfg = DistillConfig::default();
    let dce_only_cfg = DistillConfig {
        passes: mssp_distill::PassConfig::dce_only(),
        ..DistillConfig::default()
    };
    mssp_workloads::workloads()
        .iter()
        .map(|w| {
            let scale = harness_scale(w, divisor);
            let program = w.program(scale);
            // Attack-off baseline: feedback-free distillation (no
            // slices), predictor disabled, squash samples recorded.
            let (distilled_off, mut profile) = prepare(&program, &default_cfg);
            let off_engine = EngineConfig {
                enable_predictor: false,
                ..tcfg.engine
            };
            let off =
                run_mssp_with_engine_setup(&program, &distilled_off, &tcfg, off_engine, |e| {
                    e.enable_squash_samples(512);
                })
                .expect("baseline mssp run");
            let squash_per_1k_tasks_baseline = squash_per_1k_tasks(&off.run.stats);
            // Thread the observed squashes back as slice feedback and
            // re-distill: this is where spawn guards and live-in slices
            // are born.
            apply_slice_feedback(
                &mut profile,
                off.run.squash_samples.as_deref().unwrap_or(&[]),
            );
            let distilled = distill(&program, &profile, &default_cfg).expect("distillation");
            // Headline run: slices + predictor on.
            let baseline = run_baseline(&program, &tcfg, u64::MAX).expect("baseline runs");
            let mssp = run_mssp(&program, &distilled, &tcfg).expect("mssp runs");
            assert_eq!(
                baseline.state.reg(CHECKSUM_REG),
                mssp.run.state.reg(CHECKSUM_REG),
                "{}: checksum mismatch — correctness bug",
                w.name
            );
            let dce = evaluate(w, scale, &dce_only_cfg, &tcfg);
            let stats = &mssp.run.stats;
            SpeedupRecord {
                name: w.name.to_string(),
                scale,
                speedup: speedup(baseline.cycles, mssp.run.cycles),
                dyn_ratio: stats.master_instructions as f64 / stats.committed_instructions as f64,
                dyn_ratio_dce_only: dyn_ratio(&dce),
                squash_per_1k_tasks: squash_per_1k_tasks(stats),
                squash_per_1k_tasks_baseline,
                predictor_accuracy: stats.predictor_accuracy(),
                slices_emitted: distilled.stats().slices_emitted,
                static_original: distilled.stats().original_static,
                static_distilled: distilled.stats().distilled_static,
            }
        })
        .collect()
}

/// Squash events per thousand spawned tasks; `0` for spawn-free runs.
#[must_use]
pub fn squash_per_1k_tasks(stats: &EngineStats) -> f64 {
    if stats.spawned_tasks == 0 {
        0.0
    } else {
        1000.0 * stats.squash_events() as f64 / stats.spawned_tasks as f64
    }
}

/// Threads squash observations from a measurement run back into the
/// profile as slice feedback — the distiller's input for the
/// pre-computation slice pass. Live-in mismatch register cells become
/// hard live-ins; wrong-path events record the architected PC the master
/// failed to predict.
pub fn apply_slice_feedback(profile: &mut Profile, samples: &[SquashSample]) {
    for s in samples {
        match s.reason {
            SquashReason::LiveInMismatch => {
                for &(cell, _, _) in &s.cells {
                    if let Cell::Reg(r) = cell {
                        profile.mark_hard_live_in(r);
                    }
                }
            }
            SquashReason::WrongPath => profile.mark_wrong_path(s.arch_pc),
            SquashReason::Overrun | SquashReason::Fault => {}
        }
    }
}

/// Master-instructions / committed-instructions for one evaluation — the
/// distilled/original dynamic instruction ratio.
#[must_use]
pub fn dyn_ratio(e: &Evaluation) -> f64 {
    e.mssp.run.stats.master_instructions as f64 / e.mssp.run.stats.committed_instructions as f64
}

/// Renders [`SpeedupRecord`]s as the `BENCH_speedup.json` document
/// (hand-rolled: the workspace is std-only).
#[must_use]
pub fn render_speedup_json(records: &[SpeedupRecord], divisor: u64) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mssp-bench-speedup/v2\",\n");
    out.push_str(&format!("  \"scale_divisor\": {divisor},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"speedup\": {}, \"dyn_ratio\": {}, \
             \"dyn_ratio_dce_only\": {}, \"squash_per_1k_tasks\": {}, \
             \"squash_per_1k_tasks_baseline\": {}, \"predictor_accuracy\": {}, \
             \"slices_emitted\": {}, \
             \"static_original\": {}, \"static_distilled\": {}}}{}\n",
            r.name,
            r.scale,
            num(r.speedup),
            num(r.dyn_ratio),
            num(r.dyn_ratio_dce_only),
            num(r.squash_per_1k_tasks),
            num(r.squash_per_1k_tasks_baseline),
            num(r.predictor_accuracy),
            r.slices_emitted,
            r.static_original,
            r.static_distilled,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let geo = |f: fn(&SpeedupRecord) -> f64| {
        mssp_stats::geomean(&records.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "  \"geomean_speedup\": {},\n",
        num(geo(|r| r.speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_dyn_ratio\": {},\n",
        num(geo(|r| r.dyn_ratio))
    ));
    out.push_str(&format!(
        "  \"geomean_dyn_ratio_dce_only\": {}\n",
        num(geo(|r| r.dyn_ratio_dce_only))
    ));
    out.push_str("}\n");
    out
}

/// One phase-shifting workload's row in the adaptive re-distillation
/// benchmark (`BENCH_adaptive.json`): a frozen offline distillation vs
/// the online adaptive loop on an input whose behaviour shifts mid-run.
#[derive(Debug, Clone)]
pub struct AdaptiveRecord {
    /// Phase workload name.
    pub name: String,
    /// Scale (phase A iterations) the workload ran at.
    pub scale: u64,
    /// Phase B (post-shift) iterations.
    pub phase_b: u64,
    /// Whole-run dyn-instruction ratio of the frozen offline
    /// distillation (master instructions / committed instructions; the
    /// squash storm after the shift re-executes master work, inflating
    /// it).
    pub frozen_dyn_ratio: f64,
    /// Whole-run squash rate of the frozen run.
    pub frozen_squash_per_1k: f64,
    /// Whole-run dyn-instruction ratio with online adaptation.
    pub adaptive_dyn_ratio: f64,
    /// Whole-run squash rate with online adaptation.
    pub adaptive_squash_per_1k: f64,
    /// Dyn ratio accumulated up to the first hot-swap.
    pub pre_swap_dyn_ratio: f64,
    /// Dyn ratio accumulated after the last hot-swap.
    pub post_swap_dyn_ratio: f64,
    /// Squash rate up to the first hot-swap.
    pub pre_swap_squash_per_1k: f64,
    /// Squash rate after the last hot-swap.
    pub post_swap_squash_per_1k: f64,
    /// Fast-tier recompilations installed.
    pub recompilations_fast: u64,
    /// Full-tier recompilations installed.
    pub recompilations_full: u64,
    /// Hot-swaps installed.
    pub swaps_installed: u64,
    /// Candidates rejected by the segmentation pin or the lint gate.
    pub candidates_rejected: u64,
    /// Recompile attempts that errored outright.
    pub recompile_failures: u64,
    /// Committed-task count at the first swap (0 when none installed).
    pub first_swap_at_tasks: u64,
    /// Largest observed recompile+validate latency, microseconds.
    pub swap_latency_micros_max: u64,
    /// Cycle speedup of the frozen run over the uniprocessor baseline.
    pub speedup_frozen: f64,
    /// Cycle speedup of the adaptive run over the same baseline.
    pub speedup_adaptive: f64,
}

/// One stationary workload's row in the adaptive benchmark: behaviour
/// matching the training profile must trigger no recompilation at all.
#[derive(Debug, Clone)]
pub struct StationaryRecord {
    /// Workload name (from the standard bundle).
    pub name: String,
    /// Scale the workload ran at.
    pub scale: u64,
    /// Recompilations triggered (gated to zero).
    pub recompilations: u64,
    /// Hot-swaps installed (gated to zero).
    pub swaps_installed: u64,
    /// Windows the controller flagged divergent.
    pub divergent_windows: u64,
}

/// Standard-bundle workloads used for the stationary (no-false-trigger)
/// half of the adaptive benchmark.
pub const STATIONARY_WORKLOADS: [&str; 3] = ["gzip_like", "gap_like", "mcf_like"];

/// Builds the adaptive loop's recompiler: the pinned-boundary pipeline
/// behind `mssp-lint`'s full soundness gate, so every candidate the
/// executor may install passed `distill_validated`'s lint battery.
#[must_use]
pub fn validated_recompiler(program: &Program, distilled: &Distilled) -> Recompiler {
    let program = program.clone();
    let dcfg = DistillConfig::default();
    let lcfg = LintConfig::default();
    let boundaries = distilled.boundaries().clone();
    let crossings = distilled.crossings_per_task().max(1);
    Box::new(move |profile, tier| {
        redistill_validated(
            &program,
            profile,
            &dcfg,
            tier,
            &boundaries,
            crossings,
            &lcfg,
        )
        .map_err(|e| e.to_string())
    })
}

fn stats_dyn_ratio(stats: &EngineStats) -> f64 {
    if stats.committed_instructions == 0 {
        0.0
    } else {
        stats.master_instructions as f64 / stats.committed_instructions as f64
    }
}

/// Dyn ratio of the stats delta `late - early` (a window of one run).
fn slice_dyn_ratio(early: &EngineStats, late: &EngineStats) -> f64 {
    let committed = late
        .committed_instructions
        .saturating_sub(early.committed_instructions);
    if committed == 0 {
        0.0
    } else {
        late.master_instructions
            .saturating_sub(early.master_instructions) as f64
            / committed as f64
    }
}

/// Squash rate of the stats delta `late - early`.
fn slice_squash_per_1k(early: &EngineStats, late: &EngineStats) -> f64 {
    let spawned = late.spawned_tasks.saturating_sub(early.spawned_tasks);
    if spawned == 0 {
        0.0
    } else {
        1000.0 * late.squash_events().saturating_sub(early.squash_events()) as f64 / spawned as f64
    }
}

/// Measures every phase-shifting workload at `default_scale / divisor`:
/// the offline profile is collected on the training input (`phase_b =
/// 0`, blind to the shift), then the reference input (`phase_b = scale`)
/// runs once with that distillation frozen and once with the online
/// adaptive loop hot-swapping re-distillations from the live profile.
///
/// # Panics
///
/// Panics on any harness failure, including a checksum mismatch between
/// any run and the uniprocessor baseline (a correctness bug, not a
/// measurement).
#[must_use]
pub fn collect_adaptive_records(divisor: u64) -> Vec<AdaptiveRecord> {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    mssp_workloads::phase_workloads()
        .iter()
        .map(|w| {
            let scale = harness_scale(w, divisor);
            let phase_b = scale;
            let train = w.phase_program(scale, 0);
            let reference = w.phase_program(scale, phase_b);
            let profile = Profile::collect(&train, Profile::UNBOUNDED).expect("training run");
            let distilled = distill(&reference, &profile, &dcfg).expect("distillation");
            let baseline = run_baseline(&reference, &tcfg, u64::MAX).expect("baseline runs");

            let frozen = run_mssp(&reference, &distilled, &tcfg).expect("frozen mssp run");
            assert_eq!(
                baseline.state.reg(CHECKSUM_REG),
                frozen.run.state.reg(CHECKSUM_REG),
                "{}: frozen checksum mismatch - correctness bug",
                w.name
            );

            let controller =
                AdaptiveController::new(AdaptiveConfig::default(), &distilled, &profile);
            let recompiler = validated_recompiler(&reference, &distilled);
            let adaptive =
                run_mssp_with_engine_setup(&reference, &distilled, &tcfg, tcfg.engine, move |e| {
                    e.enable_adaptive(controller, recompiler);
                })
                .expect("adaptive mssp run");
            assert_eq!(
                baseline.state.reg(CHECKSUM_REG),
                adaptive.run.state.reg(CHECKSUM_REG),
                "{}: adaptive checksum mismatch - correctness bug",
                w.name
            );
            let stats = adaptive.run.stats;
            let report = adaptive
                .run
                .adaptive
                .as_ref()
                .expect("adaptive run carries a report");
            let zero = EngineStats::default();
            let (pre, post) = match (report.swaps.first(), report.swaps.last()) {
                (Some(first), Some(last)) => (first.stats, last.stats),
                // No swap installed: the whole run is "pre".
                _ => (stats, stats),
            };
            AdaptiveRecord {
                name: w.name.to_string(),
                scale,
                phase_b,
                frozen_dyn_ratio: stats_dyn_ratio(&frozen.run.stats),
                frozen_squash_per_1k: squash_per_1k_tasks(&frozen.run.stats),
                adaptive_dyn_ratio: stats_dyn_ratio(&stats),
                adaptive_squash_per_1k: squash_per_1k_tasks(&stats),
                pre_swap_dyn_ratio: slice_dyn_ratio(&zero, &pre),
                post_swap_dyn_ratio: slice_dyn_ratio(&post, &stats),
                pre_swap_squash_per_1k: slice_squash_per_1k(&zero, &pre),
                post_swap_squash_per_1k: slice_squash_per_1k(&post, &stats),
                recompilations_fast: report.recompilations_fast,
                recompilations_full: report.recompilations_full,
                swaps_installed: stats.swaps_installed,
                candidates_rejected: report.candidates_rejected,
                recompile_failures: report.recompile_failures,
                first_swap_at_tasks: report.swaps.first().map_or(0, |m| m.at_committed_tasks),
                swap_latency_micros_max: report
                    .swaps
                    .iter()
                    .map(|m| m.latency_micros)
                    .max()
                    .unwrap_or(0),
                speedup_frozen: speedup(baseline.cycles, frozen.run.cycles),
                speedup_adaptive: speedup(baseline.cycles, adaptive.run.cycles),
            }
        })
        .collect()
}

/// Runs [`STATIONARY_WORKLOADS`] with the adaptive loop armed on inputs
/// that match their training profile: the controller must stay quiet.
///
/// # Panics
///
/// Panics on harness failures (broken build, not a measurement).
#[must_use]
pub fn collect_stationary_records(divisor: u64) -> Vec<StationaryRecord> {
    let tcfg = TimingConfig::default();
    STATIONARY_WORKLOADS
        .iter()
        .map(|name| {
            let w = Workload::by_name(name).expect("stationary workload exists");
            let scale = harness_scale(w, divisor);
            let program = w.program(scale);
            let (distilled, profile) = prepare(&program, &DistillConfig::default());
            let controller =
                AdaptiveController::new(AdaptiveConfig::default(), &distilled, &profile);
            let recompiler = validated_recompiler(&program, &distilled);
            let run =
                run_mssp_with_engine_setup(&program, &distilled, &tcfg, tcfg.engine, move |e| {
                    e.enable_adaptive(controller, recompiler);
                })
                .expect("stationary adaptive run");
            let report = run
                .run
                .adaptive
                .as_ref()
                .expect("adaptive run carries a report");
            StationaryRecord {
                name: (*name).to_string(),
                scale,
                recompilations: report.recompilations(),
                swaps_installed: run.run.stats.swaps_installed,
                divergent_windows: report.divergent_windows,
            }
        })
        .collect()
}

/// Geometric-mean frozen/adaptive dyn-ratio improvement across phase
/// records (> 1 means adaptation beat the frozen distillation).
#[must_use]
pub fn adaptive_dyn_improvement(records: &[AdaptiveRecord]) -> f64 {
    let col: Vec<f64> = records
        .iter()
        .map(|r| {
            if r.adaptive_dyn_ratio > 0.0 {
                r.frozen_dyn_ratio / r.adaptive_dyn_ratio
            } else {
                f64::INFINITY
            }
        })
        .collect();
    mssp_stats::geomean(&col)
}

/// Renders the adaptive benchmark as the `BENCH_adaptive.json` document
/// (hand-rolled: the workspace is std-only).
#[must_use]
pub fn render_adaptive_json(
    records: &[AdaptiveRecord],
    stationary: &[StationaryRecord],
    divisor: u64,
) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mssp-bench-adaptive/v1\",\n");
    out.push_str(&format!("  \"scale_divisor\": {divisor},\n"));
    out.push_str("  \"phase_workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"phase_b\": {},\n",
            r.name, r.scale, r.phase_b
        ));
        out.push_str(&format!(
            "     \"frozen_dyn_ratio\": {}, \"adaptive_dyn_ratio\": {}, \"frozen_squash_per_1k\": {}, \"adaptive_squash_per_1k\": {},\n",
            num(r.frozen_dyn_ratio),
            num(r.adaptive_dyn_ratio),
            num(r.frozen_squash_per_1k),
            num(r.adaptive_squash_per_1k),
        ));
        out.push_str(&format!(
            "     \"pre_swap_dyn_ratio\": {}, \"post_swap_dyn_ratio\": {}, \"pre_swap_squash_per_1k\": {}, \"post_swap_squash_per_1k\": {},\n",
            num(r.pre_swap_dyn_ratio),
            num(r.post_swap_dyn_ratio),
            num(r.pre_swap_squash_per_1k),
            num(r.post_swap_squash_per_1k),
        ));
        out.push_str(&format!(
            "     \"recompilations_fast\": {}, \"recompilations_full\": {}, \"swaps_installed\": {}, \"candidates_rejected\": {}, \"recompile_failures\": {}, \"first_swap_at_tasks\": {}, \"swap_latency_micros_max\": {},\n",
            r.recompilations_fast,
            r.recompilations_full,
            r.swaps_installed,
            r.candidates_rejected,
            r.recompile_failures,
            r.first_swap_at_tasks,
            r.swap_latency_micros_max,
        ));
        out.push_str(&format!(
            "     \"speedup_frozen\": {}, \"speedup_adaptive\": {}}}{}\n",
            num(r.speedup_frozen),
            num(r.speedup_adaptive),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stationary\": [\n");
    for (i, r) in stationary.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"recompilations\": {}, \"swaps_installed\": {}, \"divergent_windows\": {}}}{}\n",
            r.name,
            r.scale,
            r.recompilations,
            r.swaps_installed,
            r.divergent_windows,
            if i + 1 < stationary.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"geomean_dyn_improvement\": {},\n",
        num(adaptive_dyn_improvement(records))
    ));
    let max_stationary = stationary
        .iter()
        .map(|r| r.recompilations)
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "  \"max_stationary_recompilations\": {max_stationary}\n"
    ));
    out.push_str("}\n");
    out
}

/// Worker counts measured by the threaded-throughput benchmark.
pub const THREADED_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One worker-count measurement inside a [`ThreadedRecord`].
#[derive(Debug, Clone)]
pub struct ThreadedPoint {
    /// OS-thread slave count for this run.
    pub workers: usize,
    /// Best-of-`repeats` wall-clock seconds for the whole run.
    pub secs: f64,
    /// Committed tasks per wall-clock second.
    pub tasks_per_sec: f64,
    /// Wall-clock speedup over the 1-worker point of the same workload.
    pub speedup_vs_1w: f64,
}

/// One workload's row in the machine-readable threaded-throughput
/// benchmark (`BENCH_threaded.json`): wall-clock scaling of the real
/// OS-thread executor plus the O(delta) commit-pipeline counters that
/// track how much verify work the coordinator actually performs.
#[derive(Debug, Clone)]
pub struct ThreadedRecord {
    /// Workload name.
    pub name: String,
    /// Scale the workload ran at.
    pub scale: u64,
    /// Sequential dynamic instruction count at that scale.
    pub seq_instructions: u64,
    /// One point per entry of [`THREADED_WORKER_COUNTS`].
    pub points: Vec<ThreadedPoint>,
    /// Coordinator re-check ratio from the 4-worker run: live-in cells
    /// re-checked / live-in cells recorded. Lower is better — it is the
    /// fraction of the memoization test the coordinator still pays for.
    pub recheck_ratio: f64,
    /// Fraction of committed tasks whose verification was settled
    /// entirely by the worker-side pre-verification (4-worker run).
    pub pre_verified_fraction: f64,
    /// Full snapshots materialized by the coordinator (4-worker run).
    pub snapshots_materialized: u64,
    /// Incremental commit deltas published instead (4-worker run).
    pub deltas_published: u64,
}

/// Measures every bundled workload with the threaded executor at
/// `default_scale / divisor`, at each of [`THREADED_WORKER_COUNTS`],
/// keeping the best of `repeats` wall-clock runs per point.
///
/// # Panics
///
/// Panics on any harness failure, including a checksum mismatch between
/// the threaded executor and the sequential machine (a correctness bug,
/// not a measurement).
#[must_use]
pub fn collect_threaded_records(divisor: u64, repeats: u32) -> Vec<ThreadedRecord> {
    assert!(repeats > 0, "need at least one run per point");
    mssp_workloads::workloads()
        .iter()
        .map(|w| {
            let scale = harness_scale(w, divisor);
            let program = w.program(scale);
            let (distilled, _) = prepare(&program, &DistillConfig::default());
            let mut seq = SeqMachine::boot(&program);
            seq.run(u64::MAX).expect("workload halts");
            let expected = seq.state().reg(CHECKSUM_REG);

            let mut points = Vec::new();
            let mut four_worker_stats = None;
            for &workers in &THREADED_WORKER_COUNTS {
                let cfg = mssp_core::EngineConfig {
                    num_slaves: workers,
                    ..mssp_core::EngineConfig::default()
                };
                let mut best: Option<mssp_core::ThreadedRun> = None;
                for _ in 0..repeats {
                    let run = mssp_core::run_threaded(&program, &distilled, cfg)
                        .expect("threaded run succeeds");
                    assert_eq!(
                        run.state.reg(CHECKSUM_REG),
                        expected,
                        "{}: threaded checksum mismatch — correctness bug",
                        w.name
                    );
                    if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                        best = Some(run);
                    }
                }
                let run = best.expect("repeats > 0");
                let secs = run.elapsed.as_secs_f64().max(1e-9);
                let tasks_per_sec = run.stats.committed_tasks as f64 / secs;
                let speedup_vs_1w = points
                    .first()
                    .map_or(1.0, |p: &ThreadedPoint| p.secs / secs);
                points.push(ThreadedPoint {
                    workers,
                    secs,
                    tasks_per_sec,
                    speedup_vs_1w,
                });
                if workers == 4 {
                    four_worker_stats = Some(run.stats);
                }
            }
            let stats = four_worker_stats.expect("worker counts include 4");
            let pre_verified_fraction = if stats.committed_tasks == 0 {
                0.0
            } else {
                stats.pre_verified_tasks as f64 / stats.committed_tasks as f64
            };
            ThreadedRecord {
                name: w.name.to_string(),
                scale,
                seq_instructions: seq.instructions(),
                points,
                recheck_ratio: stats.recheck_ratio(),
                pre_verified_fraction,
                snapshots_materialized: stats.snapshots_materialized,
                deltas_published: stats.deltas_published,
            }
        })
        .collect()
}

/// Geometric-mean speedup over 1 worker at `workers`, across records.
#[must_use]
pub fn threaded_geomean_speedup(records: &[ThreadedRecord], workers: usize) -> f64 {
    let col: Vec<f64> = records
        .iter()
        .filter_map(|r| {
            r.points
                .iter()
                .find(|p| p.workers == workers)
                .map(|p| p.speedup_vs_1w)
        })
        .collect();
    mssp_stats::geomean(&col)
}

/// Renders [`ThreadedRecord`]s as the `BENCH_threaded.json` document
/// (hand-rolled: the workspace is std-only). `available_parallelism` is
/// recorded so consumers can tell real multi-core scaling from runs on
/// boxes where the OS serialized every worker.
#[must_use]
pub fn render_threaded_json(
    records: &[ThreadedRecord],
    divisor: u64,
    available_parallelism: usize,
) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mssp-bench-threaded/v1\",\n");
    out.push_str(&format!("  \"scale_divisor\": {divisor},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {available_parallelism},\n"
    ));
    out.push_str(&format!(
        "  \"worker_counts\": [{}],\n",
        THREADED_WORKER_COUNTS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"seq_instructions\": {},\n",
            r.name, r.scale, r.seq_instructions
        ));
        out.push_str("     \"runs\": [");
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "{{\"workers\": {}, \"secs\": {}, \"tasks_per_sec\": {}, \
                 \"speedup_vs_1w\": {}}}{}",
                p.workers,
                num(p.secs),
                num(p.tasks_per_sec),
                num(p.speedup_vs_1w),
                if j + 1 < r.points.len() { ", " } else { "" },
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "     \"recheck_ratio\": {}, \"pre_verified_fraction\": {}, \
             \"snapshots_materialized\": {}, \"deltas_published\": {}}}{}\n",
            num(r.recheck_ratio),
            num(r.pre_verified_fraction),
            r.snapshots_materialized,
            r.deltas_published,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    for &workers in &THREADED_WORKER_COUNTS[1..] {
        out.push_str(&format!(
            "  \"geomean_speedup_x{}\": {},\n",
            workers,
            num(threaded_geomean_speedup(records, workers))
        ));
    }
    let recheck: Vec<f64> = records.iter().map(|r| r.recheck_ratio).collect();
    out.push_str(&format!(
        "  \"geomean_recheck_ratio\": {}\n",
        num(mssp_stats::geomean(&recheck))
    ));
    out.push_str("}\n");
    out
}

/// Sequential dynamic instruction count of a program.
#[must_use]
pub fn seq_instructions(program: &Program) -> u64 {
    let mut m = SeqMachine::boot(program);
    m.run(u64::MAX).expect("program runs");
    m.instructions()
}

/// The scale used by the experiment harness for each workload: the
/// default scale, shrunk by `divisor` for the quicker sweep experiments.
#[must_use]
pub fn harness_scale(workload: &Workload, divisor: u64) -> u64 {
    (workload.default_scale / divisor.max(1)).max(256)
}

/// Prints the standard experiment header.
pub fn print_header(id: &str, title: &str, params: &str) {
    println!("== {id}: {title} ==");
    if !params.is_empty() {
        println!("   {params}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_workloads::workloads;

    #[test]
    fn evaluate_produces_consistent_numbers() {
        let w = &workloads()[0];
        let eval = evaluate(
            w,
            1_024,
            &DistillConfig::default(),
            &TimingConfig::default(),
        );
        assert!(eval.speedup > 0.0);
        assert_eq!(
            eval.mssp.run.stats.committed_instructions,
            eval.baseline.instructions
        );
        assert!(eval.boundary_count > 0);
    }

    #[test]
    fn speedup_json_is_well_formed() {
        let records = vec![SpeedupRecord {
            name: "gzip_like".to_string(),
            scale: 1024,
            speedup: 1.25,
            dyn_ratio: 0.62,
            dyn_ratio_dce_only: 0.70,
            squash_per_1k_tasks: 3.5,
            squash_per_1k_tasks_baseline: 7.0,
            predictor_accuracy: 0.875,
            slices_emitted: 2,
            static_original: 500,
            static_distilled: 320,
        }];
        let json = render_speedup_json(&records, 16);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"mssp-bench-speedup/v2\""));
        assert!(json.contains("\"dyn_ratio\": 0.620000"));
        assert!(json.contains("\"squash_per_1k_tasks_baseline\": 7.000000"));
        assert!(json.contains("\"predictor_accuracy\": 0.875000"));
        assert!(json.contains("\"slices_emitted\": 2"));
        assert!(json.contains("\"geomean_dyn_ratio_dce_only\": 0.700000"));
        // Balanced braces/brackets — a cheap structural sanity check for
        // the hand-rolled emitter.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn threaded_json_is_well_formed() {
        let records = vec![ThreadedRecord {
            name: "gzip_like".to_string(),
            scale: 2048,
            seq_instructions: 123_456,
            points: THREADED_WORKER_COUNTS
                .iter()
                .enumerate()
                .map(|(i, &workers)| ThreadedPoint {
                    workers,
                    secs: 0.5 / (i + 1) as f64,
                    tasks_per_sec: 100.0 * (i + 1) as f64,
                    speedup_vs_1w: (i + 1) as f64,
                })
                .collect(),
            recheck_ratio: 0.25,
            pre_verified_fraction: 0.75,
            snapshots_materialized: 3,
            deltas_published: 97,
        }];
        let json = render_threaded_json(&records, 8, 4);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"mssp-bench-threaded/v1\""));
        assert!(json.contains("\"available_parallelism\": 4"));
        assert!(json.contains("\"worker_counts\": [1, 2, 4, 8]"));
        assert!(json.contains("\"recheck_ratio\": 0.250000"));
        assert!(json.contains("\"geomean_speedup_x4\": 3.000000"));
        assert!(json.contains("\"geomean_recheck_ratio\": 0.250000"));
        // Balanced braces/brackets — a cheap structural sanity check for
        // the hand-rolled emitter.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(threaded_geomean_speedup(&records, 2), 2.0);
    }

    #[test]
    fn adaptive_json_is_well_formed() {
        let records = vec![AdaptiveRecord {
            name: "phase_flip".to_string(),
            scale: 3000,
            phase_b: 3000,
            frozen_dyn_ratio: 1.4,
            frozen_squash_per_1k: 480.0,
            adaptive_dyn_ratio: 0.7,
            adaptive_squash_per_1k: 12.0,
            pre_swap_dyn_ratio: 0.6,
            post_swap_dyn_ratio: 0.65,
            pre_swap_squash_per_1k: 40.0,
            post_swap_squash_per_1k: 2.0,
            recompilations_fast: 1,
            recompilations_full: 1,
            swaps_installed: 2,
            candidates_rejected: 0,
            recompile_failures: 0,
            first_swap_at_tasks: 192,
            swap_latency_micros_max: 850,
            speedup_frozen: 1.05,
            speedup_adaptive: 1.30,
        }];
        let stationary = vec![StationaryRecord {
            name: "gzip_like".to_string(),
            scale: 4096,
            recompilations: 0,
            swaps_installed: 0,
            divergent_windows: 0,
        }];
        let json = render_adaptive_json(&records, &stationary, 16);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"mssp-bench-adaptive/v1\""));
        assert!(json.contains("\"frozen_dyn_ratio\": 1.400000"));
        assert!(json.contains("\"adaptive_dyn_ratio\": 0.700000"));
        assert!(json.contains("\"swaps_installed\": 2"));
        assert!(json.contains("\"first_swap_at_tasks\": 192"));
        assert!(json.contains("\"geomean_dyn_improvement\": 2.000000"));
        assert!(json.contains("\"max_stationary_recompilations\": 0"));
        // Balanced braces/brackets — a cheap structural sanity check for
        // the hand-rolled emitter.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn harness_scale_has_floor() {
        let w = &workloads()[0];
        assert_eq!(harness_scale(w, u64::MAX), 256);
        assert_eq!(harness_scale(w, 1), w.default_scale);
    }
}
