//! # mssp-bench
//!
//! The experiment harness: shared plumbing used by the per-table /
//! per-figure binaries (`t1_workloads`, `f2_distillation`, `f3_speedup`,
//! ...) that regenerate the evaluation of the MSSP paper, plus the
//! Criterion micro-benchmarks.
//!
//! Each binary prints one table or bar-figure in a uniform format; see
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mssp_analysis::Profile;
use mssp_distill::{distill, DistillConfig, DistillStats, Distilled};
use mssp_isa::Program;
use mssp_machine::SeqMachine;
use mssp_timing::{run_baseline, run_mssp, speedup, BaselineRun, TimingConfig, TimingRun};
use mssp_workloads::{Workload, CHECKSUM_REG, TRAIN_SEED};

/// A complete measurement of one workload under one configuration.
#[derive(Debug)]
pub struct Evaluation {
    /// The workload evaluated.
    pub workload: &'static Workload,
    /// Scale used.
    pub scale: u64,
    /// Sequential dynamic instruction count.
    pub seq_instructions: u64,
    /// Baseline uniprocessor timing run.
    pub baseline: BaselineRun,
    /// MSSP timing run.
    pub mssp: TimingRun,
    /// Static distillation statistics.
    pub distill: DistillStats,
    /// Number of task boundaries selected.
    pub boundary_count: usize,
    /// MSSP speedup over the baseline.
    pub speedup: f64,
}

/// Profiles, distills and measures one workload.
///
/// # Panics
///
/// Panics on any pipeline failure — the harness treats those as fatal
/// (they indicate a broken build, not a measurement).
#[must_use]
pub fn evaluate(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let program = workload.program(scale);
    let (distilled, profile) = prepare(&program, dcfg);
    let baseline = run_baseline(&program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: profile.dynamic_instructions(),
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// Profiles and distills a program, returning both artifacts.
#[must_use]
pub fn prepare(program: &Program, dcfg: &DistillConfig) -> (Distilled, Profile) {
    let profile = Profile::collect(program, u64::MAX).expect("profiling run");
    let distilled = distill(program, &profile, dcfg).expect("distillation");
    (distilled, profile)
}

/// Like [`evaluate`], but *cross-input*: the profile is collected on the
/// workload's training input ([`TRAIN_SEED`]) while distillation target
/// and measurement use the reference input — the paper's train/ref
/// methodology. Both binaries share one text layout (only data-generation
/// constants differ), so the PC-keyed profile transfers.
///
/// # Panics
///
/// Panics on pipeline failures or if the train/ref text layouts diverge.
#[must_use]
pub fn evaluate_cross_input(
    workload: &'static Workload,
    scale: u64,
    dcfg: &DistillConfig,
    tcfg: &TimingConfig,
) -> Evaluation {
    let eval_program = workload.program(scale);
    let train_program = workload.program_with_seed(scale, TRAIN_SEED);
    assert_eq!(
        train_program.len(),
        eval_program.len(),
        "{}: train/ref text layouts diverged",
        workload.name
    );
    let profile = Profile::collect(&train_program, u64::MAX).expect("training run");
    let distilled = distill(&eval_program, &profile, dcfg).expect("distillation");
    let baseline = run_baseline(&eval_program, tcfg, u64::MAX).expect("baseline runs");
    let mssp = run_mssp(&eval_program, &distilled, tcfg).expect("mssp runs");
    assert_eq!(
        baseline.state.reg(CHECKSUM_REG),
        mssp.run.state.reg(CHECKSUM_REG),
        "{}: checksum mismatch — correctness bug",
        workload.name
    );
    Evaluation {
        workload,
        scale,
        seq_instructions: baseline.instructions,
        speedup: speedup(baseline.cycles, mssp.run.cycles),
        distill: distilled.stats(),
        boundary_count: distilled.boundaries().len(),
        baseline,
        mssp,
    }
}

/// Sequential dynamic instruction count of a program.
#[must_use]
pub fn seq_instructions(program: &Program) -> u64 {
    let mut m = SeqMachine::boot(program);
    m.run(u64::MAX).expect("program runs");
    m.instructions()
}

/// The scale used by the experiment harness for each workload: the
/// default scale, shrunk by `divisor` for the quicker sweep experiments.
#[must_use]
pub fn harness_scale(workload: &Workload, divisor: u64) -> u64 {
    (workload.default_scale / divisor.max(1)).max(256)
}

/// Prints the standard experiment header.
pub fn print_header(id: &str, title: &str, params: &str) {
    println!("== {id}: {title} ==");
    if !params.is_empty() {
        println!("   {params}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_workloads::workloads;

    #[test]
    fn evaluate_produces_consistent_numbers() {
        let w = &workloads()[0];
        let eval = evaluate(
            w,
            1_024,
            &DistillConfig::default(),
            &TimingConfig::default(),
        );
        assert!(eval.speedup > 0.0);
        assert_eq!(
            eval.mssp.run.stats.committed_instructions,
            eval.baseline.instructions
        );
        assert!(eval.boundary_count > 0);
    }

    #[test]
    fn harness_scale_has_floor() {
        let w = &workloads()[0];
        assert_eq!(harness_scale(w, u64::MAX), 256);
        assert_eq!(harness_scale(w, 1), w.default_scale);
    }
}
