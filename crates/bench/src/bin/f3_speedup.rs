//! F3 — the headline figure: MSSP speedup over a single-core baseline,
//! per benchmark, with 1 master + 7 slaves (the paper's 8-core CMP).
//! Paper shape: geometric mean ≈ 1.25, best case ≈ 1.7, worst ≈ 1.0.

use mssp_bench::{evaluate, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::{bar_chart, fmt3, geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    print_header(
        "F3",
        "MSSP speedup over uniprocessor baseline",
        &format!(
            "1 master + {} slaves, aggressive distillation, target task size {}",
            tcfg.engine.num_slaves, dcfg.target_task_size
        ),
    );

    let mut table = Table::new(vec![
        "benchmark",
        "base Mcyc",
        "mssp Mcyc",
        "speedup",
        "squash/1k tasks",
    ]);
    let mut series = Vec::new();
    let mut speedups = Vec::new();
    for w in workloads() {
        let e = evaluate(w, w.default_scale, &dcfg, &tcfg);
        let stats = &e.mssp.run.stats;
        let squash_rate = if stats.spawned_tasks == 0 {
            0.0
        } else {
            1000.0 * stats.squash_events() as f64 / stats.spawned_tasks as f64
        };
        table.row(vec![
            w.name.to_string(),
            format!("{:.2}", e.baseline.cycles as f64 / 1e6),
            format!("{:.2}", e.mssp.run.cycles as f64 / 1e6),
            fmt3(e.speedup),
            format!("{squash_rate:.1}"),
        ]);
        series.push((w.name.to_string(), e.speedup));
        speedups.push(e.speedup);
    }
    println!("{}", table.render());
    println!("{}", bar_chart(&series, 48, "x"));
    println!("geometric mean speedup: {:.3}", geomean(&speedups));
    println!(
        "max speedup:            {:.3}",
        speedups.iter().copied().fold(0.0, f64::max)
    );
    println!(
        "min speedup:            {:.3}",
        speedups.iter().copied().fold(f64::INFINITY, f64::min)
    );
}
