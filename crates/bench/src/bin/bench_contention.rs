//! BENCH — machine-readable contention/allocation microbenchmark.
//!
//! Measures the two properties the lock-free hot path exists for and
//! emits them as `BENCH_contention.json` so CI can gate on regressions:
//!
//! 1. **Ring vs mutex-channel throughput.** Single-producer message
//!    throughput of the SPSC/MPSC rings ([`mssp_core::ring`]) against
//!    the `Mutex<VecDeque>`+`Condvar` channel ([`mssp_core::chan`]) they
//!    replaced on the task/result path. Measured two ways: a same-thread
//!    burst loop (pure per-operation overhead, deterministic on any
//!    host) and a cross-thread producer/consumer pair (includes wakeup
//!    cost, noisy on single-core hosts). The gate uses the same-thread
//!    number.
//!
//! 2. **Steady-state allocations per committed task.** This binary
//!    installs a counting global allocator and runs a workload through
//!    the threaded executor at scale N and 2N; differencing the two
//!    counts cancels every setup cost (program build, boot state, ring
//!    construction, arena warm-up), leaving the marginal allocation rate
//!    of the dispatch/execute/verify/commit cycle. With pooled deltas
//!    that marginal rate is a handful of allocations per *spawn* from
//!    the master's prediction overlay (a `Vec` of `Arc` layers per
//!    spawned task, plus an occasional checkpoint segment and the
//!    amortized per-32-commits snapshot materialization) — the
//!    dispatch/commit path itself contributes zero.
//!
//! ```text
//! bench_contention [--json] [--out PATH] [--scale-div N] [--repeats N]
//!                  [--min-ring-advantage X] [--max-allocs-per-task Y]
//! ```
//!
//! * `--json` — emit JSON (to stdout, or to `--out PATH`); otherwise a
//!   human-readable table is printed.
//! * `--scale-div N` — divide message counts and workload scale by `N`
//!   (default 1; CI uses a divisor for speed).
//! * `--repeats N` — runs per throughput point, keeping the best
//!   (default 3).
//! * `--min-ring-advantage X` — exit non-zero if the SPSC ring's
//!   same-thread throughput falls below `X ×` the mutex channel's.
//! * `--max-allocs-per-task Y` — exit non-zero if the marginal
//!   steady-state allocation rate exceeds `Y` per committed task.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mssp_bench::{harness_scale, prepare, print_header};
use mssp_core::{chan, ring, EngineConfig};
use mssp_distill::DistillConfig;
use mssp_machine::SeqMachine;
use mssp_stats::Table;
use mssp_workloads::CHECKSUM_REG;

/// Heap allocations observed since process start (alloc + realloc;
/// deallocation is free of interest here).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const RING_CAP: usize = 1024;
const BURST: usize = 256;

struct Args {
    json: bool,
    out: Option<String>,
    scale_div: u64,
    repeats: u32,
    min_ring_advantage: Option<f64>,
    max_allocs_per_task: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        scale_div: 1,
        repeats: 3,
        min_ring_advantage: None,
        max_allocs_per_task: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--json" => args.json = true,
            "--out" => args.out = Some(value("--out")?),
            "--scale-div" => {
                args.scale_div = value("--scale-div")?
                    .parse()
                    .map_err(|e| format!("--scale-div: {e}"))?;
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
            }
            "--min-ring-advantage" => {
                args.min_ring_advantage = Some(
                    value("--min-ring-advantage")?
                        .parse()
                        .map_err(|e| format!("--min-ring-advantage: {e}"))?,
                );
            }
            "--max-allocs-per-task" => {
                args.max_allocs_per_task = Some(
                    value("--max-allocs-per-task")?
                        .parse()
                        .map_err(|e| format!("--max-allocs-per-task: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.scale_div == 0 {
        return Err("--scale-div must be positive".into());
    }
    if args.repeats == 0 {
        return Err("--repeats must be positive".into());
    }
    Ok(args)
}

/// Best-of-`repeats` messages/second for `f(messages)`.
fn best_rate(messages: u64, repeats: u32, mut f: impl FnMut(u64) -> f64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let secs = f(messages).max(1e-9);
        best = best.max(messages as f64 / secs);
    }
    best
}

/// Same-thread burst loop over the SPSC ring: send a burst, drain it.
/// Measures pure per-operation overhead with zero scheduler noise.
fn spsc_same_thread(messages: u64) -> f64 {
    let (mut tx, mut rx) = ring::spsc::<u64>(RING_CAP);
    let mut buf = Vec::with_capacity(BURST);
    let mut sent = 0u64;
    let start = Instant::now();
    while sent < messages {
        let n = BURST.min((messages - sent) as usize);
        tx.send_batch((0..n as u64).map(|i| sent + i))
            .expect("receiver alive");
        sent += n as u64;
        buf.clear();
        while rx.recv_batch(&mut buf, BURST) == 0 {}
        debug_assert_eq!(buf.len(), n);
    }
    start.elapsed().as_secs_f64()
}

/// Same-thread burst loop over the MPSC ring (single producer).
fn mpsc_same_thread(messages: u64) -> f64 {
    let (tx, mut rx) = ring::mpsc::<u64>(RING_CAP);
    let mut buf = Vec::with_capacity(BURST);
    let mut sent = 0u64;
    let start = Instant::now();
    while sent < messages {
        let n = BURST.min((messages - sent) as usize);
        for i in 0..n as u64 {
            tx.send(sent + i).expect("receiver alive");
        }
        sent += n as u64;
        buf.clear();
        while rx.recv_batch(&mut buf, BURST) == 0 {}
        debug_assert_eq!(buf.len(), n);
    }
    start.elapsed().as_secs_f64()
}

/// Same-thread burst loop over the mutex channel — the baseline the
/// rings replaced.
fn chan_same_thread(messages: u64) -> f64 {
    let (tx, rx) = chan::channel::<u64>();
    let mut sent = 0u64;
    let start = Instant::now();
    while sent < messages {
        let n = BURST.min((messages - sent) as usize);
        for i in 0..n as u64 {
            tx.send(sent + i).map_err(|_| ()).expect("receiver alive");
        }
        sent += n as u64;
        for _ in 0..n {
            rx.try_recv().expect("just sent");
        }
    }
    start.elapsed().as_secs_f64()
}

/// Cross-thread single-producer throughput over the SPSC ring,
/// including real wakeup costs. Noisy on single-core hosts.
fn spsc_cross_thread(messages: u64) -> f64 {
    let (mut tx, mut rx) = ring::spsc::<u64>(RING_CAP);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for i in 0..messages {
            if tx.send(i).is_err() {
                return;
            }
        }
    });
    let mut buf = Vec::with_capacity(BURST);
    let mut got = 0u64;
    while got < messages {
        buf.clear();
        let n = rx.recv_batch(&mut buf, BURST);
        if n == 0 && rx.recv().map(|v| buf.push(v)).is_err() {
            break;
        }
        got += buf.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    producer.join().expect("producer clean exit");
    assert_eq!(got, messages);
    secs
}

/// Cross-thread single-producer throughput over the mutex channel.
fn chan_cross_thread(messages: u64) -> f64 {
    let (tx, rx) = chan::channel::<u64>();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for i in 0..messages {
            if tx.send(i).is_err() {
                return;
            }
        }
    });
    let mut got = 0u64;
    while got < messages {
        if rx.recv().is_err() {
            break;
        }
        got += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    producer.join().expect("producer clean exit");
    assert_eq!(got, messages);
    secs
}

/// Runs the first bundled workload through the threaded executor at
/// `scale`, returning (heap allocations during the run, committed
/// tasks). The caller differences two scales to get the marginal rate.
fn measure_allocs(scale: u64) -> (u64, u64) {
    let w = &mssp_workloads::workloads()[0];
    let program = w.program(scale);
    let (distilled, _) = prepare(&program, &DistillConfig::default());
    let mut seq = SeqMachine::boot(&program);
    seq.run(u64::MAX).expect("workload halts");
    let expected = seq.state().reg(CHECKSUM_REG);
    let cfg = EngineConfig {
        num_slaves: 2,
        ..EngineConfig::default()
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    let run = mssp_core::run_threaded(&program, &distilled, cfg).expect("threaded run succeeds");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        run.state.reg(CHECKSUM_REG),
        expected,
        "threaded checksum mismatch — correctness bug"
    );
    (allocs, run.stats.committed_tasks)
}

struct Report {
    messages: u64,
    spsc_same: f64,
    mpsc_same: f64,
    chan_same: f64,
    spsc_cross: f64,
    chan_cross: f64,
    workload: String,
    scale_small: u64,
    scale_large: u64,
    allocs_small: u64,
    allocs_large: u64,
    tasks_small: u64,
    tasks_large: u64,
}

impl Report {
    fn ring_advantage_same(&self) -> f64 {
        self.spsc_same / self.chan_same.max(1e-9)
    }

    fn ring_advantage_cross(&self) -> f64 {
        self.spsc_cross / self.chan_cross.max(1e-9)
    }

    /// Marginal allocations per committed task between the two scales.
    fn allocs_per_task(&self) -> f64 {
        let dt = self.tasks_large.saturating_sub(self.tasks_small);
        let da = self.allocs_large.saturating_sub(self.allocs_small);
        if dt == 0 {
            // Degenerate (tiny scales): fall back to the absolute rate.
            self.allocs_large as f64 / self.tasks_large.max(1) as f64
        } else {
            da as f64 / dt as f64
        }
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn render_json(r: &Report, args: &Args) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"contention\",\n");
    s.push_str("  \"generated_by\": \"bench_contention\",\n");
    s.push_str(&format!("  \"scale_div\": {},\n", args.scale_div));
    s.push_str(&format!("  \"repeats\": {},\n", args.repeats));
    s.push_str(&format!("  \"messages\": {},\n", r.messages));
    s.push_str("  \"throughput_msgs_per_sec\": {\n");
    s.push_str(&format!(
        "    \"spsc_ring_same_thread\": {},\n",
        num(r.spsc_same)
    ));
    s.push_str(&format!(
        "    \"mpsc_ring_same_thread\": {},\n",
        num(r.mpsc_same)
    ));
    s.push_str(&format!(
        "    \"mutex_chan_same_thread\": {},\n",
        num(r.chan_same)
    ));
    s.push_str(&format!(
        "    \"spsc_ring_cross_thread\": {},\n",
        num(r.spsc_cross)
    ));
    s.push_str(&format!(
        "    \"mutex_chan_cross_thread\": {}\n",
        num(r.chan_cross)
    ));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"ring_advantage_same_thread\": {},\n",
        num(r.ring_advantage_same())
    ));
    s.push_str(&format!(
        "  \"ring_advantage_cross_thread\": {},\n",
        num(r.ring_advantage_cross())
    ));
    s.push_str("  \"steady_state_allocations\": {\n");
    s.push_str(&format!("    \"workload\": \"{}\",\n", r.workload));
    s.push_str(&format!("    \"scale_small\": {},\n", r.scale_small));
    s.push_str(&format!("    \"scale_large\": {},\n", r.scale_large));
    s.push_str(&format!("    \"allocs_small\": {},\n", r.allocs_small));
    s.push_str(&format!("    \"allocs_large\": {},\n", r.allocs_large));
    s.push_str(&format!("    \"tasks_small\": {},\n", r.tasks_small));
    s.push_str(&format!("    \"tasks_large\": {},\n", r.tasks_large));
    s.push_str(&format!(
        "    \"allocs_per_task\": {}\n",
        num(r.allocs_per_task())
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_contention: {e}");
            return ExitCode::FAILURE;
        }
    };
    let messages = (2_000_000 / args.scale_div).max(BURST as u64);

    // Throughput: same-thread first (the gated, deterministic numbers),
    // then cross-thread (informative).
    let spsc_same = best_rate(messages, args.repeats, spsc_same_thread);
    let mpsc_same = best_rate(messages, args.repeats, mpsc_same_thread);
    let chan_same = best_rate(messages, args.repeats, chan_same_thread);
    let cross_messages = (messages / 4).max(BURST as u64);
    let spsc_cross = best_rate(cross_messages, args.repeats, spsc_cross_thread);
    let chan_cross = best_rate(cross_messages, args.repeats, chan_cross_thread);

    // Allocation rate: difference scale N against 2N so fixed setup
    // costs cancel and only the per-task marginal rate remains.
    let w = &mssp_workloads::workloads()[0];
    let scale_small = harness_scale(w, args.scale_div).max(2);
    let scale_large = scale_small * 2;
    let (allocs_small, tasks_small) = measure_allocs(scale_small);
    let (allocs_large, tasks_large) = measure_allocs(scale_large);

    let report = Report {
        messages,
        spsc_same,
        mpsc_same,
        chan_same,
        spsc_cross,
        chan_cross,
        workload: w.name.to_string(),
        scale_small,
        scale_large,
        allocs_small,
        allocs_large,
        tasks_small,
        tasks_large,
    };

    if args.json {
        let json = render_json(&report, &args);
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("bench_contention: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            None => print!("{json}"),
        }
    } else {
        print_header(
            "BENCH",
            "Ring vs mutex-channel contention",
            &format!(
                "{} msgs, best of {}, scale divisor {}",
                messages, args.repeats, args.scale_div
            ),
        );
        let mut table = Table::new(vec!["queue", "same-thread msg/s", "cross-thread msg/s"]);
        table.row(vec![
            "spsc ring".into(),
            format!("{spsc_same:.0}"),
            format!("{spsc_cross:.0}"),
        ]);
        table.row(vec![
            "mpsc ring".into(),
            format!("{mpsc_same:.0}"),
            "-".into(),
        ]);
        table.row(vec![
            "mutex chan".into(),
            format!("{chan_same:.0}"),
            format!("{chan_cross:.0}"),
        ]);
        println!("{}", table.render());
        println!(
            "ring advantage:            {:.2}x same-thread, {:.2}x cross-thread",
            report.ring_advantage_same(),
            report.ring_advantage_cross()
        );
        println!(
            "steady-state allocations:  {:.2}/task ({} @ scale {} -> {} tasks; scale {} -> {} tasks)",
            report.allocs_per_task(),
            report.workload,
            report.scale_small,
            report.tasks_small,
            report.scale_large,
            report.tasks_large,
        );
    }

    let mut failed = false;
    if let Some(floor) = args.min_ring_advantage {
        let adv = report.ring_advantage_same();
        if adv < floor {
            eprintln!(
                "bench_contention: same-thread ring advantage {adv:.2}x below floor {floor:.2}x"
            );
            failed = true;
        }
    }
    if let Some(ceiling) = args.max_allocs_per_task {
        let rate = report.allocs_per_task();
        if rate > ceiling {
            eprintln!(
                "bench_contention: {rate:.2} allocations per committed task above ceiling \
                 {ceiling:.2} — the steady-state hot path is allocating"
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
