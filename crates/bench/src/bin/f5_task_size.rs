//! F5 — task-size sensitivity: speedup and squash rate as the target task
//! size sweeps from very small (overhead-bound) to very large
//! (load-imbalance / staleness-bound). The paper reports a broad optimum
//! at moderate task sizes.

use mssp_bench::{evaluate, harness_scale, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::Workload;

fn main() {
    let sizes = [25u64, 50, 100, 200, 400, 800, 1600, 3200];
    let subjects = ["gzip_like", "gap_like", "vortex_like", "mcf_like"];
    print_header(
        "F5",
        "Speedup vs. target task size",
        "four representative benchmarks; squash column = events per 1000 tasks (geomean row over speedups)",
    );
    let mut headers = vec!["task size".to_string()];
    headers.extend(subjects.iter().map(|s| s.to_string()));
    headers.push("geomean".to_string());
    headers.push("squash/1k (gzip)".to_string());
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    for &size in &sizes {
        let dcfg = DistillConfig {
            target_task_size: size,
            ..DistillConfig::default()
        };
        let mut row = vec![size.to_string()];
        let mut speeds = Vec::new();
        let mut gzip_squash = 0.0;
        for name in subjects {
            let w = Workload::by_name(name).expect("known workload");
            let e = evaluate(w, harness_scale(w, 2), &dcfg, &TimingConfig::default());
            row.push(format!("{:.3}", e.speedup));
            speeds.push(e.speedup);
            if name == "gzip_like" {
                let s = &e.mssp.run.stats;
                gzip_squash = 1000.0 * s.squash_events() as f64 / s.spawned_tasks.max(1) as f64;
            }
        }
        row.push(format!("{:.3}", geomean(&speeds)));
        row.push(format!("{gzip_squash:.1}"));
        table.row(row);
    }
    println!("{}", table.render());
}
