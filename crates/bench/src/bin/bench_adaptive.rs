//! BENCH — online adaptive re-distillation benchmark.
//!
//! Runs phase-shifting workloads whose behaviour diverges mid-run from
//! the training profile, once with the offline distillation frozen and
//! once with the adaptive controller hot-swapping re-distillations from
//! the live profile, and emits the comparison as `BENCH_adaptive.json`.
//! A stationary half runs standard workloads on their training inputs
//! and checks the controller never fires. CI runs both at small scale
//! and fails the build if adaptation stops paying for itself or starts
//! recompiling on stationary behaviour.
//!
//! ```text
//! bench_adaptive [--json] [--out PATH] [--scale-div N]
//!                [--min-dyn-improvement X] [--min-squash-improvement X]
//!                [--require-swap] [--max-stationary-recompilations N]
//! ```
//!
//! * `--json` — emit JSON (to stdout, or to `--out PATH`); otherwise a
//!   human-readable table is printed.
//! * `--scale-div N` — divide every workload's default scale by `N`
//!   (default 1; CI uses a large divisor for speed).
//! * `--min-dyn-improvement X` — exit non-zero if any phase workload's
//!   `frozen / adaptive` dyn-ratio improvement falls below `X`. Note the
//!   dyn ratio is not monotonic in goodness on phase workloads: a frozen
//!   master that goes Lost post-shift executes almost nothing and scores
//!   a flattering ratio while delivering sub-1.0 speedup, so the default
//!   CI gates use squash rate and speedup instead.
//! * `--min-speedup-improvement X` — exit non-zero if any phase
//!   workload's `adaptive / frozen` cycle-speedup ratio falls below `X`.
//! * `--min-squash-improvement X` — exit non-zero if any phase
//!   workload's `frozen / adaptive` squash-rate improvement falls below
//!   `X`.
//! * `--require-swap` — exit non-zero if any phase workload installed no
//!   hot-swap (the shift went undetected).
//! * `--max-stationary-recompilations N` — exit non-zero if any
//!   stationary workload triggered more than `N` recompilations
//!   (default gate when passed: 0 means "never fire on training-like
//!   behaviour").

use std::process::ExitCode;

use mssp_bench::{
    adaptive_dyn_improvement, collect_adaptive_records, collect_stationary_records, print_header,
    render_adaptive_json,
};
use mssp_stats::{fmt3, Table};

struct Args {
    json: bool,
    out: Option<String>,
    scale_div: u64,
    min_dyn_improvement: Option<f64>,
    min_squash_improvement: Option<f64>,
    min_speedup_improvement: Option<f64>,
    require_swap: bool,
    max_stationary_recompilations: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        scale_div: 1,
        min_dyn_improvement: None,
        min_squash_improvement: None,
        min_speedup_improvement: None,
        require_swap: false,
        max_stationary_recompilations: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--json" => args.json = true,
            "--out" => args.out = Some(value("--out")?),
            "--scale-div" => {
                args.scale_div = value("--scale-div")?
                    .parse()
                    .map_err(|e| format!("--scale-div: {e}"))?;
            }
            "--min-dyn-improvement" => {
                args.min_dyn_improvement = Some(
                    value("--min-dyn-improvement")?
                        .parse()
                        .map_err(|e| format!("--min-dyn-improvement: {e}"))?,
                );
            }
            "--min-squash-improvement" => {
                args.min_squash_improvement = Some(
                    value("--min-squash-improvement")?
                        .parse()
                        .map_err(|e| format!("--min-squash-improvement: {e}"))?,
                );
            }
            "--min-speedup-improvement" => {
                args.min_speedup_improvement = Some(
                    value("--min-speedup-improvement")?
                        .parse()
                        .map_err(|e| format!("--min-speedup-improvement: {e}"))?,
                );
            }
            "--require-swap" => args.require_swap = true,
            "--max-stationary-recompilations" => {
                args.max_stationary_recompilations = Some(
                    value("--max-stationary-recompilations")?
                        .parse()
                        .map_err(|e| format!("--max-stationary-recompilations: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_adaptive: {e}");
            return ExitCode::FAILURE;
        }
    };

    let records = collect_adaptive_records(args.scale_div);
    let stationary = collect_stationary_records(args.scale_div);

    if args.json {
        let json = render_adaptive_json(&records, &stationary, args.scale_div);
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("bench_adaptive: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            None => print!("{json}"),
        }
    } else {
        print_header(
            "BENCH",
            "Online adaptive re-distillation benchmark",
            &format!("scale divisor {}", args.scale_div),
        );
        let mut table = Table::new(vec![
            "benchmark",
            "dyn frozen",
            "dyn adapt",
            "sq/1k frozen",
            "sq/1k adapt",
            "swaps",
            "fast/full",
            "speedup frozen",
            "speedup adapt",
        ]);
        for r in &records {
            table.row(vec![
                r.name.clone(),
                fmt3(r.frozen_dyn_ratio),
                fmt3(r.adaptive_dyn_ratio),
                format!("{:.1}", r.frozen_squash_per_1k),
                format!("{:.1}", r.adaptive_squash_per_1k),
                r.swaps_installed.to_string(),
                format!("{}/{}", r.recompilations_fast, r.recompilations_full),
                fmt3(r.speedup_frozen),
                fmt3(r.speedup_adaptive),
            ]);
        }
        println!("{}", table.render());
        println!(
            "geomean dyn improvement:    {:.3}",
            adaptive_dyn_improvement(&records)
        );
        let mut st = Table::new(vec!["stationary", "recompilations", "swaps", "divergent"]);
        for r in &stationary {
            st.row(vec![
                r.name.clone(),
                r.recompilations.to_string(),
                r.swaps_installed.to_string(),
                r.divergent_windows.to_string(),
            ]);
        }
        println!("{}", st.render());
    }

    let mut failed = false;
    if let Some(floor) = args.min_dyn_improvement {
        for r in &records {
            let improvement = if r.adaptive_dyn_ratio == 0.0 {
                f64::INFINITY
            } else {
                r.frozen_dyn_ratio / r.adaptive_dyn_ratio
            };
            if improvement < floor {
                eprintln!(
                    "bench_adaptive: {} dyn improvement {:.2}x \
                     ({:.3} -> {:.3}) below floor {:.2}x",
                    r.name, improvement, r.frozen_dyn_ratio, r.adaptive_dyn_ratio, floor
                );
                failed = true;
            }
        }
    }
    if let Some(floor) = args.min_squash_improvement {
        for r in &records {
            // An adaptive rate of zero is infinite improvement; only a
            // still-squashing run can fall below the floor.
            let improvement = if r.adaptive_squash_per_1k == 0.0 {
                f64::INFINITY
            } else {
                r.frozen_squash_per_1k / r.adaptive_squash_per_1k
            };
            if improvement < floor {
                eprintln!(
                    "bench_adaptive: {} squash improvement {:.2}x \
                     ({:.1}/1k -> {:.1}/1k) below floor {:.2}x",
                    r.name, improvement, r.frozen_squash_per_1k, r.adaptive_squash_per_1k, floor
                );
                failed = true;
            }
        }
    }
    if let Some(floor) = args.min_speedup_improvement {
        for r in &records {
            let improvement = if r.speedup_frozen == 0.0 {
                f64::INFINITY
            } else {
                r.speedup_adaptive / r.speedup_frozen
            };
            if improvement < floor {
                eprintln!(
                    "bench_adaptive: {} speedup improvement {:.3}x \
                     ({:.3} -> {:.3}) below floor {:.3}x",
                    r.name, improvement, r.speedup_frozen, r.speedup_adaptive, floor
                );
                failed = true;
            }
        }
    }
    if args.require_swap {
        for r in &records {
            if r.swaps_installed == 0 {
                eprintln!(
                    "bench_adaptive: {} installed no hot-swap — the phase \
                     shift went undetected",
                    r.name
                );
                failed = true;
            }
        }
    }
    if let Some(ceiling) = args.max_stationary_recompilations {
        for r in &stationary {
            if r.recompilations > ceiling {
                eprintln!(
                    "bench_adaptive: stationary {} triggered {} recompilations \
                     (ceiling {ceiling})",
                    r.name, r.recompilations
                );
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
