//! T6 — task outcome breakdown: committed vs squashed (by reason),
//! live-in/live-out set sizes, recovery fraction.

use mssp_bench::{evaluate, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::Table;
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    print_header(
        "T6",
        "Task outcomes and live-in/live-out characterization",
        "squash reasons per 1000 spawned tasks; recovery% of committed instructions",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "tasks",
        "commit%",
        "wrongpath",
        "livein",
        "overrun",
        "fault",
        "avg in",
        "in reg/mem",
        "avg out",
        "recov%",
    ]);
    for w in workloads() {
        let e = evaluate(w, w.default_scale, &dcfg, &tcfg);
        let s = &e.mssp.run.stats;
        let per1k = |x: u64| {
            if s.spawned_tasks == 0 {
                0.0
            } else {
                1000.0 * x as f64 / s.spawned_tasks as f64
            }
        };
        let avg = |sum: u64| {
            if s.committed_tasks == 0 {
                0.0
            } else {
                sum as f64 / s.committed_tasks as f64
            }
        };
        table.row(vec![
            w.name.to_string(),
            s.spawned_tasks.to_string(),
            format!(
                "{:.1}",
                100.0 * s.committed_tasks as f64 / s.spawned_tasks.max(1) as f64
            ),
            format!("{:.1}", per1k(s.squashes_wrong_path)),
            format!("{:.1}", per1k(s.squashes_live_in)),
            format!("{:.1}", per1k(s.squashes_overrun)),
            format!("{:.1}", per1k(s.squashes_fault)),
            format!("{:.1}", avg(s.live_in_cells)),
            format!(
                "{:.1}/{:.1}",
                avg(s.live_in_reg_cells),
                avg(s.live_in_mem_cells)
            ),
            format!("{:.1}", avg(s.live_out_cells)),
            format!("{:.1}", 100.0 * s.recovery_fraction()),
        ]);
    }
    println!("{}", table.render());
}
