//! T1 — workload characterization: dynamic instructions, loads/stores,
//! branches and branch bias for each SPECint2000-analog benchmark at its
//! default scale (the table-1 analogue of the paper's benchmark setup).

use mssp_analysis::Profile;
use mssp_bench::print_header;
use mssp_stats::{fmt_count, Table};
use mssp_workloads::workloads;

fn main() {
    print_header(
        "T1",
        "Workload characterization",
        "default scales; bias = execution-weighted dominant-direction frequency",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "analog",
        "dyn instrs",
        "loads%",
        "stores%",
        "branch%",
        "bias",
        "static",
    ]);
    for w in workloads() {
        let program = w.default_program();
        let profile = Profile::collect(&program, u64::MAX).expect("workload runs");
        let n = profile.dynamic_instructions() as f64;
        table.row(vec![
            w.name.to_string(),
            w.analog.to_string(),
            fmt_count(profile.dynamic_instructions()),
            format!("{:.1}", 100.0 * profile.loads() as f64 / n),
            format!("{:.1}", 100.0 * profile.stores() as f64 / n),
            format!("{:.1}", 100.0 * profile.dynamic_branches() as f64 / n),
            format!("{:.4}", profile.weighted_branch_bias().unwrap_or(0.0)),
            program.len().to_string(),
        ]);
    }
    println!("{}", table.render());
}
