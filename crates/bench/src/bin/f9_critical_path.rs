//! F9 — who is the critical path? Busy-cycle fractions of the master, the
//! slaves (aggregate), the verify unit and recovery, relative to total
//! run cycles. The decoupling argument requires the master — the fast
//! path — to dominate, with verification far from critical.

use mssp_bench::{evaluate, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::Table;
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    print_header(
        "F9",
        "Component busy fractions (% of run cycles)",
        "slaves% is the aggregate over all slave cores divided by slave count",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "master%",
        "slaves%",
        "verify%",
        "recovery%",
    ]);
    for w in workloads() {
        let e = evaluate(w, w.default_scale, &DistillConfig::default(), &tcfg);
        let s = &e.mssp.run.stats;
        let total = e.mssp.run.cycles.max(1) as f64;
        let slaves = tcfg.engine.num_slaves as f64;
        table.row(vec![
            w.name.to_string(),
            format!("{:.1}", 100.0 * s.master_busy_cycles as f64 / total),
            format!(
                "{:.1}",
                100.0 * s.slave_busy_cycles as f64 / (total * slaves)
            ),
            format!("{:.1}", 100.0 * s.verify_busy_cycles as f64 / total),
            format!("{:.1}", 100.0 * s.recovery_busy_cycles as f64 / total),
        ]);
    }
    println!("{}", table.render());
}
