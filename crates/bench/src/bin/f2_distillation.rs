//! F2 — distillation effectiveness: the master's dynamic instruction count
//! as a fraction of the original program's, per benchmark and distillation
//! level. The paper's distilled programs executed substantially fewer
//! instructions than the originals; this figure reproduces that reduction
//! and its benchmark-to-benchmark variation.

use mssp_bench::{evaluate, print_header};
use mssp_distill::{DistillConfig, DistillLevel};
use mssp_stats::{bar_chart, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    print_header(
        "F2",
        "Distilled program dynamic length (% of original)",
        "measured as master instructions / committed instructions over a full run",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "none%",
        "conservative%",
        "aggressive%",
        "static none",
        "static aggr",
        "fold",
        "copy",
        "thread",
    ]);
    let mut series = Vec::new();
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        let mut statics = Vec::new();
        for level in DistillLevel::all() {
            let dcfg = DistillConfig::at_level(level);
            let e = evaluate(w, w.default_scale, &dcfg, &tcfg);
            let ratio = 100.0 * e.mssp.run.stats.master_instructions as f64
                / e.mssp.run.stats.committed_instructions as f64;
            row.push(format!("{ratio:.1}"));
            statics.push(e.distill.distilled_static);
            if level == DistillLevel::Aggressive {
                series.push((w.name.to_string(), ratio));
                // Per-pass pipeline work at the aggressive level: ALU
                // results folded (incl. branches collapsed), copy uses
                // rewritten, control transfers threaded.
                row.push(format!(
                    "{}+{}",
                    e.distill.const_folded, e.distill.branches_folded
                ));
                row.push(e.distill.copies_propagated.to_string());
                row.push(e.distill.jumps_threaded.to_string());
            }
        }
        row.insert(4, statics[0].to_string());
        row.insert(5, statics[2].to_string());
        table.row(row);
    }
    println!("{}", table.render());
    println!("aggressive distillation, dynamic length (% of original):");
    println!("{}", bar_chart(&series, 48, "%"));
}
