//! F15 — adaptive sequential fallback (dual-mode operation): when the
//! distiller is deliberately mis-configured (asserting weakly-biased
//! branches, so the master mispredicts constantly), the engine can detect
//! squash storms and take the master offline for stretches of sequential
//! execution. The paper notes real MSSP hardware can always revert to
//! sequential mode; this experiment shows the adaptive version recovering
//! most of the loss.

use mssp_bench::{prepare, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::Table;
use mssp_timing::{run_baseline, run_mssp_with_engine_config, speedup, TimingConfig};
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    // A pathological distiller: assert anything with >= 65% bias.
    let bad_dcfg = DistillConfig {
        assert_bias: 0.65,
        ..DistillConfig::default()
    };
    print_header(
        "F15",
        "Adaptive sequential fallback under a pathological distiller",
        "assert threshold lowered to 0.65: the master mispredicts wholesale",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "good master",
        "bad, no throttle",
        "bad, throttled",
        "throttle events",
    ]);
    for w in workloads() {
        let program = w.program(w.default_scale / 2);
        let base = run_baseline(&program, &tcfg, u64::MAX).expect("baseline");
        let (good_d, _) = prepare(&program, &DistillConfig::default());
        let (bad_d, _) = prepare(&program, &bad_dcfg);

        let good =
            run_mssp_with_engine_config(&program, &good_d, &tcfg, tcfg.engine).expect("runs");
        let bad = run_mssp_with_engine_config(&program, &bad_d, &tcfg, tcfg.engine).expect("runs");
        let mut throttled_cfg = tcfg.engine;
        throttled_cfg.throttle_threshold = 4;
        throttled_cfg.throttle_window = 64;
        throttled_cfg.throttle_duration = 32;
        let saved =
            run_mssp_with_engine_config(&program, &bad_d, &tcfg, throttled_cfg).expect("runs");
        table.row(vec![
            w.name.to_string(),
            format!("{:.3}", speedup(base.cycles, good.run.cycles)),
            format!("{:.3}", speedup(base.cycles, bad.run.cycles)),
            format!("{:.3}", speedup(base.cycles, saved.run.cycles)),
            saved.run.stats.throttle_events.to_string(),
        ]);
    }
    println!("{}", table.render());
}
