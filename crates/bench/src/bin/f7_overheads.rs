//! F7 — overhead sensitivity: geomean speedup as the MSSP-specific
//! latencies (checkpoint spawn, dispatch, verify, commit, squash) scale
//! from 0× to 8× their reference values. The paper argues MSSP tolerates
//! substantial overhead because verification is off the critical path.
//!
//! A second section measures *verify-unit occupancy* in the threaded
//! executor: what fraction of recorded live-in cells the coordinator
//! actually re-checks once workers pre-verify against their spawn
//! snapshot (the O(delta) commit pipeline), and how many commits are
//! settled with no coordinator verify work at all.

use mssp_bench::{evaluate, harness_scale, prepare, print_header};
use mssp_core::{run_threaded, EngineConfig};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::{OverheadConfig, TimingConfig};
use mssp_workloads::workloads;

fn main() {
    let factors = [0u64, 1, 2, 4, 8];
    print_header(
        "F7",
        "Speedup vs. protocol overhead scale",
        "all overheads (spawn/dispatch/verify/commit/squash) multiplied by the factor",
    );
    let mut table = Table::new(vec!["overhead x", "geomean speedup", "min", "max"]);
    for &f in &factors {
        let base = OverheadConfig::default();
        let overhead = OverheadConfig {
            spawn: base.spawn * f,
            dispatch: base.dispatch * f,
            verify_base: base.verify_base * f,
            commit_base: base.commit_base * f,
            cells_per_cycle: base.cells_per_cycle,
            squash: base.squash * f,
        };
        let tcfg = TimingConfig {
            overhead,
            ..TimingConfig::default()
        };
        let mut speeds = Vec::new();
        for w in workloads() {
            let e = evaluate(w, harness_scale(w, 4), &DistillConfig::default(), &tcfg);
            speeds.push(e.speedup);
        }
        table.row(vec![
            format!("{f}x"),
            format!("{:.3}", geomean(&speeds)),
            format!(
                "{:.3}",
                speeds.iter().copied().fold(f64::INFINITY, f64::min)
            ),
            format!("{:.3}", speeds.iter().copied().fold(0.0, f64::max)),
        ]);
    }
    println!("{}", table.render());

    occupancy_section();
}

/// Verify-unit occupancy under the O(delta) commit pipeline: re-checked
/// vs. recorded live-in cells and the pre-verified commit fraction, per
/// workload, from a default-configuration threaded run.
fn occupancy_section() {
    print_header(
        "F7b",
        "Verify-unit occupancy (threaded executor)",
        "recheck = live-in cells the coordinator re-checks / cells recorded;\n   \
         pre-verified = commits settled entirely by worker-side pre-verification",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "cells recorded",
        "re-checked",
        "recheck",
        "pre-verified %",
        "snapshots",
        "deltas",
    ]);
    let mut ratios = Vec::new();
    let mut fractions = Vec::new();
    for w in workloads() {
        let program = w.program(harness_scale(w, 4));
        let (distilled, _) = prepare(&program, &DistillConfig::default());
        let run =
            run_threaded(&program, &distilled, EngineConfig::default()).expect("threaded run");
        let s = &run.stats;
        let recorded = s.live_ins_rechecked + s.live_ins_skipped;
        let pre_verified = if s.committed_tasks == 0 {
            0.0
        } else {
            100.0 * s.pre_verified_tasks as f64 / s.committed_tasks as f64
        };
        ratios.push(s.recheck_ratio());
        fractions.push(pre_verified);
        table.row(vec![
            w.name.to_string(),
            recorded.to_string(),
            s.live_ins_rechecked.to_string(),
            format!("{:.3}", s.recheck_ratio()),
            format!("{pre_verified:.1}"),
            s.snapshots_materialized.to_string(),
            s.deltas_published.to_string(),
        ]);
    }
    table.row(vec![
        "geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&ratios)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("{}", table.render());
}
