//! F7 — overhead sensitivity: geomean speedup as the MSSP-specific
//! latencies (checkpoint spawn, dispatch, verify, commit, squash) scale
//! from 0× to 8× their reference values. The paper argues MSSP tolerates
//! substantial overhead because verification is off the critical path.

use mssp_bench::{evaluate, harness_scale, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::{OverheadConfig, TimingConfig};
use mssp_workloads::workloads;

fn main() {
    let factors = [0u64, 1, 2, 4, 8];
    print_header(
        "F7",
        "Speedup vs. protocol overhead scale",
        "all overheads (spawn/dispatch/verify/commit/squash) multiplied by the factor",
    );
    let mut table = Table::new(vec!["overhead x", "geomean speedup", "min", "max"]);
    for &f in &factors {
        let base = OverheadConfig::default();
        let overhead = OverheadConfig {
            spawn: base.spawn * f,
            dispatch: base.dispatch * f,
            verify_base: base.verify_base * f,
            commit_base: base.commit_base * f,
            cells_per_cycle: base.cells_per_cycle,
            squash: base.squash * f,
        };
        let tcfg = TimingConfig {
            overhead,
            ..TimingConfig::default()
        };
        let mut speeds = Vec::new();
        for w in workloads() {
            let e = evaluate(w, harness_scale(w, 4), &DistillConfig::default(), &tcfg);
            speeds.push(e.speedup);
        }
        table.row(vec![
            format!("{f}x"),
            format!("{:.3}", geomean(&speeds)),
            format!(
                "{:.3}",
                speeds.iter().copied().fold(f64::INFINITY, f64::min)
            ),
            format!("{:.3}", speeds.iter().copied().fold(0.0, f64::max)),
        ]);
    }
    println!("{}", table.render());
}
