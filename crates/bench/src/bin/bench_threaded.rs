//! BENCH — machine-readable threaded-throughput benchmark.
//!
//! Runs every workload through the real OS-thread executor at 1/2/4/8
//! workers and emits wall-clock tasks/sec, speedup over one worker, and
//! the O(delta) commit-pipeline counters (live-in re-check ratio,
//! pre-verified fraction, snapshot/delta publishing split) as
//! `BENCH_threaded.json`, so the coordinator's verify cost is tracked
//! across PRs. CI runs this at small scale and fails the build on a
//! scaling or re-check regression.
//!
//! ```text
//! bench_threaded [--json] [--out PATH] [--scale-div N] [--repeats N]
//!                [--min-speedup4 X] [--max-recheck-ratio Y]
//! ```
//!
//! * `--json` — emit JSON (to stdout, or to `--out PATH`); otherwise a
//!   human-readable table is printed.
//! * `--scale-div N` — divide every workload's default scale by `N`
//!   (default 1; CI uses a large divisor for speed).
//! * `--repeats N` — wall-clock runs per point, keeping the best
//!   (default 3).
//! * `--min-speedup4 X` — exit non-zero if the geomean 4-worker
//!   wall-clock speedup over 1 worker falls below `X`. Skipped with a
//!   warning when the host reports fewer than 4 available cores: with
//!   every worker serialized onto one core there is no parallel speedup
//!   to measure, only scheduler noise.
//! * `--max-recheck-ratio Y` — exit non-zero if the geomean live-in
//!   re-check ratio exceeds `Y`. Host-independent: this gate guards the
//!   O(delta) property itself and always applies.

use std::process::ExitCode;

use mssp_bench::{
    collect_threaded_records, print_header, render_threaded_json, threaded_geomean_speedup,
    THREADED_WORKER_COUNTS,
};
use mssp_stats::{fmt3, geomean, Table};

struct Args {
    json: bool,
    out: Option<String>,
    scale_div: u64,
    repeats: u32,
    min_speedup4: Option<f64>,
    max_recheck_ratio: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        scale_div: 1,
        repeats: 3,
        min_speedup4: None,
        max_recheck_ratio: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--json" => args.json = true,
            "--out" => args.out = Some(value("--out")?),
            "--scale-div" => {
                args.scale_div = value("--scale-div")?
                    .parse()
                    .map_err(|e| format!("--scale-div: {e}"))?;
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
            }
            "--min-speedup4" => {
                args.min_speedup4 = Some(
                    value("--min-speedup4")?
                        .parse()
                        .map_err(|e| format!("--min-speedup4: {e}"))?,
                );
            }
            "--max-recheck-ratio" => {
                args.max_recheck_ratio = Some(
                    value("--max-recheck-ratio")?
                        .parse()
                        .map_err(|e| format!("--max-recheck-ratio: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_threaded: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let records = collect_threaded_records(args.scale_div, args.repeats);

    if args.json {
        let json = render_threaded_json(&records, args.scale_div, cores);
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("bench_threaded: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            None => print!("{json}"),
        }
    } else {
        print_header(
            "BENCH",
            "Threaded executor throughput",
            &format!(
                "scale divisor {}, best of {}, {} cores available",
                args.scale_div, args.repeats, cores
            ),
        );
        let mut headers = vec!["benchmark".to_string()];
        for &w in &THREADED_WORKER_COUNTS {
            headers.push(format!("{w}w tasks/s"));
        }
        for &w in &THREADED_WORKER_COUNTS[1..] {
            headers.push(format!("x{w}"));
        }
        headers.push("recheck".to_string());
        let mut table = Table::new(headers.iter().map(String::as_str).collect::<Vec<_>>());
        for r in &records {
            let mut row = vec![r.name.clone()];
            for p in &r.points {
                row.push(format!("{:.0}", p.tasks_per_sec));
            }
            for p in &r.points[1..] {
                row.push(format!("{:.2}", p.speedup_vs_1w));
            }
            row.push(fmt3(r.recheck_ratio));
            table.row(row);
        }
        println!("{}", table.render());
        for &w in &THREADED_WORKER_COUNTS[1..] {
            println!(
                "geomean speedup x{w}:       {:.3}",
                threaded_geomean_speedup(&records, w)
            );
        }
        let recheck: Vec<f64> = records.iter().map(|r| r.recheck_ratio).collect();
        println!("geomean recheck ratio:     {:.3}", geomean(&recheck));
    }

    let mut failed = false;
    if let Some(floor) = args.min_speedup4 {
        if cores < 4 {
            eprintln!(
                "bench_threaded: only {cores} core(s) available — skipping the \
                 4-worker speedup gate (floor {floor:.3}); no parallel speedup \
                 is measurable on this host"
            );
        } else {
            let geo = threaded_geomean_speedup(&records, 4);
            if geo < floor {
                eprintln!(
                    "bench_threaded: geomean 4-worker speedup {geo:.3} below floor {floor:.3}"
                );
                failed = true;
            }
        }
    }
    if let Some(ceiling) = args.max_recheck_ratio {
        let recheck: Vec<f64> = records.iter().map(|r| r.recheck_ratio).collect();
        let geo = geomean(&recheck);
        if geo > ceiling {
            eprintln!(
                "bench_threaded: geomean live-in re-check ratio {geo:.3} above ceiling {ceiling:.3}"
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
