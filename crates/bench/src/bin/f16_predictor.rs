//! F16 — the squash-rate attack, decomposed: live-in value prediction
//! and distiller pre-computation slices each target a different squash
//! cause. Three configurations per squash-prone workload:
//!
//! - `off`: default distillation, predictor disabled (the PR-8 engine);
//! - `pred`: default distillation, predictor enabled — value prediction
//!   alone, so its hit/miss and per-component accuracy are visible;
//! - `full`: slice-feedback redistillation plus predictor — the
//!   headline configuration `bench_speedup` gates on.
//!
//! Spawn-guard vetoes convert would-be wrong-path squash storms into
//! cheap master restarts; the component columns show which predictor
//! (last-value, stride, finite-context) carried the accuracy.

use mssp_bench::{apply_slice_feedback, harness_scale, prepare, print_header, squash_per_1k_tasks};
use mssp_core::EngineConfig;
use mssp_distill::{distill, DistillConfig};
use mssp_stats::Table;
use mssp_timing::{run_mssp_with_engine_setup, TimingConfig};

const TARGETS: [&str; 4] = ["mcf_like", "vpr_like", "gcc_like", "twolf_like"];

fn main() {
    print_header(
        "F16",
        "Live-in value prediction + pre-computation slices vs squash rate",
        "off = PR-8 engine; pred = predictor only; full = slices + predictor",
    );
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    let mut table = Table::new(vec![
        "benchmark",
        "sq/1k off",
        "sq/1k pred",
        "sq/1k full",
        "vetoes",
        "pred hit/miss",
        "acc",
        "best component",
    ]);
    for name in TARGETS {
        let w = mssp_workloads::Workload::by_name(name).expect("workload exists");
        let program = w.program(harness_scale(w, 1));
        let (distilled, mut profile) = prepare(&program, &dcfg);

        let off_engine = EngineConfig {
            enable_predictor: false,
            ..tcfg.engine
        };
        let off = run_mssp_with_engine_setup(&program, &distilled, &tcfg, off_engine, |e| {
            e.enable_squash_samples(512);
        })
        .expect("off run");

        let pred = run_mssp_with_engine_setup(&program, &distilled, &tcfg, tcfg.engine, |_| {})
            .expect("pred run");

        apply_slice_feedback(
            &mut profile,
            off.run.squash_samples.as_deref().unwrap_or(&[]),
        );
        let sliced = distill(&program, &profile, &dcfg).expect("redistill");
        let full = run_mssp_with_engine_setup(&program, &sliced, &tcfg, tcfg.engine, |_| {})
            .expect("full run");

        assert_eq!(
            off.run.state.reg(mssp_workloads::CHECKSUM_REG),
            full.run.state.reg(mssp_workloads::CHECKSUM_REG),
            "all configurations must reach the same architected checksum"
        );

        let report = pred.run.predictor_report;
        let best = if report.context_correct >= report.stride_correct
            && report.context_correct >= report.last_value_correct
        {
            "context"
        } else if report.stride_correct >= report.last_value_correct {
            "stride"
        } else {
            "last-value"
        };
        table.row(vec![
            name.to_string(),
            format!("{:.1}", squash_per_1k_tasks(&off.run.stats)),
            format!("{:.1}", squash_per_1k_tasks(&pred.run.stats)),
            format!("{:.1}", squash_per_1k_tasks(&full.run.stats)),
            full.run.stats.spawn_vetoes.to_string(),
            format!(
                "{}/{}",
                pred.run.stats.predictor_hits, pred.run.stats.predictor_misses
            ),
            format!("{:.3}", report.best_accuracy()),
            format!(
                "{best} (lv {} / st {} / fc {} of {})",
                report.last_value_correct,
                report.stride_correct,
                report.context_correct,
                report.observations
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Guards veto doomed spawns before they ship (wrong-path squashes\n\
         become master restarts). On these workloads the residual live-in\n\
         mismatches are one-shot phase transitions, so the predictor's\n\
         confidence never saturates and it rightly declines to override —\n\
         the override/rescue path is exercised by the engine unit tests.\n\
         `full` is the configuration BENCH_speedup gates on."
    );
}
