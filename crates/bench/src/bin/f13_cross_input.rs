//! F13 — cross-input distillation: profile on a *training* input, run on
//! the *reference* input (the paper's train/ref methodology). The
//! distiller's bets (asserted branches, elided stores, boundary
//! placement) must generalize across inputs of the same character; the
//! squash rate is the honest price of any that do not.

use mssp_bench::{evaluate, evaluate_cross_input, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    print_header(
        "F13",
        "Same-input vs cross-input distillation",
        "speedup (squash events); cross = profiled on the training input",
    );
    let mut table = Table::new(vec!["benchmark", "same-input", "cross-input"]);
    let mut same_all = Vec::new();
    let mut cross_all = Vec::new();
    for w in workloads() {
        let same = evaluate(w, w.default_scale, &dcfg, &tcfg);
        let cross = evaluate_cross_input(w, w.default_scale, &dcfg, &tcfg);
        table.row(vec![
            w.name.to_string(),
            format!(
                "{:.3} ({})",
                same.speedup,
                same.mssp.run.stats.squash_events()
            ),
            format!(
                "{:.3} ({})",
                cross.speedup,
                cross.mssp.run.stats.squash_events()
            ),
        ]);
        same_all.push(same.speedup);
        cross_all.push(cross.speedup);
    }
    table.row(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&same_all)),
        format!("{:.3}", geomean(&cross_all)),
    ]);
    println!("{}", table.render());
}
