//! T10 — executable checks of the companion formal model: superimposition
//! algebra (Definition 8), Lemma 3 (`seq(S,n) = S ← Δ(S,n)`), the jumping
//! refinement (commit trace ⊑ SEQ trace), and master-independence of the
//! committed state (adversarial masters). Complements the proptest suites
//! with a one-shot, human-readable report.

use std::collections::{BTreeMap, BTreeSet};

use mssp_analysis::Profile;
use mssp_bench::print_header;
use mssp_core::{Engine, EngineConfig, UnitCost};
use mssp_distill::{distill, DistillConfig, Distilled};
use mssp_isa::asm::assemble;
use mssp_isa::Reg;
use mssp_machine::{cumulative_writes, seq_n, Cell, Delta, MachineState, SeqMachine};
use mssp_stats::Table;
use mssp_workloads::{workloads, CHECKSUM_REG};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

fn random_delta(rng: &mut Lcg, cells: usize) -> Delta {
    let mut d = Delta::new();
    for _ in 0..cells {
        let kind = rng.next() % 3;
        let cell = match kind {
            0 => Cell::Reg(Reg::new((rng.next() % 32) as u8)),
            1 => Cell::Pc,
            _ => Cell::Mem(rng.next() % 64),
        };
        d.set(cell, rng.next());
    }
    d
}

fn main() {
    print_header(
        "T10",
        "Formal-model validation",
        "each row: property, trials, verdict",
    );
    let mut rng = Lcg(0x5EED);
    let mut table = Table::new(vec!["property", "trials", "verdict"]);
    let mut check = |name: &str, trials: usize, ok: bool| {
        table.row(vec![
            name.to_string(),
            trials.to_string(),
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
        assert!(ok, "{name} failed");
    };

    // Definition 8.1: associativity of superimposition.
    let trials = 2_000;
    let ok = (0..trials).all(|_| {
        let (a, b, c) = (
            random_delta(&mut rng, 6),
            random_delta(&mut rng, 6),
            random_delta(&mut rng, 6),
        );
        a.superimpose(&b).superimpose(&c) == a.superimpose(&b.superimpose(&c))
    });
    check("superimpose associativity", trials, ok);

    // Definition 8.2: containment.
    let mut rng2 = Lcg(0xFACE);
    let ok = (0..trials).all(|_| {
        let s1 = random_delta(&mut rng2, 5);
        let s2 = s1.superimpose(&random_delta(&mut rng2, 5)).superimpose(&s1);
        let s3 = random_delta(&mut rng2, 5);
        !s1.consistent_with(&s2) || s1.superimpose(&s3).consistent_with(&s2.superimpose(&s3))
    });
    check("containment under superimposition", trials, ok);

    // Definition 8.3: idempotency.
    let mut rng3 = Lcg(0xBEEF);
    let ok = (0..trials).all(|_| {
        let s1 = random_delta(&mut rng3, 8);
        // Build a sub-delta.
        let s2: Delta = s1
            .iter()
            .filter(|_| rng3.next().is_multiple_of(2))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        s1.superimpose(&s2) == s1
    });
    check("idempotency of sub-delta superimposition", trials, ok);

    // Lemma 3 on a real workload prefix.
    let w = &workloads()[0];
    let p = w.program(512);
    let s0 = MachineState::boot(&p);
    let ok = [1u64, 10, 100, 1000, 5000].iter().all(|&n| {
        let direct = seq_n(&p, s0.clone(), n).expect("runs");
        let mut via = s0.clone();
        via.apply(&cumulative_writes(&p, s0.clone(), n).expect("runs"));
        direct == via
    });
    check("Lemma 3: seq(S,n) = S <- delta(S,n)", 5, ok);

    // Jumping refinement: commit trace is a subsequence of the SEQ trace.
    let mut refinement_ok = true;
    for w in workloads().iter().take(4) {
        let p = w.program(600);
        let profile = Profile::collect(&p, u64::MAX).expect("profiles");
        let d = distill(&p, &profile, &DistillConfig::default()).expect("distills");
        let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let run = engine.run().expect("runs");
        let trace = run.commit_trace.expect("trace enabled");
        let mut seq_pcs = vec![p.entry()];
        let mut m = SeqMachine::boot(&p);
        loop {
            let info = m.step().expect("runs");
            if info.halted {
                seq_pcs.push(info.pc);
                break;
            }
            seq_pcs.push(info.next_pc);
        }
        let mut pos = 0usize;
        for &pc in &trace {
            match seq_pcs[pos..].iter().position(|&s| s == pc) {
                Some(off) => pos += off,
                None => {
                    refinement_ok = false;
                    break;
                }
            }
        }
    }
    check("jumping refinement (4 workloads)", 4, refinement_ok);

    // Master independence: a garbage master cannot corrupt state.
    let p = assemble(
        "main: addi s0, zero, 500
         loop: add  s1, s1, s0
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .expect("assembles");
    let mut m = SeqMachine::boot(&p);
    m.run(u64::MAX).expect("runs");
    let expected = m.state().reg(CHECKSUM_REG);
    let mut rng4 = Lcg(0xD00D);
    let trials = 24;
    let ok = (0..trials).all(|_| {
        // A random "master" program of arbitrary ALU garbage ending in a
        // self-loop, mapped at the entry and loop boundary.
        let mut src = String::from("main:\n");
        for _ in 0..(rng4.next() % 12 + 1) {
            let rd = rng4.next() % 10 + 4;
            let imm = (rng4.next() % 4096) as i64 - 2048;
            src.push_str(&format!("  addi r{rd}, r{}, {imm}\n", rng4.next() % 10 + 4));
        }
        src.push_str("evil: addi a0, a0, 1\n  j evil\n");
        let garbage = assemble(&src).expect("garbage assembles");
        let mut map = BTreeMap::new();
        map.insert(p.entry(), garbage.entry());
        map.insert(p.entry() + 4, garbage.symbol("evil").expect("label"));
        let d = Distilled::from_parts(garbage, BTreeSet::from([p.entry() + 4]), map);
        let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
            .run()
            .expect("always terminates correctly");
        run.state.reg(CHECKSUM_REG) == expected
    });
    check("master independence (random masters)", trials, ok);

    println!("{}", table.render());
}
