//! T11 — committed task-size distribution: histogram of per-task
//! instruction counts for three representative workloads. Complements F5:
//! the boundary-selection + crossing-grouping machinery should produce
//! tasks concentrated near the configured target, with phase-dependent
//! spread.

use mssp_bench::{prepare, print_header};
use mssp_core::{Engine, UnitCost};
use mssp_distill::DistillConfig;
use mssp_stats::{Histogram, Summary};
use mssp_timing::TimingConfig;
use mssp_workloads::Workload;

fn main() {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    print_header(
        "T11",
        "Committed task-size distribution",
        &format!("target task size {}", dcfg.target_task_size),
    );
    for name in ["gzip_like", "gap_like", "mcf_like"] {
        let w = Workload::by_name(name).expect("known");
        let program = w.program(w.default_scale / 2);
        let (d, _) = prepare(&program, &dcfg);
        let mut engine = Engine::new(&program, &d, tcfg.engine, UnitCost);
        engine.enable_task_size_trace();
        let run = engine.run().expect("runs");
        let sizes = run.task_sizes.expect("trace enabled");
        let samples: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        let summary = Summary::of(&samples);
        println!(
            "{name}: {} tasks | mean {:.0} | min {:.0} | max {:.0} | stddev {:.0}",
            summary.n, summary.mean, summary.min, summary.max, summary.stddev
        );
        let mut h = Histogram::new(0.0, 1024.0, 16);
        for &s in &samples {
            h.add(s);
        }
        for (lo, hi, count) in h.iter_bins() {
            if count > 0 {
                let bar = "#".repeat((60 * count as usize / summary.n).max(1));
                println!("  [{lo:>4.0},{hi:>4.0})  {count:>6}  {bar}");
            }
        }
        if h.overflow() > 0 {
            println!("  [1024, ..)  {:>6}", h.overflow());
        }
        println!();
    }
}
