//! BENCH — machine-readable speedup benchmark.
//!
//! Measures every workload's speedup and distilled/original dynamic
//! instruction ratio (against a DCE-only baseline pipeline) and emits the
//! result as `BENCH_speedup.json`, so the distiller's perf trajectory is
//! tracked across PRs. CI runs this at small scale and fails the build on
//! a speedup regression.
//!
//! ```text
//! bench_speedup [--json] [--out PATH] [--scale-div N] [--min-speedup X]
//!               [--max-squash-per-1k X] [--min-squash-improvement X]
//! ```
//!
//! * `--json` — emit JSON (to stdout, or to `--out PATH`); otherwise a
//!   human-readable table is printed.
//! * `--scale-div N` — divide every workload's default scale by `N`
//!   (default 1; CI uses a large divisor for speed).
//! * `--min-speedup X` — exit non-zero if any workload's speedup falls
//!   below `X`.
//! * `--max-squash-per-1k X` — exit non-zero if any squash-prone workload
//!   (one whose attack-off baseline squashes) still squashes more than `X`
//!   per 1k tasks in the headline run.
//! * `--min-squash-improvement X` — exit non-zero if any squash-prone
//!   workload's `baseline / headline` squash-rate ratio falls below `X`.

use std::process::ExitCode;

use mssp_bench::{collect_speedup_records, print_header, render_speedup_json};
use mssp_stats::{fmt3, geomean, Table};

/// Workloads the squash-rate gates apply to: the squash-prone set whose
/// attack-off baseline reliably squashes at every scale CI runs at.
const SQUASH_GATED: [&str; 4] = ["mcf_like", "vpr_like", "gcc_like", "twolf_like"];

struct Args {
    json: bool,
    out: Option<String>,
    scale_div: u64,
    min_speedup: Option<f64>,
    max_squash_per_1k: Option<f64>,
    min_squash_improvement: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        scale_div: 1,
        min_speedup: None,
        max_squash_per_1k: None,
        min_squash_improvement: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--json" => args.json = true,
            "--out" => args.out = Some(value("--out")?),
            "--scale-div" => {
                args.scale_div = value("--scale-div")?
                    .parse()
                    .map_err(|e| format!("--scale-div: {e}"))?;
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            "--max-squash-per-1k" => {
                args.max_squash_per_1k = Some(
                    value("--max-squash-per-1k")?
                        .parse()
                        .map_err(|e| format!("--max-squash-per-1k: {e}"))?,
                );
            }
            "--min-squash-improvement" => {
                args.min_squash_improvement = Some(
                    value("--min-squash-improvement")?
                        .parse()
                        .map_err(|e| format!("--min-squash-improvement: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_speedup: {e}");
            return ExitCode::FAILURE;
        }
    };

    let records = collect_speedup_records(args.scale_div);

    if args.json {
        let json = render_speedup_json(&records, args.scale_div);
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("bench_speedup: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            None => print!("{json}"),
        }
    } else {
        print_header(
            "BENCH",
            "Machine-readable speedup benchmark",
            &format!("scale divisor {}", args.scale_div),
        );
        let mut table = Table::new(vec![
            "benchmark",
            "speedup",
            "dyn ratio",
            "dce-only ratio",
            "squash/1k",
            "sq/1k base",
            "pred acc",
            "slices",
        ]);
        for r in &records {
            table.row(vec![
                r.name.clone(),
                fmt3(r.speedup),
                fmt3(r.dyn_ratio),
                fmt3(r.dyn_ratio_dce_only),
                format!("{:.1}", r.squash_per_1k_tasks),
                format!("{:.1}", r.squash_per_1k_tasks_baseline),
                fmt3(r.predictor_accuracy),
                r.slices_emitted.to_string(),
            ]);
        }
        println!("{}", table.render());
        let ratios: Vec<f64> = records.iter().map(|r| r.dyn_ratio).collect();
        let baselines: Vec<f64> = records.iter().map(|r| r.dyn_ratio_dce_only).collect();
        let speedups: Vec<f64> = records.iter().map(|r| r.speedup).collect();
        println!("geomean speedup:            {:.3}", geomean(&speedups));
        println!("geomean dyn ratio:          {:.3}", geomean(&ratios));
        println!("geomean dyn ratio (dce):    {:.3}", geomean(&baselines));
    }

    let mut failed = false;
    if let Some(floor) = args.min_speedup {
        for r in &records {
            if r.speedup < floor {
                eprintln!(
                    "bench_speedup: {} speedup {:.3} below floor {:.3}",
                    r.name, r.speedup, floor
                );
                failed = true;
            }
        }
    }
    let gated = records
        .iter()
        .filter(|r| SQUASH_GATED.contains(&r.name.as_str()));
    if let Some(ceiling) = args.max_squash_per_1k {
        for r in gated.clone() {
            if r.squash_per_1k_tasks > ceiling {
                eprintln!(
                    "bench_speedup: {} squash rate {:.2}/1k above ceiling {:.2}/1k",
                    r.name, r.squash_per_1k_tasks, ceiling
                );
                failed = true;
            }
        }
    }
    if let Some(floor) = args.min_squash_improvement {
        for r in gated {
            // A headline rate of zero is infinite improvement; only a
            // still-squashing run can fall below the floor.
            let improvement = if r.squash_per_1k_tasks == 0.0 {
                f64::INFINITY
            } else {
                r.squash_per_1k_tasks_baseline / r.squash_per_1k_tasks
            };
            if improvement < floor {
                eprintln!(
                    "bench_speedup: {} squash improvement {:.2}x \
                     ({:.2}/1k -> {:.2}/1k) below floor {:.2}x",
                    r.name,
                    improvement,
                    r.squash_per_1k_tasks_baseline,
                    r.squash_per_1k_tasks,
                    floor
                );
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
