//! F4 — speedup vs. processor count: MSSP with 1, 2, 3, 7 and 15 slaves
//! (2, 3, 4, 8 and 16 cores including the master). The paper's scaling
//! saturates once the master becomes the critical path.
//!
//! A second section measures the *threaded* executor (real OS-thread
//! slaves, checkpoint-snapshot live-ins) at 1, 2, 4 and 8 workers:
//! wall-clock per run plus the scaling ratio vs. one worker, written to
//! `results/f4_scaling_threaded.txt` so the lock-free worker loop's
//! behaviour is tracked alongside the discrete-model numbers.

use std::fmt::Write as _;
use std::time::Duration;

use mssp_bench::{evaluate, harness_scale, prepare, print_header};
use mssp_core::{run_threaded, EngineConfig};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let slave_counts = [1usize, 2, 3, 7, 15];
    print_header(
        "F4",
        "Speedup vs. number of processors",
        "columns are total cores (1 master + N slaves); aggressive distillation",
    );
    let mut headers = vec!["benchmark"];
    let labels: Vec<String> = slave_counts.iter().map(|s| format!("{}c", s + 1)).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(headers);
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); slave_counts.len()];
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        for (i, &slaves) in slave_counts.iter().enumerate() {
            let mut tcfg = TimingConfig::default();
            tcfg.engine.num_slaves = slaves;
            let e = evaluate(w, harness_scale(w, 2), &DistillConfig::default(), &tcfg);
            row.push(format!("{:.3}", e.speedup));
            per_count[i].push(e.speedup);
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_count {
        geo_row.push(format!("{:.3}", geomean(col)));
    }
    table.row(geo_row);
    println!("{}", table.render());

    let threaded = threaded_section();
    println!("{threaded}");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/f4_scaling_threaded.txt", &threaded)
        .expect("write threaded scaling results");
}

/// Per-workload x2/x4/x8 scaling ratios of the threaded executor as
/// measured *before* the O(delta) verify/commit pipeline (per-commit
/// `arch.clone()` snapshots, full live-in re-check on the coordinator).
/// Frozen here so the regenerated table carries its own baseline.
const BEFORE_ODELTA: [(&str, [f64; 3]); 12] = [
    ("gzip_like", [1.08, 1.06, 1.04]),
    ("vpr_like", [0.97, 0.93, 0.96]),
    ("gcc_like", [0.99, 0.99, 0.93]),
    ("mcf_like", [0.96, 0.93, 0.97]),
    ("crafty_like", [1.05, 1.03, 1.02]),
    ("parser_like", [1.03, 1.02, 1.01]),
    ("eon_like", [0.99, 0.97, 0.95]),
    ("perlbmk_like", [1.02, 1.02, 0.99]),
    ("gap_like", [1.15, 0.87, 1.05]),
    ("vortex_like", [1.03, 1.02, 1.06]),
    ("bzip2_like", [1.04, 1.01, 1.02]),
    ("twolf_like", [0.99, 0.97, 0.96]),
];

/// Wall-clock scaling of the threaded executor at 1/2/4/8 workers, with
/// before/after columns: `pre` is the frozen pre-O(delta) measurement
/// ([`BEFORE_ODELTA`]), `now` is measured fresh.
fn threaded_section() -> String {
    let worker_counts = [1usize, 2, 4, 8];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== F4t: Threaded executor wall-clock vs. worker count ==\n   \
         ms per run (best of {BEST_OF}); xN = time(1 worker) / time(N workers);\n   \
         `pre` columns are the frozen pre-O(delta) commit-pipeline baseline\n   \
         (per-commit full-state snapshots, all live-ins re-checked in order)\n"
    );
    let mut headers = vec!["benchmark".to_string(), "1w ms".to_string()];
    for &n in &worker_counts[1..] {
        headers.push(format!("x{n} pre"));
        headers.push(format!("x{n} now"));
    }
    let mut table = Table::new(headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut before_cols: Vec<Vec<f64>> = vec![Vec::new(); worker_counts.len() - 1];
    let mut after_cols: Vec<Vec<f64>> = vec![Vec::new(); worker_counts.len() - 1];
    for w in workloads() {
        let program = w.program(harness_scale(w, 2));
        let (distilled, _) = prepare(&program, &DistillConfig::default());
        let times: Vec<Duration> = worker_counts
            .iter()
            .map(|&workers| {
                let cfg = EngineConfig {
                    num_slaves: workers,
                    ..EngineConfig::default()
                };
                (0..BEST_OF)
                    .map(|_| {
                        run_threaded(&program, &distilled, cfg)
                            .expect("threaded run succeeds")
                            .elapsed
                    })
                    .min()
                    .expect("BEST_OF > 0")
            })
            .collect();
        let before = BEFORE_ODELTA
            .iter()
            .find(|(name, _)| *name == w.name)
            .map(|(_, ratios)| *ratios);
        let mut row = vec![
            w.name.to_string(),
            format!("{:.2}", times[0].as_secs_f64() * 1e3),
        ];
        for (i, t) in times[1..].iter().enumerate() {
            let ratio = times[0].as_secs_f64() / t.as_secs_f64().max(1e-9);
            after_cols[i].push(ratio);
            match before {
                Some(ratios) => {
                    before_cols[i].push(ratios[i]);
                    row.push(format!("{:.2}", ratios[i]));
                }
                None => row.push("-".to_string()),
            }
            row.push(format!("{ratio:.2}"));
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string(), String::new()];
    for i in 0..worker_counts.len() - 1 {
        geo_row.push(format!("{:.2}", geomean(&before_cols[i])));
        geo_row.push(format!("{:.2}", geomean(&after_cols[i])));
    }
    table.row(geo_row);
    let _ = writeln!(out, "{}", table.render());
    out
}

/// Runs per configuration; wall-clock is noisy, keep the best.
const BEST_OF: usize = 3;
