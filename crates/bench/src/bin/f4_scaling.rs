//! F4 — speedup vs. processor count: MSSP with 1, 2, 3, 7 and 15 slaves
//! (2, 3, 4, 8 and 16 cores including the master). The paper's scaling
//! saturates once the master becomes the critical path.

use mssp_bench::{evaluate, harness_scale, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let slave_counts = [1usize, 2, 3, 7, 15];
    print_header(
        "F4",
        "Speedup vs. number of processors",
        "columns are total cores (1 master + N slaves); aggressive distillation",
    );
    let mut headers = vec!["benchmark"];
    let labels: Vec<String> = slave_counts.iter().map(|s| format!("{}c", s + 1)).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(headers);
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); slave_counts.len()];
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        for (i, &slaves) in slave_counts.iter().enumerate() {
            let mut tcfg = TimingConfig::default();
            tcfg.engine.num_slaves = slaves;
            let e = evaluate(w, harness_scale(w, 2), &DistillConfig::default(), &tcfg);
            row.push(format!("{:.3}", e.speedup));
            per_count[i].push(e.speedup);
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_count {
        geo_row.push(format!("{:.3}", geomean(col)));
    }
    table.row(geo_row);
    println!("{}", table.render());
}
