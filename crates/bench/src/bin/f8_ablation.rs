//! F8 — distillation ablation: speedup and squash rate per distillation
//! level. The decoupling tradeoff: more aggressive approximation buys a
//! shorter fast path at the cost of occasional misspeculation, and the
//! net is positive — while the `None` level isolates pure paradigm
//! overhead (master ≈ original program).

use mssp_bench::{dyn_ratio, evaluate, print_header};
use mssp_distill::{DistillConfig, DistillLevel, PassConfig};
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    print_header(
        "F8",
        "Distillation-level ablation",
        "speedup (and squash events) per level; squashes in parentheses",
    );
    let mut table = Table::new(vec!["benchmark", "none", "conservative", "aggressive"]);
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        for (i, level) in DistillLevel::all().into_iter().enumerate() {
            let e = evaluate(w, w.default_scale, &DistillConfig::at_level(level), &tcfg);
            row.push(format!(
                "{:.3} ({})",
                e.speedup,
                e.mssp.run.stats.squash_events()
            ));
            per_level[i].push(e.speedup);
        }
        table.row(row);
    }
    table.row(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&per_level[0])),
        format!("{:.3}", geomean(&per_level[1])),
        format!("{:.3}", geomean(&per_level[2])),
    ]);
    println!("{}", table.render());

    // Second axis: the optimizing pass pipeline, ablated one pass at a
    // time at the aggressive level. Reported as the distilled/original
    // dynamic instruction ratio (lower is better) so each pass's dynamic
    // contribution is visible independently of timing noise.
    println!("pass-pipeline ablation, dynamic ratio (aggressive level):");
    let variants: [(&str, PassConfig); 5] = [
        ("full", PassConfig::all()),
        (
            "-fold",
            PassConfig {
                const_fold: false,
                ..PassConfig::all()
            },
        ),
        (
            "-copy",
            PassConfig {
                copy_prop: false,
                ..PassConfig::all()
            },
        ),
        (
            "-thread",
            PassConfig {
                jump_thread: false,
                ..PassConfig::all()
            },
        ),
        ("dce-only", PassConfig::dce_only()),
    ];
    let mut ptable = Table::new(vec![
        "benchmark",
        "full",
        "-fold",
        "-copy",
        "-thread",
        "dce-only",
    ]);
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        for (i, (_, passes)) in variants.iter().enumerate() {
            let dcfg = DistillConfig {
                passes: *passes,
                ..DistillConfig::default()
            };
            let r = dyn_ratio(&evaluate(w, w.default_scale, &dcfg, &tcfg));
            row.push(format!("{r:.3}"));
            per_variant[i].push(r);
        }
        ptable.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for ratios in &per_variant {
        geo_row.push(format!("{:.3}", geomean(ratios)));
    }
    ptable.row(geo_row);
    println!("{}", ptable.render());
}
