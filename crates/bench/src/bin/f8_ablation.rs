//! F8 — distillation ablation: speedup and squash rate per distillation
//! level. The decoupling tradeoff: more aggressive approximation buys a
//! shorter fast path at the cost of occasional misspeculation, and the
//! net is positive — while the `None` level isolates pure paradigm
//! overhead (master ≈ original program).

use mssp_bench::{evaluate, print_header};
use mssp_distill::{DistillConfig, DistillLevel};
use mssp_stats::{geomean, Table};
use mssp_timing::TimingConfig;
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    print_header(
        "F8",
        "Distillation-level ablation",
        "speedup (and squash events) per level; squashes in parentheses",
    );
    let mut table = Table::new(vec!["benchmark", "none", "conservative", "aggressive"]);
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in workloads() {
        let mut row = vec![w.name.to_string()];
        for (i, level) in DistillLevel::all().into_iter().enumerate() {
            let e = evaluate(w, w.default_scale, &DistillConfig::at_level(level), &tcfg);
            row.push(format!(
                "{:.3} ({})",
                e.speedup,
                e.mssp.run.stats.squash_events()
            ));
            per_level[i].push(e.speedup);
        }
        table.row(row);
    }
    table.row(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&per_level[0])),
        format!("{:.3}", geomean(&per_level[1])),
        format!("{:.3}", geomean(&per_level[2])),
    ]);
    println!("{}", table.render());
}
