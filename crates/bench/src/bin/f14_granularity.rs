//! F14 — verification-granularity ablation: byte-masked vs whole-word
//! live-in tracking. Word granularity makes sub-word stores
//! read-modify-write their containing word, so adjacent tasks writing
//! neighbouring bytes falsely conflict — the false-sharing problem the
//! paper's fine-grain verify hardware avoids.

use mssp_bench::{prepare, print_header};
use mssp_distill::DistillConfig;
use mssp_stats::Table;
use mssp_timing::{run_baseline, run_mssp_with_engine_config, speedup, TimingConfig};
use mssp_workloads::workloads;

fn main() {
    let tcfg = TimingConfig::default();
    let dcfg = DistillConfig::default();
    print_header(
        "F14",
        "Byte-masked vs word-granular live-in tracking",
        "speedup (squash events per 1000 tasks); byte-heavy benchmarks suffer most",
    );
    let mut table = Table::new(vec!["benchmark", "byte-masked", "word-granular"]);
    for w in workloads() {
        let program = w.program(w.default_scale);
        let (d, _) = prepare(&program, &dcfg);
        let base = run_baseline(&program, &tcfg, u64::MAX).expect("baseline");
        let mut row = vec![w.name.to_string()];
        for word_granular in [false, true] {
            let mut ecfg = tcfg.engine;
            ecfg.word_granular_live_ins = word_granular;
            let run = run_mssp_with_engine_config(&program, &d, &tcfg, ecfg).expect("runs");
            let s = &run.run.stats;
            row.push(format!(
                "{:.3} ({:.1})",
                speedup(base.cycles, run.run.cycles),
                1000.0 * s.squash_events() as f64 / s.spawned_tasks.max(1) as f64
            ));
        }
        table.row(row);
    }
    println!("{}", table.render());
}
