//! Criterion micro-benchmarks for the MSSP substrate: the hot operations
//! of the verify/commit path (superimposition, consistency), the
//! interpreter, the µarch models, the distiller, and a small end-to-end
//! MSSP run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mssp_analysis::Profile;
use mssp_core::{Engine, EngineConfig, UnitCost};
use mssp_distill::{distill, DistillConfig};
use mssp_isa::asm::assemble;
use mssp_machine::{Cell, Delta, MachineState, SeqMachine};
use mssp_sim::{Cache, CacheConfig, Gshare, GshareConfig};
use mssp_timing::{run_mssp, TimingConfig};
use mssp_workloads::Workload;

fn delta_of(n: u64, salt: u64) -> Delta {
    (0..n).map(|i| (Cell::Mem(i * 3 + salt), i ^ salt)).collect()
}

fn bench_delta(c: &mut Criterion) {
    let a = delta_of(64, 0);
    let b = delta_of(64, 1);
    c.bench_function("delta/superimpose_64", |bench| {
        bench.iter(|| std::hint::black_box(a.superimpose(&b)))
    });

    let mut state = MachineState::new();
    state.apply(&a);
    c.bench_function("delta/verify_64_live_ins", |bench| {
        bench.iter(|| std::hint::black_box(a.consistent_with_state(&state)))
    });

    c.bench_function("delta/commit_64_live_outs", |bench| {
        bench.iter_batched(
            || state.clone(),
            |mut s| {
                s.apply(&b);
                std::hint::black_box(s.pc())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let p = assemble(
        "main: addi s0, zero, 1000
         loop: add  s1, s1, s0
               sd   s1, -8(sp)
               ld   t0, -8(sp)
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    c.bench_function("interp/5k_instructions", |bench| {
        bench.iter(|| {
            let mut m = SeqMachine::boot(&p);
            m.run(u64::MAX).unwrap();
            std::hint::black_box(m.instructions())
        })
    });
}

fn bench_uarch(c: &mut Criterion) {
    c.bench_function("cache/1k_accesses", |bench| {
        let mut cache = Cache::new(CacheConfig::l1_default());
        let mut addr = 0u64;
        bench.iter(|| {
            let mut hits = 0u32;
            for _ in 0..1000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(17);
                hits += cache.access(addr % (1 << 20)) as u32;
            }
            std::hint::black_box(hits)
        })
    });
    c.bench_function("gshare/1k_predictions", |bench| {
        let mut bp = Gshare::new(GshareConfig::default());
        let mut x = 7u64;
        bench.iter(|| {
            let mut correct = 0u32;
            for i in 0..1000u64 {
                x = x.wrapping_mul(25214903917).wrapping_add(11);
                correct += bp.predict_and_update(0x1000 + (i % 13) * 4, x & 3 != 0) as u32;
            }
            std::hint::black_box(correct)
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let w = Workload::by_name("gzip_like").unwrap();
    let program = w.program(1024);
    let profile = Profile::collect(&program, u64::MAX).unwrap();

    c.bench_function("distill/gzip_1k", |bench| {
        bench.iter(|| {
            std::hint::black_box(
                distill(&program, &profile, &DistillConfig::default()).unwrap(),
            )
        })
    });

    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    c.bench_function("engine/functional_gzip_1k", |bench| {
        bench.iter(|| {
            let run = Engine::new(&program, &d, EngineConfig::default(), UnitCost)
                .run()
                .unwrap();
            std::hint::black_box(run.stats.committed_instructions)
        })
    });
    c.bench_function("engine/timed_gzip_1k", |bench| {
        let tcfg = TimingConfig::default();
        bench.iter(|| {
            let run = run_mssp(&program, &d, &tcfg).unwrap();
            std::hint::black_box(run.run.cycles)
        })
    });
}

criterion_group!(
    benches,
    bench_delta,
    bench_interpreter,
    bench_uarch,
    bench_pipeline
);
criterion_main!(benches);
