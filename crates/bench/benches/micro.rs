//! Micro-benchmarks for the MSSP substrate: the hot operations of the
//! verify/commit path (superimposition, consistency), the interpreter,
//! the µarch models, the distiller, and a small end-to-end MSSP run.
//!
//! A self-contained harness (`harness = false`; the build environment
//! has no crate registry, so `criterion` is unavailable): each benchmark
//! is auto-calibrated to ~50ms of work and reports mean ns/iter over the
//! best of three measurement rounds.

use std::time::{Duration, Instant};

use mssp_analysis::Profile;
use mssp_core::{Engine, EngineConfig, UnitCost};
use mssp_distill::{distill, DistillConfig};
use mssp_isa::asm::assemble;
use mssp_machine::{Cell, Delta, MachineState, SeqMachine};
use mssp_sim::{Cache, CacheConfig, Gshare, GshareConfig};
use mssp_timing::{run_mssp, TimingConfig};
use mssp_workloads::Workload;

/// Times `body` (called once per iteration), printing mean ns/iter of the
/// best of three rounds, each round sized to take roughly 50ms.
fn bench<T>(name: &str, mut body: impl FnMut() -> T) {
    // Calibrate: grow the iteration count until a round takes >= 10ms.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(body());
        }
        let elapsed = t.elapsed();
        if elapsed >= Duration::from_millis(10) {
            let target = Duration::from_millis(50).as_nanos();
            let per = (elapsed.as_nanos() / u128::from(iters)).max(1);
            iters = u64::try_from(target / per).unwrap_or(u64::MAX).max(1);
            break;
        }
        iters = iters.saturating_mul(8);
    }
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(body());
        }
        best = best.min(t.elapsed().as_nanos() / u128::from(iters));
    }
    println!("{name:<28} {best:>12} ns/iter  ({iters} iters/round)");
}

fn delta_of(n: u64, salt: u64) -> Delta {
    (0..n)
        .map(|i| (Cell::Mem(i * 3 + salt), i ^ salt))
        .collect()
}

fn bench_delta() {
    let a = delta_of(64, 0);
    let b = delta_of(64, 1);
    bench("delta/superimpose_64", || a.superimpose(&b));

    let mut state = MachineState::new();
    state.apply(&a);
    bench("delta/verify_64_live_ins", || {
        a.consistent_with_state(&state)
    });

    bench("delta/commit_64_live_outs", || {
        let mut s = state.clone();
        s.apply(&b);
        s.pc()
    });
}

fn bench_interpreter() {
    let p = assemble(
        "main: addi s0, zero, 1000
         loop: add  s1, s1, s0
               sd   s1, -8(sp)
               ld   t0, -8(sp)
               addi s0, s0, -1
               bnez s0, loop
               halt",
    )
    .unwrap();
    bench("interp/5k_instructions", || {
        let mut m = SeqMachine::boot(&p);
        m.run(u64::MAX).unwrap();
        m.instructions()
    });
}

fn bench_uarch() {
    let mut cache = Cache::new(CacheConfig::l1_default());
    let mut addr = 0u64;
    bench("cache/1k_accesses", || {
        let mut hits = 0u32;
        for _ in 0..1000 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(17);
            hits += cache.access(addr % (1 << 20)) as u32;
        }
        hits
    });
    let mut bp = Gshare::new(GshareConfig::default());
    let mut x = 7u64;
    bench("gshare/1k_predictions", || {
        let mut correct = 0u32;
        for i in 0..1000u64 {
            x = x.wrapping_mul(25214903917).wrapping_add(11);
            correct += bp.predict_and_update(0x1000 + (i % 13) * 4, x & 3 != 0) as u32;
        }
        correct
    });
}

fn bench_pipeline() {
    let w = Workload::by_name("gzip_like").unwrap();
    let program = w.program(1024);
    let profile = Profile::collect(&program, u64::MAX).unwrap();

    bench("distill/gzip_1k", || {
        distill(&program, &profile, &DistillConfig::default()).unwrap()
    });

    let d = distill(&program, &profile, &DistillConfig::default()).unwrap();
    bench("engine/functional_gzip_1k", || {
        Engine::new(&program, &d, EngineConfig::default(), UnitCost)
            .run()
            .unwrap()
            .stats
            .committed_instructions
    });
    let tcfg = TimingConfig::default();
    bench("engine/timed_gzip_1k", || {
        run_mssp(&program, &d, &tcfg).unwrap().run.cycles
    });
}

fn main() {
    println!("mssp micro-benchmarks (mean ns/iter, best of 3 rounds)");
    bench_delta();
    bench_interpreter();
    bench_uarch();
    bench_pipeline();
}
