//! Timing-model behaviour tests: the CMP cost model must respond to its
//! knobs in the physically sensible direction.

use mssp_analysis::Profile;
use mssp_core::{CoreRole, CostModel};
use mssp_distill::{distill, DistillConfig};
use mssp_isa::asm::assemble;
use mssp_isa::{Instr, Program, Reg};
use mssp_machine::StepInfo;
use mssp_timing::{run_baseline, run_mssp, speedup, CmpCost, OverheadConfig, TimingConfig};

fn fixture() -> (Program, mssp_distill::Distilled) {
    let p = assemble(
        "main:  addi s0, zero, 3000
         loop:  mul  t0, s0, s0
                add  s1, s1, t0
                sd   s1, -8(sp)
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    (p, d)
}

#[test]
fn slower_memory_slows_the_baseline() {
    let p = fixture().0;
    let fast = TimingConfig::default();
    let mut slow = TimingConfig::default();
    slow.core.lat.mem = 400;
    slow.core.lat.l2_hit = 60;
    let a = run_baseline(&p, &fast, u64::MAX).unwrap();
    let b = run_baseline(&p, &slow, u64::MAX).unwrap();
    assert!(b.cycles >= a.cycles);
}

#[test]
fn higher_overheads_never_speed_mssp_up() {
    let (p, d) = fixture();
    let cheap = TimingConfig::default();
    let pricey = TimingConfig {
        overhead: OverheadConfig {
            spawn: 100,
            dispatch: 200,
            verify_base: 100,
            commit_base: 100,
            cells_per_cycle: 1,
            squash: 400,
        },
        ..TimingConfig::default()
    };
    let a = run_mssp(&p, &d, &cheap).unwrap();
    let b = run_mssp(&p, &d, &pricey).unwrap();
    assert!(b.run.cycles >= a.run.cycles);
    assert_eq!(
        a.run.state.reg(Reg::S1),
        b.run.state.reg(Reg::S1),
        "overheads must never change results"
    );
}

#[test]
fn per_cell_costs_scale_with_set_sizes() {
    let mut cost = CmpCost::new(&TimingConfig::default());
    assert!(cost.verify_cost(400) > cost.verify_cost(4));
    assert!(cost.commit_cost(400) > cost.commit_cost(4));
    assert!(cost.dispatch_latency(400) > cost.dispatch_latency(0));
}

#[test]
fn squash_cools_the_right_core() {
    let tcfg = TimingConfig::default();
    let mut cost = CmpCost::new(&tcfg);
    let info = StepInfo {
        pc: 0x1000,
        instr: Instr::nop(),
        next_pc: 0x1004,
        halted: false,
        taken: None,
        mem: None,
    };
    // Warm slave 2.
    let cold = cost.instr_cost(CoreRole::Slave(2), &info);
    let warm = cost.instr_cost(CoreRole::Slave(2), &info);
    assert!(cold > warm);
    // Squash slave 2: it refetches; slave 3 is unaffected by that squash.
    cost.on_squash(CoreRole::Slave(2));
    let refetch = cost.instr_cost(CoreRole::Slave(2), &info);
    assert!(refetch > warm);
}

#[test]
fn identical_cores_make_master_and_baseline_cpi_comparable() {
    let (p, d) = fixture();
    let tcfg = TimingConfig::default();
    let base = run_baseline(&p, &tcfg, u64::MAX).unwrap();
    let mssp = run_mssp(&p, &d, &tcfg).unwrap();
    let master_cpi = mssp.master_core.cpi();
    assert!(
        (master_cpi - base.cpi()).abs() < 1.5,
        "same core model should give similar CPI: master {master_cpi:.2} vs base {:.2}",
        base.cpi()
    );
}

#[test]
fn speedup_is_reported_against_cycles() {
    let (p, d) = fixture();
    let tcfg = TimingConfig::default();
    let base = run_baseline(&p, &tcfg, u64::MAX).unwrap();
    let mssp = run_mssp(&p, &d, &tcfg).unwrap();
    let s = speedup(base.cycles, mssp.run.cycles);
    assert!(s > 0.3 && s < 10.0, "implausible speedup {s}");
}

#[test]
fn baseline_is_deterministic() {
    let p = fixture().0;
    let tcfg = TimingConfig::default();
    let a = run_baseline(&p, &tcfg, u64::MAX).unwrap();
    let b = run_baseline(&p, &tcfg, u64::MAX).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.state, b.state);
}

#[test]
fn mssp_timing_is_deterministic() {
    let (p, d) = fixture();
    let tcfg = TimingConfig::default();
    let a = run_mssp(&p, &d, &tcfg).unwrap();
    let b = run_mssp(&p, &d, &tcfg).unwrap();
    assert_eq!(a.run.cycles, b.run.cycles);
    assert_eq!(a.run.stats, b.run.stats);
}
