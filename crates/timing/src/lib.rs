//! # mssp-timing
//!
//! The CMP timing model for MSSP and its baseline:
//!
//! * [`CmpCost`] — a [`CostModel`] giving the master and every slave an
//!   in-order core with private L1s and a branch predictor, all backed by
//!   one shared L2, plus checkpoint/dispatch/verify/commit/squash
//!   overheads.
//! * [`run_baseline`] — the comparison point: the *same* core model
//!   executing the original program sequentially (the paper compares MSSP
//!   on N cores against one of those cores running the unmodified binary).
//! * [`run_mssp`] — a full MSSP timing run; returns cycles, engine
//!   statistics and per-core microarchitectural counters.
//!
//! Absolute cycle counts are a model, not a prediction of the paper's
//! testbed; the experiments compare *relative* numbers (speedups, trends),
//! which is what the reproduction targets.
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::Profile;
//! use mssp_distill::{distill, DistillConfig};
//! use mssp_timing::{run_baseline, run_mssp, TimingConfig};
//!
//! let p = assemble(
//!     "main: addi s0, zero, 500
//!      loop: add  s1, s1, s0
//!            addi s0, s0, -1
//!            bnez s0, loop
//!            halt",
//! ).unwrap();
//! let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
//! let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
//!
//! let cfg = TimingConfig::default();
//! let base = run_baseline(&p, &cfg, u64::MAX).unwrap();
//! let mssp = run_mssp(&p, &d, &cfg).unwrap();
//! assert_eq!(base.state.reg(mssp_isa::Reg::S1), mssp.run.state.reg(mssp_isa::Reg::S1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mssp_core::{CoreRole, CostModel, Engine, EngineConfig, EngineError, MsspRun};
use mssp_distill::Distilled;
use mssp_isa::Program;
use mssp_machine::{MachineState, SeqError, SeqMachine, StepInfo};
use mssp_sim::{Cache, CacheConfig, CoreConfig, CorePipe, CoreStats};

/// MSSP-specific protocol overheads, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadConfig {
    /// Master-side cost of taking a checkpoint.
    pub spawn: u64,
    /// Checkpoint transfer latency to a slave (plus a per-cell component).
    pub dispatch: u64,
    /// Fixed verify cost per task.
    pub verify_base: u64,
    /// Fixed commit cost per task.
    pub commit_base: u64,
    /// Live-in/live-out cells processed per verify/commit/dispatch cycle.
    pub cells_per_cycle: u64,
    /// Pipeline-flush penalty on squash.
    pub squash: u64,
}

impl Default for OverheadConfig {
    fn default() -> OverheadConfig {
        OverheadConfig {
            spawn: 8,
            dispatch: 16,
            verify_base: 4,
            commit_base: 4,
            cells_per_cycle: 4,
            squash: 16,
        }
    }
}

/// Full timing configuration of the simulated CMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Per-core configuration (identical for master, slaves, baseline).
    pub core: CoreConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Protocol overheads.
    pub overhead: OverheadConfig,
    /// Engine parameters (slave count etc.).
    pub engine: EngineConfig,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            core: CoreConfig::default(),
            l2: CacheConfig::l2_default(),
            overhead: OverheadConfig::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// The CMP cost model: one [`CorePipe`] per core, a shared L2, and the
/// protocol overheads.
#[derive(Debug)]
pub struct CmpCost {
    master: CorePipe,
    slaves: Vec<CorePipe>,
    l2: Cache,
    overhead: OverheadConfig,
}

impl CmpCost {
    /// Creates a cold CMP with the configured number of slave cores.
    #[must_use]
    pub fn new(config: &TimingConfig) -> CmpCost {
        CmpCost {
            master: CorePipe::new(config.core),
            slaves: (0..config.engine.num_slaves)
                .map(|_| CorePipe::new(config.core))
                .collect(),
            l2: Cache::new(config.l2),
            overhead: config.overhead,
        }
    }

    /// Per-core statistics: `(master, slaves)`.
    #[must_use]
    pub fn core_stats(&self) -> (CoreStats, Vec<CoreStats>) {
        (
            self.master.stats(),
            self.slaves.iter().map(CorePipe::stats).collect(),
        )
    }

    fn cells_cost(&self, base: u64, cells: usize) -> u64 {
        base + cells as u64 / self.overhead.cells_per_cycle.max(1)
    }
}

impl CostModel for CmpCost {
    fn instr_cost(&mut self, role: CoreRole, info: &StepInfo) -> u64 {
        let l2 = &mut self.l2;
        let pipe = match role {
            CoreRole::Master => &mut self.master,
            CoreRole::Slave(i) | CoreRole::Recovery(i) => {
                let n = self.slaves.len();
                &mut self.slaves[i % n]
            }
        };
        pipe.instr_cost(info, &mut |addr| l2.access(addr))
    }

    fn spawn_overhead(&mut self, _cells: usize) -> u64 {
        self.overhead.spawn
    }

    fn dispatch_latency(&mut self, cells: usize) -> u64 {
        self.cells_cost(self.overhead.dispatch, cells)
    }

    fn verify_cost(&mut self, live_ins: usize) -> u64 {
        self.cells_cost(self.overhead.verify_base, live_ins)
    }

    fn commit_cost(&mut self, live_outs: usize) -> u64 {
        self.cells_cost(self.overhead.commit_base, live_outs)
    }

    fn squash_penalty(&mut self) -> u64 {
        self.overhead.squash
    }

    fn on_squash(&mut self, role: CoreRole) {
        match role {
            CoreRole::Master => self.master.squash(),
            CoreRole::Slave(i) | CoreRole::Recovery(i) => {
                let n = self.slaves.len();
                self.slaves[i % n].squash();
            }
        }
    }
}

/// Result of a baseline (sequential uniprocessor) timing run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Final machine state.
    pub state: MachineState,
    /// Core counters.
    pub core: CoreStats,
}

impl BaselineRun {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// Runs the original program on one baseline core (private L1s backed by
/// the shared-L2 geometry).
///
/// # Errors
///
/// Propagates sequential-machine faults (malformed program).
pub fn run_baseline(
    program: &Program,
    config: &TimingConfig,
    max_steps: u64,
) -> Result<BaselineRun, SeqError> {
    let mut core = CorePipe::new(config.core);
    let mut l2 = Cache::new(config.l2);
    let mut machine = SeqMachine::boot(program);
    let mut cycles: u64 = 0;
    machine.run_observed(max_steps, |info| {
        if !info.halted {
            cycles += core.instr_cost(info, &mut |addr| l2.access(addr));
        }
    })?;
    Ok(BaselineRun {
        cycles,
        instructions: machine.instructions(),
        core: core.stats(),
        state: machine.into_state(),
    })
}

/// Result of an MSSP timing run.
#[derive(Debug, Clone)]
pub struct TimingRun {
    /// The engine-level result (cycles, state, statistics).
    pub run: MsspRun,
    /// Master core counters.
    pub master_core: CoreStats,
    /// Per-slave core counters.
    pub slave_cores: Vec<CoreStats>,
}

/// Runs the MSSP machine under the detailed CMP cost model.
///
/// # Errors
///
/// Propagates engine errors (cycle budget, recovery faults).
pub fn run_mssp(
    program: &Program,
    distilled: &Distilled,
    config: &TimingConfig,
) -> Result<TimingRun, EngineError> {
    run_mssp_with_engine_config(program, distilled, config, config.engine)
}

/// Like [`run_mssp`] but with an engine configuration overriding
/// `config.engine` (ablation switches, throttling, slave count) while
/// keeping the same microarchitectural cost model.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_mssp_with_engine_config(
    program: &Program,
    distilled: &Distilled,
    config: &TimingConfig,
    engine_config: EngineConfig,
) -> Result<TimingRun, EngineError> {
    run_mssp_with_engine_setup(program, distilled, config, engine_config, |_| {})
}

/// Like [`run_mssp_with_engine_config`] but additionally hands the
/// constructed [`Engine`] to `setup` before running it, so callers can
/// switch on diagnostics (mismatch/squash samples, commit traces) that
/// the plain entry points leave off.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_mssp_with_engine_setup(
    program: &Program,
    distilled: &Distilled,
    config: &TimingConfig,
    engine_config: EngineConfig,
    setup: impl FnOnce(&mut Engine<'_, CmpCost>),
) -> Result<TimingRun, EngineError> {
    let cost = CmpCost::new(&TimingConfig {
        engine: engine_config,
        ..*config
    });
    let mut engine = Engine::new(program, distilled, engine_config, cost);
    setup(&mut engine);
    let (run, cost) = engine.run_returning_cost()?;
    let (master_core, slave_cores) = cost.core_stats();
    Ok(TimingRun {
        run,
        master_core,
        slave_cores,
    })
}

/// Speedup of an MSSP run relative to the baseline.
#[must_use]
pub fn speedup(baseline_cycles: u64, mssp_cycles: u64) -> f64 {
    if mssp_cycles == 0 {
        0.0
    } else {
        baseline_cycles as f64 / mssp_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_analysis::Profile;
    use mssp_distill::{distill, DistillConfig, DistillLevel};
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;

    /// A loop with a cold path (taken every 64th iteration in training
    /// and at run time) — distills well and parallelizes well.
    const BIASED: &str = "
        main:  addi s0, zero, 4000
        loop:  andi t0, s0, 63
               beqz t0, rare
               addi s1, s1, 1
        next:  addi t1, s1, 7
               mul  t2, t1, t1
               addi s0, s0, -1
               bnez s0, loop
               halt
        rare:  addi s1, s1, 3
               j next";

    fn setup(level: DistillLevel) -> (Program, Distilled) {
        let p = assemble(BIASED).unwrap();
        let prof = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        let cfg = DistillConfig {
            target_task_size: 200,
            ..DistillConfig::at_level(level)
        };
        let d = distill(&p, &prof, &cfg).unwrap();
        (p, d)
    }

    #[test]
    fn timing_preserves_architected_state() {
        let (p, d) = setup(DistillLevel::Aggressive);
        let cfg = TimingConfig::default();
        let base = run_baseline(&p, &cfg, u64::MAX).unwrap();
        let mssp = run_mssp(&p, &d, &cfg).unwrap();
        assert_eq!(base.state.reg(Reg::S1), mssp.run.state.reg(Reg::S1));
    }

    #[test]
    fn baseline_cpi_is_plausible() {
        let (p, _) = setup(DistillLevel::None);
        let base = run_baseline(&p, &TimingConfig::default(), u64::MAX).unwrap();
        let cpi = base.cpi();
        assert!((1.0..10.0).contains(&cpi), "cpi {cpi}");
    }

    #[test]
    fn mssp_with_slaves_beats_one_slave() {
        let (p, d) = setup(DistillLevel::Aggressive);
        let mut cfg = TimingConfig::default();
        cfg.engine.num_slaves = 1;
        let one = run_mssp(&p, &d, &cfg).unwrap();
        cfg.engine.num_slaves = 7;
        let many = run_mssp(&p, &d, &cfg).unwrap();
        assert!(
            many.run.cycles < one.run.cycles,
            "7 slaves {} vs 1 slave {}",
            many.run.cycles,
            one.run.cycles
        );
    }

    #[test]
    fn core_stats_populated() {
        let (p, d) = setup(DistillLevel::Aggressive);
        let cfg = TimingConfig::default();
        let mssp = run_mssp(&p, &d, &cfg).unwrap();
        assert!(mssp.master_core.instructions > 0);
        assert!(mssp.slave_cores.iter().any(|s| s.instructions > 0));
    }

    #[test]
    fn speedup_helper() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(100, 0), 0.0);
    }
}
