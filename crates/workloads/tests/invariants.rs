//! Workload-character invariants: the properties the MSSP evaluation
//! depends on must hold for the bundled benchmarks across input seeds —
//! otherwise a workload edit could silently change what an experiment
//! measures.

use mssp_analysis::Profile;
use mssp_workloads::{workloads, Workload, DEFAULT_SEED, TRAIN_SEED};

fn profile(w: &Workload, seed: u64) -> Profile {
    let p = w.program_with_seed(1_500, seed);
    Profile::collect(&p, u64::MAX).unwrap()
}

/// Count of branches that never deviated from one direction.
fn fully_biased(p: &Profile) -> usize {
    p.iter_branches()
        .filter(|(_, c)| c.bias() == Some(1.0))
        .count()
}

#[test]
fn every_workload_has_assertable_guards_except_the_undistillable() {
    for w in workloads() {
        let prof = profile(w, DEFAULT_SEED);
        let n = fully_biased(&prof);
        match w.name {
            // Deliberately undistillable characters; vpr's assertable
            // content is its rare re-anneal event (period 8192), which at
            // this reduced profiling scale has not yet become fully
            // biased.
            "mcf_like" | "perlbmk_like" | "vpr_like" => {}
            _ => assert!(
                n >= 1,
                "{}: expected at least one never-taken guard, found {n}",
                w.name
            ),
        }
    }
}

#[test]
fn never_taken_guards_never_fire_on_either_input() {
    for w in workloads() {
        let a = profile(w, DEFAULT_SEED);
        let b = profile(w, TRAIN_SEED);
        // Any branch fully biased under one seed must be fully biased in
        // the same direction under the other (the guards are structural,
        // not data luck).
        for (pc, ca) in a.iter_branches() {
            if ca.bias() == Some(1.0) {
                if let Some(cb) = b.branch(pc) {
                    assert_eq!(
                        cb.bias(),
                        Some(1.0),
                        "{}: guard at {pc:#x} fired on the training input",
                        w.name
                    );
                    assert_eq!(ca.mostly_taken(), cb.mostly_taken(), "{}", w.name);
                }
            }
        }
    }
}

#[test]
fn seeds_change_the_data_not_the_layout() {
    for w in workloads() {
        let a = w.program_with_seed(800, DEFAULT_SEED);
        let b = w.program_with_seed(800, TRAIN_SEED);
        assert_eq!(a.len(), b.len(), "{}: text layout depends on seed", w.name);
        // ...and the checksums genuinely differ (different inputs).
        let run = |p: &mssp_isa::Program| {
            let mut m = mssp_machine::SeqMachine::boot(p);
            m.run(50_000_000).unwrap();
            m.state().reg(mssp_workloads::CHECKSUM_REG)
        };
        assert_ne!(run(&a), run(&b), "{}: seed has no effect on data", w.name);
    }
}

#[test]
fn branchy_workloads_stay_branchy() {
    // The characterization table's spread must persist: the interpreter
    // analog keeps low bias, the streaming analogs keep high bias.
    let perl = profile(Workload::by_name("perlbmk_like").unwrap(), DEFAULT_SEED);
    assert!(perl.weighted_branch_bias().unwrap() < 0.85);
    let mcf = profile(Workload::by_name("mcf_like").unwrap(), DEFAULT_SEED);
    assert!(mcf.weighted_branch_bias().unwrap() > 0.99);
}
