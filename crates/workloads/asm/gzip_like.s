; gzip_like — run-length compression kernel (SPECint gzip analog).
; Phase 1 generates SCALE pseudo-random bytes from a 16-symbol alphabet;
; phase 2 RLE-encodes them block by block (64-byte blocks), with
; never-taken guard checks (run-length overflow, output overflow) that the
; distiller removes. Checksum of the encoded stream accumulates in s1.
.equ HEAP, 0x200000
.equ OUTB, 0x400000
.equ OUTLIM, 0x500000

main:
    li   s2, HEAP              ; input buffer
    li   s3, OUTB              ; output buffer
    li   s4, SCALE             ; input size in bytes
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero              ; checksum
    mv   t0, zero              ; i
gen:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 59
    andi t1, t1, 15            ; 16-symbol alphabet
    add  t2, s2, t0
    sb   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s4, gen

    mv   s8, s3                ; output pointer
    mv   s9, zero              ; block start
block:                          ; ---- per-64-byte-block loop (boundary) ----
    addi s10, s9, 64           ; block end
    ble  s10, s4, blk_ok
    mv   s10, s4
blk_ok:
    mv   t0, s9                ; i = block start
rle:
    bge  t0, s10, blk_done
    add  t2, s2, t0
    lbu  t3, 0(t2)             ; run byte
    addi t4, zero, 1           ; run length
scan:
    add  t5, t0, t4
    bge  t5, s10, emit
    add  t2, s2, t5
    lbu  t6, 0(t2)
    bne  t6, t3, emit
    addi t4, t4, 1
    addi t7, zero, 255
    bgt  t4, t7, run_ovf       ; guard: never taken (runs are short)
    j    scan
emit:
    sb   t3, 0(s8)
    sb   t4, 1(s8)
    addi s8, s8, 2
    li   t7, OUTLIM
    bgeu s8, t7, out_ovf       ; guard: never taken
    add  s1, s1, t3
    add  s1, s1, t4
    add  t0, t0, t4
    j    rle
blk_done:
    mv   s9, s10
    blt  s9, s4, block
    halt

run_ovf:                        ; cold repair path (dead in training)
    addi t4, zero, 255
    j    emit
out_ovf:
    mv   s8, s3
    j    rle
