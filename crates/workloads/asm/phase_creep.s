; phase_creep — a gradual behaviour drift for the adaptive
; re-distillation benchmark. Phase A (SCALE iterations) never enters
; the drift path, so an offline profile collected with BLEN = 0 asserts
; the phase test and discards everything behind it. Across phase B
; (BLEN iterations) the drift path's fire probability ramps linearly
; from never to always: divergence from the training profile builds up
; window by window instead of arriving as a step, exercising the
; controller's windowed thresholds and profile decay rather than a
; single squash storm.
main:
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s4, SCALE              ; phase A iterations
    li   s3, BLEN               ; phase B iterations (0 = training input)
    add  s9, s4, s3             ; total iterations
    mv   s1, zero               ; checksum
    mv   s8, zero               ; instrumentation counter (dead)
    mv   t0, zero               ; i
loop:                           ; ---- per-item loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 33
    andi t1, t1, 1023
    blt  t0, s4, calm           ; phase A: always taken, asserted away
    ; phase B: fire with probability (i - SCALE) / BLEN, ramping from
    ; 0 to 1 as the phase progresses
    sub  t3, t0, s4
    slli t3, t3, 10
    divu t3, t3, s3
    srli t4, s7, 17
    andi t4, t4, 1023
    bltu t4, t3, drift
calm:
    add  s1, s1, t1
    ; dead instrumentation, removed by distiller DCE
    addi s8, s8, 1
    addi t0, t0, 1
    blt  t0, s9, loop
    halt

drift:                          ; cold in training, ramping hot in phase B
    slli t2, t1, 1
    add  t1, t1, t2
    andi t1, t1, 4095
    j    calm
