; perlbmk_like — bytecode interpreter dispatch loop (SPECint perlbmk
; analog). A random opcode stream drives an unbiased dispatch tree;
; almost nothing is assertable or removable, so the distilled program is
; barely shorter than the original — MSSP's worst-case character.
.equ CODE, 0x200000

main:
    li   s2, CODE
    li   s4, SCALE             ; bytecode length
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    mv   t0, zero
gen:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 59
    andi t1, t1, 7             ; opcode 0..7
    add  t2, s2, t0
    sb   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s4, gen

    mv   t0, zero              ; vpc
    mv   s8, zero              ; acc
    addi s9, zero, 1           ; reg b
dispatch:                       ; ---- interpreter loop (boundary) ----
    add  t2, s2, t0
    lbu  t1, 0(t2)             ; opcode
    addi t3, zero, 4
    blt  t1, t3, low_ops
    addi t3, zero, 6
    blt  t1, t3, mid_ops
    ; op 6: xor-mix | op 7: shift
    addi t3, zero, 6
    beq  t1, t3, op_xor
    srli s8, s8, 1
    addi s8, s8, 3
    j    next
op_xor:
    xor  s8, s8, s9
    j    next
low_ops:                        ; ops 0..3
    addi t3, zero, 2
    blt  t1, t3, op01
    addi t3, zero, 2
    beq  t1, t3, op_add
    sub  s8, s8, s9            ; op 3
    j    next
op_add:
    add  s8, s8, s9
    j    next
op01:
    beqz t1, op_load
    addi s9, s8, 1             ; op 1: b = acc+1
    j    next
op_load:
    addi s8, t0, 0             ; op 0: acc = vpc
    j    next
mid_ops:                        ; ops 4..5
    addi t3, zero, 4
    beq  t1, t3, op_mul
    or   s8, s8, s9            ; op 5
    j    next
op_mul:
    mul  s8, s8, s9
    j    next
next:
    add  s1, s1, s8
    addi t0, t0, 1
    blt  t0, s4, dispatch
    halt
