; phase_flip — a mid-run behaviour shift for the adaptive
; re-distillation benchmark. One hot loop runs SCALE "phase A"
; iterations and then BLEN "phase B" iterations. A mode guard never
; fires in phase A — an offline profile collected with BLEN = 0 sees a
; perfectly biased branch and a cold `mix` block, so the distiller
; asserts the guard away and drops the block. In phase B the guard
; fires on *every* iteration: the frozen master keeps predicting
; accumulator values computed without the mix transform, and every
; spawned task dies on a live-in mismatch until the program is
; re-distilled from the live profile.
main:
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s4, SCALE              ; phase A iterations
    li   s3, BLEN               ; phase B iterations (0 = training input)
    add  s9, s4, s3             ; total iterations
    mv   s2, zero               ; mode: 0 = phase A, 1 = phase B
    mv   s1, zero               ; checksum
    mv   s8, zero               ; instrumentation counter (dead)
    mv   t0, zero               ; i
loop:                           ; ---- per-item loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 33
    andi t1, t1, 1023
    bnez s2, mix                ; never taken in phase A: asserted away
resume:
    add  s1, s1, t1
    ; dead instrumentation, removed by distiller DCE
    addi s8, s8, 1
    addi t0, t0, 1
    ; the mode flips exactly once, when i reaches SCALE
    blt  t0, s4, cont
    addi s2, zero, 1
cont:
    blt  t0, s9, loop
    halt

mix:                            ; cold in training, hot in phase B
    xor  t1, t1, s7
    andi t1, t1, 2047
    slli t2, t1, 2
    add  t1, t1, t2
    j    resume
