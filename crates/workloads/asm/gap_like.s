; gap_like — dense polynomial arithmetic over vectors (SPECint gap
; analog: computer-algebra arithmetic kernels). Very large basic blocks,
; perfectly predictable control, several never-taken overflow guards and
; instrumentation counters the distiller eliminates — the best-case
; distillation workload.
.equ HEAP, 0x200000
.equ OUTV, 0x300000

main:
    li   s2, HEAP
    li   s3, OUTV
    li   s4, SCALE             ; element count
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    mv   t0, zero
fill:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 32
    slli t2, t0, 3
    add  t2, s2, t2
    sd   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s4, fill

    mv   t0, zero              ; i
    mv   s8, zero              ; instrumentation: op counter (dead)
    mv   s9, zero              ; instrumentation: max value (dead)
poly:                           ; ---- per-element loop (boundary) ----
    slli t2, t0, 3
    add  t2, s2, t2
    ld   t1, 0(t2)             ; x
    andi t1, t1, 255           ; keep values small: poly(255) < 2^60
    ; Horner evaluation of degree-7 polynomial with odd coefficients.
    addi t3, zero, 7
    mul  t3, t3, t1
    addi t3, t3, 11
    mul  t3, t3, t1
    addi t3, t3, 13
    mul  t3, t3, t1
    addi t3, t3, 17
    mul  t3, t3, t1
    addi t3, t3, 19
    mul  t3, t3, t1
    addi t3, t3, 23
    mul  t3, t3, t1
    addi t3, t3, 29
    ; guard: "overflow" check, never taken (poly of a 16-bit input
    ; cannot reach i64::MAX)
    li   t5, 0x7FFFFFFFFFFFFFFF
    bgtu t3, t5, ovf
resume:
    ; redundant self-check: a second, independent Horner evaluation that
    ; must agree with the first; the compare never fails, so the whole
    ; recomputation distills away with the asserted branch.
    addi a4, zero, 7
    mul  a4, a4, t1
    addi a4, a4, 11
    mul  a4, a4, t1
    addi a4, a4, 13
    mul  a4, a4, t1
    addi a4, a4, 17
    mul  a4, a4, t1
    addi a4, a4, 19
    mul  a4, a4, t1
    addi a4, a4, 23
    mul  a4, a4, t1
    addi a4, a4, 29
    bne  a4, t3, check_fail    ; never taken
check_ok:
    slli t2, t0, 3
    add  t2, s3, t2
    sd   t3, 0(t2)
    add  s1, s1, t3
    ; dead instrumentation (removed by distiller DCE)
    addi s8, s8, 8
    bltu t3, s9, no_max
    mv   s9, t3
no_max:
    addi t0, t0, 1
    blt  t0, s4, poly
    halt

ovf:                            ; cold clamp path
    li   t3, 0x7FFFFFFFFFFFFFFF
    j    resume
check_fail:                     ; cold repair path (never executed)
    mv   t3, a4
    j    check_ok
