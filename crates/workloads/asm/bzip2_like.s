; bzip2_like — counting sort / histogram phases (SPECint bzip2 analog:
; Burrows-Wheeler bucket counting). Three phases: byte generation,
; histogram accumulation, prefix sums + permutation checksum.
.equ DATA, 0x200000
.equ HIST, 0x380000
.equ PFX,  0x390000
.equ BLKSUM, 0x3A0000

main:
    li   s2, DATA
    li   s3, HIST
    li   s4, SCALE
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    ; clear histogram (256 dwords)
    mv   t0, zero
clr:
    slli t2, t0, 3
    add  t2, s3, t2
    sd   zero, 0(t2)
    addi t0, t0, 1
    addi t1, zero, 256
    blt  t0, t1, clr
    ; generate bytes (geometric-ish skew via double draw)
    mv   t0, zero
gen:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 56
    srli t2, s7, 40
    andi t2, t2, 255
    and  t1, t1, t2            ; skewed distribution
    add  t3, s2, t0
    sb   t1, 0(t3)
    addi t0, t0, 1
    blt  t0, s4, gen
    ; histogram in 256-byte chunks
    mv   t0, zero
hist_blk:                       ; ---- chunk loop (boundary) ----
    addi s8, t0, 256
    ble  s8, s4, hb_ok
    mv   s8, s4
hb_ok:
hist:
    bge  t0, s8, hb_done
    add  t3, s2, t0
    lbu  t1, 0(t3)
    ; redundant bucket-index recheck: recompute the slot address and
    ; verify (never differs; distils away with the asserted compare)
    slli t5, t1, 3
    add  t5, s3, t5
    slli t2, t1, 3
    add  t2, s3, t2
    bne  t5, t2, slot_bad
slot_ok:
    ld   t4, 0(t2)
    addi t4, t4, 1
    sd   t4, 0(t2)
    ; guard: count can never exceed n
    bgt  t4, s4, hist_corrupt
    ; write-only running block checksum (bookkeeping)
    add  t6, t6, t1
    li   t5, BLKSUM
    sd   t6, 0(t5)
    addi t0, t0, 1
    j    hist
hb_done:
    blt  t0, s4, hist_blk
    ; prefix sums into PFX, fold into checksum
    li   s9, PFX
    mv   t0, zero
    mv   t5, zero              ; running sum
pfx:
    slli t2, t0, 3
    add  t2, s3, t2
    ld   t4, 0(t2)
    add  t5, t5, t4
    slli t2, t0, 3
    add  t2, s9, t2
    sd   t5, 0(t2)
    mul  t6, t5, t0
    add  s1, s1, t6
    addi t0, t0, 1
    addi t1, zero, 256
    blt  t0, t1, pfx
    halt

hist_corrupt:                   ; cold repair (never executed)
    sd   zero, 0(t2)
    addi t0, t0, 1
    j    hist
slot_bad:                       ; cold repair (never executed)
    mv   t2, t5
    j    slot_ok
