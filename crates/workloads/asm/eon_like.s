; eon_like — fixed-point ray/sphere intersection kernel (SPECint eon
; analog: probabilistic ray tracing, the only C++ benchmark in the
; suite). Dense multiply chains per ray with a hit/miss branch of
; moderate bias, a never-taken discriminant-overflow guard, and a
; write-only framebuffer.
.equ SPHERES, 0x200000
.equ FRAME, 0x400000
.equ NSPH, 64

main:
    li   s2, SPHERES
    li   s3, FRAME
    li   s4, SCALE             ; rays to cast
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s8, NSPH
    mv   s1, zero
    ; scene setup: sphere centres (cx, cy) and radius^2, fixed-point 8.8
    mv   t0, zero
scene:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 50            ; cx in 0..16383
    srli t2, s7, 36
    andi t2, t2, 16383         ; cy
    srli t3, s7, 20
    andi t3, t3, 4095
    addi t3, t3, 512           ; r^2 in 512..4607
    slli t4, t0, 5             ; 32-byte sphere records
    add  t4, s2, t4
    sd   t1, 0(t4)
    sd   t2, 8(t4)
    sd   t3, 16(t4)
    addi t0, t0, 1
    blt  t0, s8, scene

    mv   t0, zero              ; ray counter
ray:                            ; ---- per-ray loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli a0, s7, 50            ; ray origin x
    srli a1, s7, 36
    andi a1, a1, 16383         ; ray origin y
    ; test against a pseudo-random sphere (data-dependent index)
    srli a2, s7, 10
    andi a2, a2, 63            ; sphere index
    slli a3, a2, 5
    add  a3, s2, a3
    ld   a4, 0(a3)             ; cx
    ld   a5, 8(a3)             ; cy
    ld   a6, 16(a3)            ; r^2
    sub  t1, a0, a4            ; dx
    sub  t2, a1, a5            ; dy
    mul  t3, t1, t1
    mul  t4, t2, t2
    add  t5, t3, t4            ; distance^2
    ; guard: the discriminant cannot overflow 40 bits for 14-bit coords
    li   t6, 0x10000000000
    bgeu t5, t6, disc_ovf
disc_ok:
    bltu t5, a6, hit           ; inside radius: a hit (~2-4%)
    ; miss: cheap ambient shading
    srli t6, t5, 8
    add  s1, s1, t6
    j    shade_done
hit:
    ; hit: expensive shading (normal, dot products, fixed-point divide)
    sub  t6, a6, t5
    mul  t7, t6, t6
    srli t7, t7, 8
    addi t5, t5, 1             ; avoid divide by zero
    divu t7, t7, t5
    add  s1, s1, t7
shade_done:
    ; framebuffer write: write-only output (distils away)
    andi t6, t0, 4095
    slli t6, t6, 3
    add  t6, s3, t6
    sd   s1, 0(t6)
    addi t0, t0, 1
    blt  t0, s4, ray
    halt

disc_ovf:                       ; cold clamp (never executed)
    li   t5, 0xFFFFFFFFFF
    j    disc_ok
