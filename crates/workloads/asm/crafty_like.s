; crafty_like — 64-bit bitboard manipulation (SPECint crafty analog:
; chess move generation). Bit-twiddling with a short data-dependent
; population-count loop and a few never-taken legality guards.
.equ MAGIC1, 0x9E3779B97F4A7C15
.equ HISTORY, 0x300000

main:
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s4, SCALE             ; positions to evaluate
    li   s8, MAGIC1
    li   s9, HISTORY           ; history table (write-only bookkeeping)
    mv   s1, zero
    mv   t0, zero
pos:                            ; ---- per-position loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    mv   t1, s7                ; board
    ; attack-spread: smear bits like sliding-piece attacks
    slli t2, t1, 8
    or   t1, t1, t2
    srli t2, t1, 9
    xor  t1, t1, t2
    mul  t1, t1, s8
    ; redundant legality recheck: recompute the spread independently and
    ; compare (never differs; distils away with its asserted branch)
    mv   a0, s7
    slli a1, a0, 8
    or   a0, a0, a1
    srli a1, a0, 9
    xor  a0, a0, a1
    mul  a0, a0, s8
    bne  a0, t1, spread_bad
spread_ok:
    ; history update: write-only scoring table
    andi a2, s7, 1023
    slli a2, a2, 3
    add  a2, s9, a2
    sd   t1, 0(a2)
    ; population count via Kernighan's loop (taken ~97%)
    mv   t3, zero              ; count
popcnt:
    beqz t1, pop_done
    addi t4, t1, -1
    and  t1, t1, t4
    addi t3, t3, 1
    ; guard: more than 64 bits is impossible
    addi t5, zero, 64
    bgt  t3, t5, corrupt
    j    popcnt
pop_done:
    ; score: weight count by file/rank masks
    andi t6, s7, 7
    mul  t4, t3, t6
    add  s1, s1, t4
    add  s1, s1, t3
    addi t0, t0, 1
    blt  t0, s4, pos
    halt

corrupt:                        ; cold repair (never executed)
    mv   t3, zero
    j    pop_done
spread_bad:                     ; cold repair (never executed)
    mv   t1, a0
    j    spread_ok
