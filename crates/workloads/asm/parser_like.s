; parser_like — tokenizer over generated text (SPECint parser analog:
; link-grammar dictionary scanning). Byte-granular loads, character-class
; branches of moderate bias, per-word hashing.
.equ TEXT, 0x200000
.equ TOKLOG, 0x500000

main:
    li   s2, TEXT
    li   s4, SCALE             ; text length
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    mv   t0, zero
gen:                            ; generate text: letters, ~1/8 spaces
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 58            ; 6 bits: 0..63
    andi t2, t1, 7
    bnez t2, letter
    addi t3, zero, 32          ; space
    j    put
letter:
    andi t3, t1, 31
    addi t3, t3, 97            ; 'a'..
put:
    add  t4, s2, t0
    sb   t3, 0(t4)
    addi t0, t0, 1
    blt  t0, s4, gen

    mv   t0, zero              ; i
    mv   s8, zero              ; word hash
    mv   s9, zero              ; token count
    li   s11, TOKLOG           ; token log (write-only)
scan_blk:                       ; ---- 128-byte chunk loop (boundary) ----
    addi s10, t0, 128
    ble  s10, s4, chunk_ok
    mv   s10, s4
chunk_ok:
scan:
    bge  t0, s10, chunk_done
    add  t4, s2, t0
    lbu  t3, 0(t4)
    ; redundant re-read consistency check (text is immutable here; never
    ; differs, so load+compare distil away once asserted)
    lbu  t7, 0(t4)
    bne  t7, t3, char_bad
char_ok:
    addi t5, zero, 32
    beq  t3, t5, word_end      ; space: ~1/8
    ; letter: extend hash
    slli t6, s8, 5
    add  s8, t6, s8            ; hash*33
    add  s8, s8, t3
    ; guard: token longer than 4096 chars is impossible
    li   t6, 0x1000000000
    bgtu s8, t6, hash_fold
cont:
    addi t0, t0, 1
    j    scan
word_end:
    add  s1, s1, s8
    ; token log entry: (hash, position) — never read back
    sd   s8, 0(s11)
    sd   t0, 8(s11)
    addi s11, s11, 16
    li   t6, 0x600000
    bgeu s11, t6, log_wrap     ; guard: never taken at this scale
log_ok:
    mv   s8, zero
    addi s9, s9, 1
    addi t0, t0, 1
    j    scan
chunk_done:
    blt  t0, s4, scan_blk
    add  s1, s1, s9
    halt

char_bad:                       ; cold repair (never executed)
    mv   t3, t7
    j    char_ok
log_wrap:                       ; cold wrap (never executed)
    li   s11, TOKLOG
    j    log_ok
hash_fold:                      ; cold-ish path: fold hash (rare by bound)
    srli t6, s8, 30
    xor  s8, s8, t6
    li   t6, 0xFFFFFFF
    and  s8, s8, t6
    j    cont
