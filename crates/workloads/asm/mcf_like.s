; mcf_like — pointer chasing over a shuffled permutation (SPECint mcf
; analog: network-simplex pointer structures). Serial dependence chain of
; data-dependent loads, cache-hostile, almost nothing to distill: the
; workload where MSSP gains least.
.equ HEAP, 0x200000

main:
    li   s2, HEAP
    li   s4, SCALE             ; table size (elements)
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    mv   t0, zero
init:                           ; identity permutation
    slli t2, t0, 3
    add  t2, s2, t2
    sd   t0, 0(t2)
    addi t0, t0, 1
    blt  t0, s4, init

    mv   t0, zero
shuffle:                        ; n random transpositions
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 33
    remu t1, t1, s4            ; j
    slli t2, t0, 3
    add  t2, s2, t2
    ld   t3, 0(t2)             ; p[i]
    slli t4, t1, 3
    add  t4, s2, t4
    ld   t5, 0(t4)             ; p[j]
    sd   t5, 0(t2)
    sd   t3, 0(t4)
    addi t0, t0, 1
    blt  t0, s4, shuffle

    mv   t6, zero              ; cursor
    li   s8, 4
    mul  s9, s4, s8            ; chase steps = 4n
    mv   t0, zero
chase:                          ; ---- walk loop (boundary) ----
    slli t2, t6, 3
    add  t2, s2, t2
    ld   t6, 0(t2)             ; cursor = p[cursor]
    add  s1, s1, t6
    addi t0, t0, 1
    blt  t0, s9, chase
    halt
