; twolf_like — standard-cell swap kernel on a grid (SPECint twolf
; analog). Neighbour-sum cost over a 64×64 grid, ~40% accept rate, and a
; rare rebalance event every 4096 iterations that the aggressive
; distiller asserts away.
.equ GRID, 0x200000
.equ DIM, 64

main:
    li   s2, GRID
    li   s4, SCALE
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s8, DIM
    mul  s9, s8, s8            ; cells
    mv   s1, zero
    mv   t0, zero
init:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 52
    slli t2, t0, 3
    add  t2, s2, t2
    sd   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s9, init

    mv   t0, zero
iter:                           ; ---- per-swap loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 30
    remu t1, t1, s9            ; cell index
    ; neighbour sum (left and right, wrap by masking)
    addi t2, t1, 1
    remu t2, t2, s9
    addi t3, t1, 63
    remu t3, t3, s9
    slli t4, t1, 3
    add  t4, s2, t4
    ld   t5, 0(t4)             ; v
    slli t6, t2, 3
    add  t6, s2, t6
    ld   t6, 0(t6)             ; right
    slli t7, t3, 3
    add  t7, s2, t7
    ld   t7, 0(t7)             ; left
    add  s10, t6, t7
    srli s10, s10, 1           ; neighbour mean
    ; redundant cost recompute (reverse order) with consistency check
    add  a0, t7, t6
    srli a0, a0, 1
    bne  a0, s10, cost_bad     ; never taken
cost_ok:
    ; accept when v deviates from mean (about 40%)
    sub  s11, t5, s10
    bltz s11, below
    ; above mean: pull down when gap > 64
    addi t6, zero, 64
    blt  s11, t6, skip
    sub  t5, t5, t6
    j    commit
below:
    addi t5, t5, 32
commit:
    sd   t5, 0(t4)
    add  s1, s1, t5
skip:
    ; rare rebalance every 4096 (bias 0.99976 — assertable)
    li   t6, 4095
    and  t6, t0, t6
    beqz t6, rebalance
resume:
    addi t0, t0, 1
    blt  t0, s4, iter
    halt

cost_bad:                       ; cold repair (never executed)
    mv   s10, a0
    j    cost_ok
rebalance:                      ; cold global adjustment
    andi t6, t0, 255
    slli t6, t6, 3
    add  t6, s2, t6
    ld   t7, 0(t6)
    addi t7, t7, 5
    sd   t7, 0(t6)
    add  s1, s1, t7
    j    resume
