; vpr_like — simulated-annealing placement kernel (SPECint vpr analog).
; Random cell swaps with a multiply-heavy cost function and a ~30%-accept
; branch; a rare re-anneal event (every 8192 moves) gives the aggressive
; distiller a 0.9998-biased branch to assert — and occasionally mispredict.
.equ CELLS, 0x200000
.equ NCELL, 1024

main:
    li   s2, CELLS
    li   s4, SCALE             ; moves
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s8, NCELL
    mv   s1, zero
    mv   t0, zero
init:                           ; positions p[i] = LCG
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 48
    slli t2, t0, 3
    add  t2, s2, t2
    sd   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s8, init

    mv   t0, zero              ; move counter
move:                           ; ---- per-move loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 34
    remu t1, t1, s8            ; cell a
    srli t2, s7, 13
    remu t2, t2, s8            ; cell b
    slli t3, t1, 3
    add  t3, s2, t3
    ld   t4, 0(t3)             ; p[a]
    slli t5, t2, 3
    add  t5, s2, t5
    ld   t6, 0(t5)             ; p[b]
    ; cost delta: quadratic wirelength model
    sub  t7, t4, t6
    mul  t7, t7, t7
    sub  s10, t1, t2
    mul  s10, s10, s10
    sub  t7, t7, s10           ; delta
    ; accept if delta has low bits set pattern (~50%) and positive (~25%)
    bltz t7, reject
    andi s10, t7, 1
    beqz s10, reject
    sd   t6, 0(t3)             ; swap positions
    sd   t4, 0(t5)
    add  s1, s1, t7
reject:
    ; rare re-anneal every 8192 moves (bias 0.99988 — assertable)
    li   s10, 8191
    and  s10, t0, s10
    beqz s10, reanneal
resume:
    addi t0, t0, 1
    blt  t0, s4, move
    halt

reanneal:                       ; cold: perturb the RNG and one cell
    addi s7, s7, 97
    andi s10, t0, 1023
    slli s10, s10, 3
    add  s10, s2, s10
    ld   t4, 0(s10)
    srli t4, t4, 1
    sd   t4, 0(s10)
    j    resume
