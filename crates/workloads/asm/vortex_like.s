; vortex_like — object-store hash table insert/lookup (SPECint vortex
; analog). Multiplicative hashing with linear probing at ~40% load
; factor: probe-collision branches are biased but not assertable, while
; table-full guards never fire and distil away.
.equ TABLE, 0x200000
.equ AUDIT, 0x600000
.equ TBITS, 14
.equ TSIZE, 16384

main:
    li   s2, TABLE
    li   s4, SCALE             ; operations
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    li   s8, TSIZE
    li   s11, AUDIT            ; audit log cursor (never read back)
    mv   s1, zero
    ; clear table
    mv   t0, zero
clr:
    slli t2, t0, 3
    add  t2, s2, t2
    sd   zero, 0(t2)
    addi t0, t0, 1
    blt  t0, s8, clr

    mv   t0, zero
op:                             ; ---- per-operation loop (boundary) ----
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 24            ; key (nonzero with high probability)
    ori  t1, t1, 1             ; ensure nonzero
    ; multiplicative hash to TBITS bits
    li   t2, 0x9E3779B97F4A7C15
    mul  t3, t1, t2
    srli t3, t3, 50            ; 64-TBITS
    ; redundant integrity check: recompute the hash and compare
    ; (never fails, so the distiller asserts it away entirely)
    li   a0, 0x9E3779B97F4A7C15
    mul  a1, t1, a0
    srli a1, a1, 50
    bne  a1, t3, hash_corrupt
hash_ok:
    ; audit log: record (key, slot) — write-only bookkeeping
    sd   t1, 0(s11)
    sd   t3, 8(s11)
    addi s11, s11, 16
    li   a2, 0x700000
    bgeu s11, a2, audit_wrap   ; guard: never taken at this scale
audit_ok:
    mv   t4, zero              ; probe count
probe:
    add  t5, t3, t4
    andi t5, t5, 16383         ; mod TSIZE
    slli t6, t5, 3
    add  t6, s2, t6
    ld   t7, 0(t6)
    beqz t7, insert            ; empty slot (likely at low load)
    beq  t7, t1, found         ; duplicate key (rare)
    addi t4, t4, 1
    ; guard: table full is impossible at this load factor
    bge  t4, s8, table_full
    j    probe
insert:
    ; keep load factor bounded: only insert while i/4 < TSIZE/2
    srli t7, t0, 2
    slli s10, s8, 0
    srli s10, s10, 1
    bge  t7, s10, skip_insert
    sd   t1, 0(t6)
skip_insert:
    add  s1, s1, t5
    j    done_op
found:
    add  s1, s1, t1
done_op:
    addi t0, t0, 1
    blt  t0, s4, op
    halt

table_full:                     ; cold repair (never executed)
    mv   t4, zero
    j    insert
hash_corrupt:                   ; cold repair (never executed)
    mv   t3, a1
    j    hash_ok
audit_wrap:                     ; cold wrap (never executed at this scale)
    li   s11, AUDIT
    j    audit_ok
