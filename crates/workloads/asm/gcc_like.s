; gcc_like — linked-list IR traversal with irregular branching (SPECint
; gcc analog). Builds a singly linked list of value nodes, then runs
; three transform passes whose per-node branches are value-dependent and
; only mildly biased — a middling distillation target.
.equ NODES, 0x200000
.equ NODESZ, 16

main:
    li   s2, NODES
    li   s4, SCALE             ; node count
    li   s5, 6364136223846793005
    li   s6, 1442695040888963407
    li   s7, SEED               ; LCG seed (parameterized)
    mv   s1, zero
    ; build list: node = [value: dword][next: dword]
    mv   t0, zero
build:
    mul  s7, s7, s5
    add  s7, s7, s6
    srli t1, s7, 40
    slli t2, t0, 4             ; node offset (16 bytes)
    add  t2, s2, t2
    sd   t1, 0(t2)             ; value
    addi t3, t0, 1
    slli t3, t3, 4
    add  t3, s2, t3
    sd   t3, 8(t2)             ; next pointer
    addi t0, t0, 1
    blt  t0, s4, build
    ; terminate list
    addi t0, s4, -1
    slli t2, t0, 4
    add  t2, s2, t2
    sd   zero, 8(t2)

    mv   s8, zero              ; pass counter
pass:                           ; ---- per-pass-chunk via node loop ----
    mv   t4, s2                ; cursor
node:                           ; ---- per-node loop (boundary) ----
    ld   t1, 0(t4)             ; value
    ; pointer sanity check: node cursor must stay inside the arena
    ; (never fires; the whole check distils away once asserted)
    li   t6, 0x200000
    bltu t4, t6, node_corrupt
    slli t7, s4, 4
    add  t7, t6, t7
    bgeu t4, t7, node_corrupt
node_ok:
    ; irregular transform choice on low bits (~50/25/25)
    andi t2, t1, 3
    beqz t2, xf_fold
    addi t3, zero, 1
    beq  t2, t3, xf_scale
    ; default: rotate-ish mix
    srli t3, t1, 7
    xor  t1, t1, t3
    j    store
xf_fold:
    srli t3, t1, 32
    add  t1, t1, t3
    j    store
xf_scale:
    slli t3, t1, 1
    add  t1, t1, t3            ; *3
store:
    sd   t1, 0(t4)
    add  s1, s1, t1
    ld   t4, 8(t4)             ; next
    bnez t4, node
    addi s8, s8, 1
    addi t5, zero, 3
    blt  s8, t5, pass
    halt

node_corrupt:                   ; cold repair (never executed)
    mv   t4, t6
    j    node_ok
