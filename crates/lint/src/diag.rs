//! The diagnostic engine: lint identities, severities, spans and reports.

use std::fmt;

use mssp_isa::PcSpan;

/// How bad a finding is.
///
/// Errors are structural soundness violations (the engine can hang or storm
/// squashes on them); warnings are performance hazards and smells that
/// still leave MSSP correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Performance hazard or suspicious structure; MSSP stays correct.
    Warning,
    /// Structural obligation violated; run-time misbehaviour is likely.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which address space a diagnostic's span lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AddrSpace {
    /// Original-program addresses (slave / architected space).
    Original,
    /// Distilled-program addresses (master space).
    Distilled,
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AddrSpace::Original => "original",
            AddrSpace::Distilled => "distilled",
        })
    }
}

/// The identity of one lint check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// A task boundary has no distilled-PC correspondence.
    BoundaryUnmapped,
    /// A statically inferred task live-in is not covered by the distilled
    /// image feeding the master's checkpoint overlay.
    LiveinsUncovered,
    /// An asserted branch's training bias is below the configured
    /// threshold (or the branch was never executed in training).
    AssertUnjustified,
    /// Distilled control can fall through off the end of the text segment.
    CfgFallthroughOffEnd,
    /// Distilled code unreachable from every master entry point.
    UnreachableAfterAssert,
    /// A task boundary placed in code the training run never crossed.
    BoundaryInColdCode,
    /// A register write in the distilled program whose value is never
    /// observed.
    DeadStoreInDistilled,
    /// The boundary set degenerated to the entry PC alone.
    DegenerateBoundarySet,
    /// A pre-computation slice reads values that are not available at
    /// spawn time (undeclared inputs, stores, control flow), or is not
    /// the short straight-line program its kind promises.
    SliceUnsound,
}

impl LintId {
    /// Every lint, in a stable order.
    pub const ALL: [LintId; 9] = [
        LintId::BoundaryUnmapped,
        LintId::LiveinsUncovered,
        LintId::AssertUnjustified,
        LintId::CfgFallthroughOffEnd,
        LintId::UnreachableAfterAssert,
        LintId::BoundaryInColdCode,
        LintId::DeadStoreInDistilled,
        LintId::DegenerateBoundarySet,
        LintId::SliceUnsound,
    ];

    /// The lint's kebab-case name, as shown in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintId::BoundaryUnmapped => "boundary-unmapped",
            LintId::LiveinsUncovered => "liveins-uncovered",
            LintId::AssertUnjustified => "assert-unjustified",
            LintId::CfgFallthroughOffEnd => "cfg-fallthrough-off-end",
            LintId::UnreachableAfterAssert => "unreachable-after-assert",
            LintId::BoundaryInColdCode => "boundary-in-cold-code",
            LintId::DeadStoreInDistilled => "dead-store-in-distilled",
            LintId::DegenerateBoundarySet => "degenerate-boundary-set",
            LintId::SliceUnsound => "slice-unsound",
        }
    }

    /// The severity findings of this lint carry.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintId::BoundaryUnmapped
            | LintId::LiveinsUncovered
            | LintId::CfgFallthroughOffEnd
            | LintId::SliceUnsound => Severity::Error,
            LintId::AssertUnjustified
            | LintId::UnreachableAfterAssert
            | LintId::BoundaryInColdCode
            | LintId::DeadStoreInDistilled
            | LintId::DegenerateBoundarySet => Severity::Warning,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a lint, where it fired, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: LintId,
    /// The finding's severity (the lint's default severity).
    pub severity: Severity,
    /// Where it fired.
    pub span: PcSpan,
    /// Which address space `span` is in.
    pub space: AddrSpace,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the lint's default severity.
    #[must_use]
    pub fn new(lint: LintId, span: PcSpan, space: AddrSpace, message: String) -> Diagnostic {
        Diagnostic {
            lint,
            severity: lint.severity(),
            span,
            space,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} ({}): {}",
            self.severity, self.lint, self.span, self.space, self.message
        )
    }
}

/// A collection of findings plus renderers for terminals and tooling.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sorts findings: errors first, then by address space and span.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.space.cmp(&b.space))
                .then(a.span.cmp(&b.span))
                .then(a.lint.cmp(&b.lint))
        });
    }

    /// All findings.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any error-severity finding is present (the CLI's non-zero
    /// exit condition).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Findings of one lint, in report order.
    pub fn of(&self, lint: LintId) -> impl Iterator<Item = &Diagnostic> {
        self.iter().filter(move |d| d.lint == lint)
    }

    /// Renders the report for a terminal: one line per finding plus a
    /// summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} finding{} ({} error{}, {} warning{})\n",
            self.len(),
            plural(self.len()),
            self.errors(),
            plural(self.errors()),
            self.warnings(),
            plural(self.warnings()),
        ));
        out
    }

    /// Renders the report as machine-readable JSON.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"severity\":\"{}\",\"space\":\"{}\",\
                 \"start\":\"{:#x}\",\"end\":\"{:#x}\",\"message\":\"{}\"}}",
                d.lint,
                d.severity,
                d.space,
                d.span.start,
                d.span.end,
                escape_json(&d.message)
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintId::DeadStoreInDistilled,
            PcSpan::point(0x80_0000),
            AddrSpace::Distilled,
            "write to a0 at 0x800000 is dead".into(),
        ));
        r.push(Diagnostic::new(
            LintId::BoundaryUnmapped,
            PcSpan::point(0x1_0008),
            AddrSpace::Original,
            "task boundary 0x10008 has no distilled-PC correspondence".into(),
        ));
        r.sort();
        r
    }

    #[test]
    fn errors_sort_before_warnings() {
        let r = sample();
        let first = r.iter().next().unwrap();
        assert_eq!(first.lint, LintId::BoundaryUnmapped);
        assert_eq!(first.severity, Severity::Error);
        assert!(r.has_errors());
        assert_eq!((r.errors(), r.warnings()), (1, 1));
    }

    #[test]
    fn text_render_carries_ids_and_spans() {
        let text = sample().render_text();
        assert!(text.contains("error[boundary-unmapped] 0x10008..0x1000c (original)"));
        assert!(text.contains("warning[dead-store-in-distilled]"));
        assert!(text.contains("2 findings (1 error, 1 warning)"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"findings\":["));
        assert!(json.ends_with("],\"errors\":1,\"warnings\":1}"));
        assert!(json.contains("\"lint\":\"boundary-unmapped\""));
        assert!(json.contains("\"start\":\"0x10008\""));
        // Balanced braces (no stray quotes breaking the structure).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintId::DegenerateBoundarySet,
            PcSpan::point(0),
            AddrSpace::Original,
            "quote \" backslash \\ newline \n".into(),
        ));
        let json = r.render_json();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
    }

    #[test]
    fn every_lint_has_a_unique_name() {
        let names: std::collections::BTreeSet<&str> =
            LintId::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), LintId::ALL.len());
    }
}
