//! # mssp-lint
//!
//! A static soundness checker for distilled programs and task boundaries.
//!
//! The MSSP distiller's output is "purely a performance artifact" — it can
//! be arbitrarily wrong without breaking correctness, because slaves run
//! the original program under verification. But the distillation still has
//! *structural* obligations: every task boundary needs a distilled-PC
//! correspondence, task live-ins must stay computable by the master, and
//! the asserted CFG must be well-formed. A distillation pass that breaks
//! one of these surfaces at run time as squash storms, lost masters or a
//! silent collapse to sequential operation. This crate checks the
//! obligations statically, on top of the dataflow framework in
//! `mssp-analysis` (liveness, reaching definitions, constant propagation).
//!
//! ## The checks
//!
//! | lint | severity | obligation |
//! |------|----------|------------|
//! | `boundary-unmapped` | error | every boundary has a distilled PC |
//! | `liveins-uncovered` | error | master can compute all task live-ins |
//! | `cfg-fallthrough-off-end` | error | distilled text cannot run off its end |
//! | `assert-unjustified` | warning | asserted branches clear the bias threshold |
//! | `unreachable-after-assert` | warning | no unreachable distilled code |
//! | `boundary-in-cold-code` | warning | boundaries recur in training |
//! | `dead-store-in-distilled` | warning | no dead register writes survive |
//! | `degenerate-boundary-set` | warning | boundary selection found a recurring site |
//! | `slice-unsound` | error | pre-computation slices read only spawn-available values |
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::Profile;
//! use mssp_distill::{DistillConfig, DistillLevel};
//! use mssp_lint::{distill_validated, LintConfig};
//!
//! let program = assemble(
//!     "main: addi a0, zero, 800
//!      loop: addi a1, a1, 7
//!            addi a0, a0, -1
//!            bnez a0, loop
//!            halt",
//! ).unwrap();
//! let profile = Profile::collect(&program, Profile::UNBOUNDED).unwrap();
//! let d = distill_validated(
//!     &program,
//!     &profile,
//!     &DistillConfig::at_level(DistillLevel::Aggressive),
//!     &LintConfig::default(),
//! ).unwrap();
//! assert!(!d.boundaries().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod diag;
mod lints;

pub use diag::{AddrSpace, Diagnostic, LintId, Report, Severity};
pub use lints::{boundary_live_ins, fires_at, lint, LintConfig};

use std::collections::BTreeSet;

use mssp_analysis::Profile;
use mssp_distill::{distill, redistill, DistillConfig, DistillError, Distilled, Tier};
use mssp_isa::Program;

/// Distills `program` and validates the output, rejecting distillations
/// with error-severity findings.
///
/// This is [`distill`] with a soundness gate: the linter runs over the
/// fresh output and any error-severity finding turns into
/// [`DistillError::Unsound`] carrying the rendered diagnostics.
/// Warning-severity findings are tolerated (they indicate performance
/// hazards, not structural breakage).
///
/// # Errors
///
/// Everything [`distill`] returns, plus [`DistillError::Unsound`] when
/// validation fails.
pub fn distill_validated(
    program: &Program,
    profile: &Profile,
    config: &DistillConfig,
    lint_config: &LintConfig,
) -> Result<Distilled, DistillError> {
    let distilled = distill(program, profile, config)?;
    gate(program, distilled, profile, lint_config)
}

/// Re-distills at the given tier with pinned boundaries and validates the
/// output — [`mssp_distill::redistill`] behind the same soundness gate as
/// [`distill_validated`].
///
/// This is the recompiler the online adaptive loop runs: every candidate
/// distilled program must clear the full lint battery (including
/// `slice-unsound`) before it is eligible for hot-swap, so a divergent
/// live profile can cost performance but can never install a structurally
/// broken master.
///
/// # Errors
///
/// Everything [`mssp_distill::redistill`] returns, plus
/// [`DistillError::Unsound`] when validation fails.
pub fn redistill_validated(
    program: &Program,
    profile: &Profile,
    config: &DistillConfig,
    tier: Tier,
    boundaries: &BTreeSet<u64>,
    crossings_per_task: u64,
    lint_config: &LintConfig,
) -> Result<Distilled, DistillError> {
    let tiered = tier.apply(config);
    let distilled = redistill(program, profile, &tiered, boundaries, crossings_per_task)?;
    gate(program, distilled, profile, lint_config)
}

fn gate(
    program: &Program,
    distilled: Distilled,
    profile: &Profile,
    lint_config: &LintConfig,
) -> Result<Distilled, DistillError> {
    let report = lint(program, &distilled, profile, lint_config);
    if report.has_errors() {
        return Err(DistillError::Unsound(
            report
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(ToString::to_string)
                .collect(),
        ));
    }
    Ok(distilled)
}
