//! The lint checks: structural soundness obligations of a distillation.
//!
//! MSSP's distilled program may be arbitrarily *wrong* — slaves execute the
//! original program and verification keeps exact sequential semantics — but
//! a distillation that breaks its *structural* obligations degrades into
//! squash storms, lost masters or silent sequential operation. Each check
//! here approximates one such obligation statically; see `DESIGN.md` for
//! the mapping onto the formal model's invariants.

use std::collections::BTreeMap;

use mssp_analysis::{Cfg, ConstProp, Liveness, Profile, ReachingDefs, RegSet};
use mssp_distill::{Distilled, Slice, SliceKind, MAX_SLICE_LEN};
use mssp_isa::{PcSpan, Program};

use crate::diag::{AddrSpace, Diagnostic, LintId, Report};

/// Tunables for the checks.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Training-run bias below which an asserted branch is reported by
    /// `assert-unjustified`. Defaults to the distiller's own default
    /// threshold, so a distillation asserted under a *weaker* policy than
    /// it was configured for gets flagged.
    pub assert_bias: f64,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            assert_bias: mssp_distill::DistillConfig::default().assert_bias,
        }
    }
}

/// Runs every check over a distillation and returns the findings, errors
/// first.
///
/// `program` is the original binary, `distilled` the distiller's output
/// for it (including the task-boundary set), and `profile` the training
/// profile the distillation was derived from.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::Profile;
/// use mssp_distill::{distill, DistillConfig};
/// use mssp_lint::{lint, LintConfig};
///
/// let p = assemble(
///     "main: addi a0, zero, 500
///      loop: addi a1, a1, 3
///            addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
/// let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
/// let report = lint(&p, &d, &profile, &LintConfig::default());
/// assert!(!report.has_errors());
/// ```
#[must_use]
pub fn lint(
    program: &Program,
    distilled: &Distilled,
    profile: &Profile,
    config: &LintConfig,
) -> Report {
    let mut report = Report::new();
    let dist_prog = distilled.program();
    if program.is_empty() || dist_prog.is_empty() {
        return report;
    }

    let orig_cfg = Cfg::build(program);
    let dist_cfg = Cfg::build(dist_prog);
    let orig_live = Liveness::compute(program, &orig_cfg);
    let orig_reach = ReachingDefs::compute(program, &orig_cfg);
    let dist_live = Liveness::compute(dist_prog, &dist_cfg);
    let dist_reach = ReachingDefs::compute(dist_prog, &dist_cfg);
    let dist_consts = ConstProp::compute(dist_prog, &dist_cfg);
    let spans = DistSpans::build(distilled);

    check_boundary_unmapped(&mut report, distilled);
    check_liveins_uncovered(
        &mut report,
        distilled,
        &orig_cfg,
        &orig_live,
        &orig_reach,
        &dist_reach,
        &spans,
    );
    check_assert_unjustified(
        &mut report,
        program,
        distilled,
        profile,
        config,
        &orig_cfg,
        &spans,
    );
    check_fallthrough_off_end(&mut report, dist_prog);
    check_unreachable_after_assert(&mut report, distilled, profile, &dist_cfg, &dist_consts);
    check_boundary_in_cold_code(&mut report, distilled, profile);
    check_dead_store_in_distilled(&mut report, distilled, &orig_live, &dist_live);
    check_degenerate_boundary_set(&mut report, program, distilled, profile);
    check_slice_unsound(&mut report, distilled);

    report.sort();
    report
}

/// The distilled-space extent of each retained original block.
///
/// The distiller lays retained blocks out contiguously, so each mapped
/// original start owns the distilled addresses up to the next mapped start.
struct DistSpans {
    by_orig: BTreeMap<u64, PcSpan>,
}

impl DistSpans {
    fn build(distilled: &Distilled) -> DistSpans {
        let mut pairs: Vec<(u64, u64)> = distilled.iter_pc_map().collect();
        pairs.sort_by_key(|&(_, d)| d);
        let text_end = distilled.program().text_end();
        let mut by_orig = BTreeMap::new();
        for (i, &(o, d)) in pairs.iter().enumerate() {
            let end = pairs.get(i + 1).map_or(text_end, |&(_, nd)| nd);
            by_orig.insert(o, PcSpan::new(d, end.max(d)));
        }
        DistSpans { by_orig }
    }

    fn of(&self, orig_start: u64) -> Option<PcSpan> {
        self.by_orig.get(&orig_start).copied()
    }
}

/// `boundary-unmapped` (error): every task boundary must have a distilled
/// PC, or the master can never spawn (or be recovered at) tasks there.
fn check_boundary_unmapped(report: &mut Report, distilled: &Distilled) {
    for &b in distilled.boundaries() {
        if distilled.to_dist(b).is_none() {
            report.push(Diagnostic::new(
                LintId::BoundaryUnmapped,
                PcSpan::point(b),
                AddrSpace::Original,
                format!("task boundary {b:#x} has no distilled-PC correspondence"),
            ));
        }
    }
}

/// `liveins-uncovered` (error): a register that tasks starting at a
/// boundary may read was computed by the original program, but the
/// distilled image of the defining block lost the write and no other
/// definition reaches the boundary in distilled space — the master will
/// predict a stale value every time.
#[allow(clippy::too_many_arguments)]
fn check_liveins_uncovered(
    report: &mut Report,
    distilled: &Distilled,
    orig_cfg: &Cfg,
    orig_live: &Liveness,
    orig_reach: &ReachingDefs,
    dist_reach: &ReachingDefs,
    spans: &DistSpans,
) {
    let dist_prog = distilled.program();
    for &b in distilled.boundaries() {
        let Some(db) = distilled.to_dist(b) else {
            continue; // boundary-unmapped already reports this
        };
        for r in orig_live.live_in(b).iter() {
            // Covered if any distilled definition of r reaches the
            // boundary's distilled address.
            if dist_reach.before(db).is_some_and(|f| f.has_instr_def(r)) {
                continue;
            }
            // Uncovered only if the original program *does* define r on a
            // path to the boundary from within a retained block whose
            // distilled image dropped every write to r: a lost write, not
            // an elided cold path (cold paths re-seed from exact
            // checkpoints at recovery).
            let lost = orig_reach.defs_before(b, r).find(|&p| {
                let Some(bid) = orig_cfg.block_containing(p) else {
                    return false;
                };
                let block_start = orig_cfg.blocks()[bid].start;
                let Some(span) = spans.of(block_start) else {
                    return false; // block elided entirely
                };
                !span
                    .pcs()
                    .any(|dpc| dist_prog.fetch(dpc).and_then(|i| i.def_reg()) == Some(r))
            });
            if let Some(p) = lost {
                report.push(Diagnostic::new(
                    LintId::LiveinsUncovered,
                    PcSpan::point(b),
                    AddrSpace::Original,
                    format!(
                        "task live-in {r} at boundary {b:#x} is uncovered: the defining \
                         write at {p:#x} was dropped from the distilled image and no \
                         other definition reaches the boundary"
                    ),
                ));
            }
        }
    }
}

/// `assert-unjustified` (warning): the distilled image removed a
/// conditional branch whose training bias does not clear the configured
/// threshold — every under-biased assertion is a standing squash tax.
fn check_assert_unjustified(
    report: &mut Report,
    program: &Program,
    distilled: &Distilled,
    profile: &Profile,
    config: &LintConfig,
    orig_cfg: &Cfg,
    spans: &DistSpans,
) {
    for block in orig_cfg.blocks() {
        let branch_pc = block.end - mssp_isa::INSTR_BYTES;
        let Some(instr) = program.fetch(branch_pc) else {
            continue;
        };
        if !instr.is_branch() {
            continue;
        }
        let Some(span) = spans.of(block.start) else {
            continue; // whole block elided: nothing asserted, nothing kept
        };
        let still_conditional = span.pcs().any(|dpc| {
            distilled
                .program()
                .fetch(dpc)
                .is_some_and(|i| i.is_branch())
        });
        if still_conditional {
            continue;
        }
        // The branch was asserted away. Justified only by a strong bias.
        match profile.branch(branch_pc).and_then(|c| c.bias()) {
            Some(bias) if bias >= config.assert_bias => {}
            Some(bias) => report.push(Diagnostic::new(
                LintId::AssertUnjustified,
                PcSpan::point(branch_pc),
                AddrSpace::Original,
                format!(
                    "branch at {branch_pc:#x} is asserted in the distilled program but \
                     its training bias {bias:.4} is below the threshold {:.4}",
                    config.assert_bias
                ),
            )),
            None => report.push(Diagnostic::new(
                LintId::AssertUnjustified,
                PcSpan::point(branch_pc),
                AddrSpace::Original,
                format!(
                    "branch at {branch_pc:#x} is asserted in the distilled program but \
                     was never executed in training"
                ),
            )),
        }
    }
}

/// `cfg-fallthrough-off-end` (error): the last instruction of the
/// distilled text can fall through past the end of the segment, where the
/// master faults on fetch.
fn check_fallthrough_off_end(report: &mut Report, dist_prog: &Program) {
    let last_pc = dist_prog.text_end() - mssp_isa::INSTR_BYTES;
    let Some(last) = dist_prog.fetch(last_pc) else {
        return;
    };
    // `halt`, unconditional jumps and indirect jumps cannot fall through;
    // anything else (plain ALU/memory ops, conditional branches) can.
    if !(last.is_halt() || last.is_jump() || last.is_indirect_jump()) {
        report.push(Diagnostic::new(
            LintId::CfgFallthroughOffEnd,
            PcSpan::point(last_pc),
            AddrSpace::Distilled,
            format!(
                "distilled control can fall through off the end of the text segment \
                 after {last_pc:#x} ({})",
                last.mnemonic()
            ),
        ));
    }
}

/// `unreachable-after-assert` (warning): distilled code unreachable from
/// every master entry point — the program entry, the task boundaries the
/// master restarts at, blocks hot in training (recovery re-seeds the
/// master into hot code even when assertion made it statically
/// unreachable), and every materialized constant that translates to a
/// distilled address (rewritten call/return targets). Such code is image
/// bloat that assertion was supposed to remove.
fn check_unreachable_after_assert(
    report: &mut Report,
    distilled: &Distilled,
    profile: &Profile,
    dist_cfg: &Cfg,
    dist_consts: &ConstProp,
) {
    let dist_prog = distilled.program();
    let mut roots: Vec<usize> = vec![dist_cfg.entry()];
    for &b in distilled.boundaries() {
        if let Some(db) = distilled.to_dist(b) {
            roots.extend(dist_cfg.block_at(db));
        }
    }
    for (o, d) in distilled.iter_pc_map() {
        if profile.exec_count(o) > 0 {
            roots.extend(dist_cfg.block_at(d));
        }
    }
    for c in dist_consts.materialized(dist_prog) {
        if let Some(d) = distilled.to_dist(c) {
            roots.extend(dist_cfg.block_at(d));
        }
    }

    let mut reached = vec![false; dist_cfg.blocks().len()];
    let mut stack = roots;
    while let Some(bid) = stack.pop() {
        if std::mem::replace(&mut reached[bid], true) {
            continue;
        }
        stack.extend(dist_cfg.successors(bid));
    }

    // Merge contiguous unreachable blocks into one span per region.
    let mut region: Option<PcSpan> = None;
    let mut regions = Vec::new();
    for (bid, block) in dist_cfg.blocks().iter().enumerate() {
        if reached[bid] {
            if let Some(s) = region.take() {
                regions.push(s);
            }
        } else {
            let span = PcSpan::new(block.start, block.end);
            region = Some(match region {
                Some(s) if s.end == span.start => s.merge(span),
                Some(s) => {
                    regions.push(s);
                    span
                }
                None => span,
            });
        }
    }
    regions.extend(region);
    for span in regions {
        report.push(Diagnostic::new(
            LintId::UnreachableAfterAssert,
            span,
            AddrSpace::Distilled,
            format!(
                "distilled code {span} is unreachable from the entry, every task \
                 boundary and every materialized indirect target"
            ),
        ));
    }
}

/// `boundary-in-cold-code` (warning): a task boundary the training run
/// never crossed adds no parallelism and suggests a stale or mismatched
/// profile. Skipped entirely when no training data exists.
fn check_boundary_in_cold_code(report: &mut Report, distilled: &Distilled, profile: &Profile) {
    if profile.dynamic_instructions() == 0 {
        return;
    }
    for &b in distilled.boundaries() {
        if profile.exec_count(b) == 0 {
            report.push(Diagnostic::new(
                LintId::BoundaryInColdCode,
                PcSpan::point(b),
                AddrSpace::Original,
                format!(
                    "task boundary {b:#x} was never crossed in training: it adds no \
                     parallelism and may mis-slice tasks"
                ),
            ));
        }
    }
}

/// `dead-store-in-distilled` (warning): a distilled register write whose
/// value no later distilled instruction, `halt` state, indirect transfer
/// or task boundary can observe — wasted master work the dead-code pass
/// should have removed.
fn check_dead_store_in_distilled(
    report: &mut Report,
    distilled: &Distilled,
    orig_live: &Liveness,
    dist_live: &Liveness,
) {
    // Registers live-in at *any* boundary are prediction outputs the
    // master must keep computing even where plain distilled liveness calls
    // them dead; exempt them globally.
    let boundary_floor: RegSet = distilled
        .boundaries()
        .iter()
        .fold(RegSet::empty(), |acc, &b| acc.union(orig_live.live_in(b)));

    let dist_prog = distilled.program();
    for (pc, instr) in dist_prog.iter_pcs() {
        let Some(rd) = instr.def_reg() else { continue };
        if boundary_floor.contains(rd) {
            continue;
        }
        if !dist_live.live_out(pc).contains(rd) {
            report.push(Diagnostic::new(
                LintId::DeadStoreInDistilled,
                PcSpan::point(pc),
                AddrSpace::Distilled,
                format!("write to {rd} at {pc:#x} is dead in the distilled program"),
            ));
        }
    }
}

/// `degenerate-boundary-set` (warning): boundary selection fell back to
/// the entry PC alone (or nothing), so every "task" is the whole program —
/// MSSP silently degrades to sequential operation.
fn check_degenerate_boundary_set(
    report: &mut Report,
    program: &Program,
    distilled: &Distilled,
    profile: &Profile,
) {
    let boundaries = distilled.boundaries();
    let entry_only = boundaries.len() == 1 && boundaries.contains(&program.entry());
    let entry_recurs = profile.exec_count(program.entry()) >= 2;
    if boundaries.is_empty() || (entry_only && !entry_recurs) {
        report.push(Diagnostic::new(
            LintId::DegenerateBoundarySet,
            PcSpan::point(program.entry()),
            AddrSpace::Original,
            "boundary set degenerated to the entry PC alone: no site recurs, so MSSP \
             will operate sequentially"
                .to_string(),
        ));
    }
}

/// `slice-unsound` (error): every pre-computation slice attached to a
/// boundary must be the short, straight-line, register-pure program its
/// kind promises, reading only spawn-available values — its declared
/// inputs, its own earlier results, and the zero register. A slice
/// violating this hands the master a value that does not exist at spawn
/// time, turning the guard/live-in machinery into a deterministic squash
/// (or spurious-veto) generator.
fn check_slice_unsound(report: &mut Report, distilled: &Distilled) {
    for (&boundary, slices) in distilled.slices() {
        for slice in slices {
            if let Some(why) = slice_violation(slice) {
                report.push(Diagnostic::new(
                    LintId::SliceUnsound,
                    PcSpan::point(slice.home_pc),
                    AddrSpace::Original,
                    format!("pre-computation slice for boundary {boundary:#x} {why}"),
                ));
            }
        }
    }
}

/// The structural obligation for one slice; `None` when it holds.
fn slice_violation(slice: &Slice) -> Option<String> {
    let is_pure =
        |i: &mssp_isa::Instr| !i.is_mem() && !i.is_control() && !i.is_halt() && !i.is_branch();
    let p = &slice.program;
    let count = p.len();
    if count == 0 {
        return Some("is empty".to_string());
    }
    if count > MAX_SLICE_LEN {
        return Some(format!(
            "has {count} instructions, over the {MAX_SLICE_LEN}-instruction limit"
        ));
    }
    let mut avail: std::collections::BTreeSet<mssp_isa::Reg> =
        slice.inputs.iter().map(|&(r, _)| r).collect();
    let mut defined: std::collections::BTreeSet<mssp_isa::Reg> = std::collections::BTreeSet::new();
    for (i, (pc, instr)) in p.iter_pcs().enumerate() {
        let is_last = i + 1 == count;
        match slice.kind {
            SliceKind::SpawnGuard { .. } => {
                // Guards may also load: the evaluator answers loads from
                // the master's spawn-time memory view, which is itself
                // spawn-available. Stores and control stay forbidden.
                if is_last {
                    if !instr.is_branch() {
                        return Some(
                            "is a spawn guard whose final instruction is not a conditional branch"
                                .to_string(),
                        );
                    }
                } else if !(is_pure(&instr) || instr.is_load()) {
                    return Some(format!(
                        "contains a non-ALU, non-load instruction at slice pc {pc:#x}"
                    ));
                }
            }
            SliceKind::LiveIn { .. } => {
                if instr.is_halt() {
                    if !is_last {
                        return Some(format!("halts early at slice pc {pc:#x}"));
                    }
                } else if !is_pure(&instr) {
                    return Some(format!(
                        "contains a non-ALU instruction at slice pc {pc:#x}"
                    ));
                }
            }
        }
        if instr.is_halt() {
            continue;
        }
        for r in instr.use_regs().into_iter().flatten() {
            if !r.is_zero() && !avail.contains(&r) {
                return Some(format!(
                    "reads {r} at slice pc {pc:#x}, which is neither a declared \
                     input nor an earlier slice result (not spawn-available)"
                ));
            }
        }
        if let Some(d) = instr.def_reg() {
            avail.insert(d);
            defined.insert(d);
        }
    }
    if let SliceKind::LiveIn { target } = slice.kind {
        if !defined.contains(&target) {
            return Some(format!("never defines its live-in target {target}"));
        }
    }
    None
}

/// The set of registers live at a boundary according to the original
/// program — exported for tests and tooling that want to inspect the
/// obligation `liveins-uncovered` enforces.
#[must_use]
pub fn boundary_live_ins(program: &Program, boundary: u64) -> RegSet {
    let cfg = Cfg::build(program);
    let live = Liveness::compute(program, &cfg);
    live.live_in(boundary)
}

/// Convenience predicate used by the adversarial suite: whether `report`
/// contains a finding of `lint` whose span starts at `pc`.
#[must_use]
pub fn fires_at(report: &Report, lint: LintId, pc: u64) -> bool {
    report
        .of(lint)
        .any(|d| d.span.contains(pc) || d.span.start == pc)
}
