//! Byte-masked storage semantics: the default `Storage` helpers must be
//! exactly equivalent to a plain byte-array model across widths,
//! alignments and overlaps — and masked deltas must compose like byte
//! arrays too.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

use mssp_machine::{expand_mask, Cell, Delta, MachineState, MaskedVal, Storage};
use mssp_testkit::{check, Rng};

/// Reference model: a flat byte array.
#[derive(Clone)]
struct Flat {
    bytes: Vec<u8>,
}

impl Flat {
    fn new() -> Flat {
        Flat {
            bytes: vec![0; 4096],
        }
    }
    fn store(&mut self, addr: u64, len: u8, value: u64) {
        for i in 0..len as usize {
            self.bytes[addr as usize + i] = (value >> (i * 8)) as u8;
        }
    }
    fn load(&self, addr: u64, len: u8) -> u64 {
        let mut out = 0u64;
        for i in 0..len as usize {
            out |= (self.bytes[addr as usize + i] as u64) << (i * 8);
        }
        out
    }
}

fn arb_ops(rng: &mut Rng) -> Vec<(bool, u64, u8, u64)> {
    let n = rng.gen_range(1, 60);
    (0..n)
        .map(|_| {
            (
                rng.gen_bool(1, 2),
                rng.gen_range(0, 4000),
                *rng.choose(&[1u8, 2, 4, 8]),
                rng.next_u64(),
            )
        })
        .collect()
}

#[test]
fn storage_helpers_match_flat_byte_model() {
    check(0xB17E_0001, 512, |rng| {
        let ops = arb_ops(rng);
        let mut flat = Flat::new();
        let mut state = MachineState::new();
        for (is_store, addr, len, value) in ops {
            if is_store {
                flat.store(addr, len, value);
                state.store_bytes(addr, len, value);
            } else {
                let expected = flat.load(addr, len);
                let got = state.load_bytes(addr, len);
                assert_eq!(got, expected, "load {len}B @ {addr:#x}");
            }
        }
    });
}

#[test]
fn masked_delta_applies_like_byte_writes() {
    check(0xB17E_0002, 512, |rng| {
        let ops = arb_ops(rng);
        // Writing through a Delta (masked) then applying must equal
        // writing directly.
        let mut direct = MachineState::new();
        let mut delta = Delta::new();
        for (_, addr, len, value) in ops {
            direct.store_bytes(addr, len, value);
            // Build the same write as masked word updates.
            let mut done = 0u64;
            while done < len as u64 {
                let a = addr + done;
                let widx = a >> 3;
                let first = a & 7;
                let take = (8 - first).min(len as u64 - done);
                let mask = (((1u16 << take) - 1) as u8) << first;
                let chunk = ((value >> (done * 8))
                    & if take >= 8 {
                        u64::MAX
                    } else {
                        (1u64 << (take * 8)) - 1
                    })
                    << (first * 8);
                delta.set_bytes(Cell::Mem(widx), chunk, mask);
                done += take;
            }
        }
        let mut via_delta = MachineState::new();
        via_delta.apply(&delta);
        for w in 0..512u64 {
            assert_eq!(via_delta.load_word(w), direct.load_word(w), "word {w}");
        }
    });
}

#[test]
fn masked_val_overwrite_is_byte_exact() {
    check(0xB17E_0003, 2048, |rng| {
        let a = rng.next_u64();
        let am = rng.next_u64() as u8;
        let b = rng.next_u64();
        let bm = rng.next_u64() as u8;
        let old = MaskedVal::partial(a, am);
        let new = MaskedVal::partial(b, bm);
        let merged = old.overwrite_with(new);
        assert_eq!(merged.mask, am | bm);
        for byte in 0..8u32 {
            let bit = 1u8 << byte;
            let got = (merged.value >> (byte * 8)) & 0xFF;
            let expect = if bm & bit != 0 {
                (b >> (byte * 8)) & 0xFF
            } else if am & bit != 0 {
                (a >> (byte * 8)) & 0xFF
            } else {
                0
            };
            assert_eq!(got, expect, "byte {byte}");
        }
    });
}

#[test]
fn consistency_is_reflexive_and_monotone() {
    check(0xB17E_0004, 512, |rng| {
        let n = rng.gen_range(0, 10);
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0, 32), rng.next_u64()))
            .collect();
        let m = rng.gen_range(0, 10);
        let extra: Vec<(u64, u64)> = (0..m)
            .map(|_| (rng.gen_range(32, 64), rng.next_u64()))
            .collect();
        let base: Delta = pairs.iter().map(|&(w, v)| (Cell::Mem(w), v)).collect();
        assert!(base.consistent_with(&base));
        let mut bigger = base.clone();
        for &(w, v) in &extra {
            bigger.set(Cell::Mem(w), v);
        }
        assert!(base.consistent_with(&bigger));
    });
}

#[test]
fn expand_mask_expands_each_bit() {
    // Exhaustive: only 256 masks exist.
    for mask in 0u16..256 {
        let mask = mask as u8;
        let em = expand_mask(mask);
        for byte in 0..8u32 {
            let expected = if mask & (1 << byte) != 0 { 0xFF } else { 0 };
            assert_eq!((em >> (byte * 8)) & 0xFF, expected);
        }
    }
}
