//! Byte-masked storage semantics: the default `Storage` helpers must be
//! exactly equivalent to a plain byte-array model across widths,
//! alignments and overlaps — and masked deltas must compose like byte
//! arrays too.

use mssp_machine::{expand_mask, Cell, Delta, MachineState, MaskedVal, Storage};
use proptest::prelude::*;

/// Reference model: a flat byte array.
#[derive(Clone)]
struct Flat {
    bytes: Vec<u8>,
}

impl Flat {
    fn new() -> Flat {
        Flat {
            bytes: vec![0; 4096],
        }
    }
    fn store(&mut self, addr: u64, len: u8, value: u64) {
        for i in 0..len as usize {
            self.bytes[addr as usize + i] = (value >> (i * 8)) as u8;
        }
    }
    fn load(&self, addr: u64, len: u8) -> u64 {
        let mut out = 0u64;
        for i in 0..len as usize {
            out |= (self.bytes[addr as usize + i] as u64) << (i * 8);
        }
        out
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<(bool, u64, u8, u64)>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            0u64..4000,
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            any::<u64>(),
        ),
        1..60,
    )
}

proptest! {
    #[test]
    fn storage_helpers_match_flat_byte_model(ops in arb_ops()) {
        let mut flat = Flat::new();
        let mut state = MachineState::new();
        for (is_store, addr, len, value) in ops {
            if is_store {
                flat.store(addr, len, value);
                state.store_bytes(addr, len, value);
            } else {
                let expected = flat.load(addr, len);
                let got = state.load_bytes(addr, len);
                prop_assert_eq!(got, expected, "load {}B @ {:#x}", len, addr);
            }
        }
    }

    #[test]
    fn masked_delta_applies_like_byte_writes(ops in arb_ops()) {
        // Writing through a Delta (masked) then applying must equal
        // writing directly.
        let mut direct = MachineState::new();
        let mut delta = Delta::new();
        for (_, addr, len, value) in ops {
            direct.store_bytes(addr, len, value);
            // Build the same write as masked word updates.
            let mut done = 0u64;
            while done < len as u64 {
                let a = addr + done;
                let widx = a >> 3;
                let first = a & 7;
                let take = (8 - first).min(len as u64 - done);
                let mask = (((1u16 << take) - 1) as u8) << first;
                let chunk = ((value >> (done * 8))
                    & if take >= 8 { u64::MAX } else { (1u64 << (take * 8)) - 1 })
                    << (first * 8);
                delta.set_bytes(Cell::Mem(widx), chunk, mask);
                done += take;
            }
        }
        let mut via_delta = MachineState::new();
        via_delta.apply(&delta);
        for w in 0..512u64 {
            prop_assert_eq!(via_delta.load_word(w), direct.load_word(w), "word {}", w);
        }
    }

    #[test]
    fn masked_val_overwrite_is_byte_exact(
        a in any::<u64>(), am in any::<u8>(),
        b in any::<u64>(), bm in any::<u8>(),
    ) {
        let old = MaskedVal::partial(a, am);
        let new = MaskedVal::partial(b, bm);
        let merged = old.overwrite_with(new);
        prop_assert_eq!(merged.mask, am | bm);
        for byte in 0..8u32 {
            let bit = 1u8 << byte;
            let got = (merged.value >> (byte * 8)) & 0xFF;
            let expect = if bm & bit != 0 {
                (b >> (byte * 8)) & 0xFF
            } else if am & bit != 0 {
                (a >> (byte * 8)) & 0xFF
            } else {
                0
            };
            prop_assert_eq!(got, expect, "byte {}", byte);
        }
    }

    #[test]
    fn consistency_is_reflexive_and_monotone(
        pairs in proptest::collection::vec((0u64..32, any::<u64>()), 0..10),
        extra in proptest::collection::vec((32u64..64, any::<u64>()), 0..10),
    ) {
        let base: Delta = pairs.iter().map(|&(w, v)| (Cell::Mem(w), v)).collect();
        prop_assert!(base.consistent_with(&base));
        let mut bigger = base.clone();
        for &(w, v) in &extra {
            bigger.set(Cell::Mem(w), v);
        }
        prop_assert!(base.consistent_with(&bigger));
    }

    #[test]
    fn expand_mask_expands_each_bit(mask in any::<u8>()) {
        let em = expand_mask(mask);
        for byte in 0..8u32 {
            let expected = if mask & (1 << byte) != 0 { 0xFF } else { 0 };
            prop_assert_eq!((em >> (byte * 8)) & 0xFF, expected);
        }
    }
}
