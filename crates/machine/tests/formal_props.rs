//! Property-based tests of the formal model's laws (companion paper,
//! Definitions 8-10, Lemma 3): superimposition algebra over arbitrary
//! deltas, and seq/Δ agreement over randomly generated straight-line
//! programs.

use mssp_isa::{Instr, Program, Reg};
use mssp_machine::{cumulative_writes, seq_n, Cell, Delta, MachineState};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        (0u8..32).prop_map(|i| Cell::Reg(Reg::new(i))),
        Just(Cell::Pc),
        (0u64..64).prop_map(Cell::Mem),
    ]
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    proptest::collection::vec((arb_cell(), any::<u64>()), 0..12)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    // Definition 8.1: associativity of superimposition.
    #[test]
    fn superimpose_associative(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        prop_assert_eq!(
            a.superimpose(&b).superimpose(&c),
            a.superimpose(&b.superimpose(&c))
        );
    }

    // Definition 8.2: containment. S1 ⊑ S2 ⟹ (S1 ← S3) ⊑ (S2 ← S3).
    #[test]
    fn superimpose_containment(base in arb_delta(), extra in arb_delta(), s3 in arb_delta()) {
        // Construct S2 ⊒ S1 by extension.
        let s1 = base.clone();
        let s2 = base.superimpose(&extra).superimpose(&base);
        prop_assume!(s1.consistent_with(&s2));
        prop_assert!(s1.superimpose(&s3).consistent_with(&s2.superimpose(&s3)));
    }

    // Definition 8.3: idempotency. S2 ⊑ S1 ⟹ S1 ← S2 = S1.
    #[test]
    fn superimpose_idempotent(s1 in arb_delta(), mask in any::<u64>()) {
        // Build S2 as a sub-delta of S1.
        let s2: Delta = s1
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, kv)| kv)
            .collect();
        prop_assert!(s2.consistent_with(&s1));
        prop_assert_eq!(s1.superimpose(&s2), s1);
    }

    // Superimposition onto a full state distributes over composition:
    // (S ← a) ← b  =  S ← (a ← b).
    #[test]
    fn apply_composes(a in arb_delta(), b in arb_delta()) {
        let mut s1 = MachineState::new();
        s1.apply(&a);
        s1.apply(&b);
        let mut s2 = MachineState::new();
        s2.apply(&a.superimpose(&b));
        prop_assert_eq!(s1, s2);
    }
}

/// A random but well-formed program: straight-line ALU/memory code with a
/// bounded loop at the end, so every program halts.
fn arb_program() -> impl Strategy<Value = Program> {
    let alu = (0u8..8, 0u8..8, 0u8..8, 0usize..6).prop_map(|(rd, a, b, op)| {
        let rd = Reg::new(rd + 4);
        let a = Reg::new(a + 4);
        let b = Reg::new(b + 4);
        match op {
            0 => Instr::Add(rd, a, b),
            1 => Instr::Sub(rd, a, b),
            2 => Instr::Xor(rd, a, b),
            3 => Instr::Mul(rd, a, b),
            4 => Instr::And(rd, a, b),
            _ => Instr::Or(rd, a, b),
        }
    });
    let imm = (0u8..8, 0u8..8, any::<i16>()).prop_map(|(rd, a, i)| {
        Instr::Addi(Reg::new(rd + 4), Reg::new(a + 4), i)
    });
    let memi = (0u8..8, 0i16..64).prop_map(|(r, o)| {
        // sp-relative accesses stay in mapped stack space.
        Instr::Sd(Reg::new(r + 4), Reg::SP, o * 8 - 256)
    });
    let load = (0u8..8, 0i16..64).prop_map(|(r, o)| {
        Instr::Ld(Reg::new(r + 4), Reg::SP, o * 8 - 256)
    });
    proptest::collection::vec(prop_oneof![alu, imm, memi, load], 1..40).prop_map(|mut body| {
        body.push(Instr::Halt);
        Program::from_instrs(body)
    })
}

proptest! {
    // Lemma 3: seq(S, n) = S ← Δ(S, n) for arbitrary programs and n.
    #[test]
    fn lemma3_holds(p in arb_program(), n in 0u64..64) {
        let s0 = MachineState::boot(&p);
        let direct = seq_n(&p, s0.clone(), n).unwrap();
        let delta = cumulative_writes(&p, s0.clone(), n).unwrap();
        let mut via = s0;
        via.apply(&delta);
        prop_assert_eq!(direct, via);
    }

    // Determinism of seq: same state, same program, same result.
    #[test]
    fn seq_deterministic(p in arb_program(), n in 0u64..64) {
        let s0 = MachineState::boot(&p);
        let a = seq_n(&p, s0.clone(), n).unwrap();
        let b = seq_n(&p, s0, n).unwrap();
        prop_assert_eq!(a, b);
    }

    // Monotone composition: seq(seq(S, a), b) = seq(S, a + b).
    #[test]
    fn seq_composes(p in arb_program(), a in 0u64..32, b in 0u64..32) {
        let s0 = MachineState::boot(&p);
        let two_step = seq_n(&p, seq_n(&p, s0.clone(), a).unwrap(), b).unwrap();
        let one_step = seq_n(&p, s0, a + b).unwrap();
        prop_assert_eq!(two_step, one_step);
    }
}
