//! Property-based tests of the formal model's laws (companion paper,
//! Definitions 8-10, Lemma 3): superimposition algebra over arbitrary
//! deltas, and seq/Δ agreement over randomly generated straight-line
//! programs.
//!
//! Seeded with `mssp-testkit` (no crate registry in the build
//! environment); a failing case prints its seed for replay.

use mssp_isa::{Instr, Program, Reg};
use mssp_machine::{cumulative_writes, seq_n, Cell, Delta, MachineState};
use mssp_testkit::{check, Rng};

fn arb_cell(rng: &mut Rng) -> Cell {
    match rng.gen_range(0, 3) {
        0 => Cell::Reg(Reg::new(rng.gen_range(0, 32) as u8)),
        1 => Cell::Pc,
        _ => Cell::Mem(rng.gen_range(0, 64)),
    }
}

fn arb_delta(rng: &mut Rng) -> Delta {
    let n = rng.gen_range(0, 12);
    (0..n).map(|_| (arb_cell(rng), rng.next_u64())).collect()
}

// Definition 8.1: associativity of superimposition.
#[test]
fn superimpose_associative() {
    check(0x3A51_0001, 512, |rng| {
        let a = arb_delta(rng);
        let b = arb_delta(rng);
        let c = arb_delta(rng);
        assert_eq!(
            a.superimpose(&b).superimpose(&c),
            a.superimpose(&b.superimpose(&c))
        );
    });
}

// Definition 8.2: containment. S1 ⊑ S2 ⟹ (S1 ← S3) ⊑ (S2 ← S3).
#[test]
fn superimpose_containment() {
    check(0x3A51_0002, 512, |rng| {
        let base = arb_delta(rng);
        let extra = arb_delta(rng);
        let s3 = arb_delta(rng);
        // Construct S2 ⊒ S1 by extension.
        let s1 = base.clone();
        let s2 = base.superimpose(&extra).superimpose(&base);
        if !s1.consistent_with(&s2) {
            return; // construction needs S1 ⊑ S2 (masked overlap can break it)
        }
        assert!(s1.superimpose(&s3).consistent_with(&s2.superimpose(&s3)));
    });
}

// Definition 8.3: idempotency. S2 ⊑ S1 ⟹ S1 ← S2 = S1.
#[test]
fn superimpose_idempotent() {
    check(0x3A51_0003, 512, |rng| {
        let s1 = arb_delta(rng);
        let mask = rng.next_u64();
        // Build S2 as a sub-delta of S1.
        let s2: Delta = s1
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, kv)| kv)
            .collect();
        assert!(s2.consistent_with(&s1));
        assert_eq!(s1.superimpose(&s2), s1);
    });
}

// Superimposition onto a full state distributes over composition:
// (S ← a) ← b  =  S ← (a ← b).
#[test]
fn apply_composes() {
    check(0x3A51_0004, 512, |rng| {
        let a = arb_delta(rng);
        let b = arb_delta(rng);
        let mut s1 = MachineState::new();
        s1.apply(&a);
        s1.apply(&b);
        let mut s2 = MachineState::new();
        s2.apply(&a.superimpose(&b));
        assert_eq!(s1, s2);
    });
}

/// A random but well-formed program: straight-line ALU/memory code ending
/// in `halt`, so every program terminates.
fn arb_program(rng: &mut Rng) -> Program {
    let len = rng.gen_range(1, 40);
    let mut body: Vec<Instr> = (0..len)
        .map(|_| {
            let r = |rng: &mut Rng| Reg::new(rng.gen_range(4, 12) as u8);
            match rng.gen_range(0, 4) {
                0 => {
                    let rd = r(rng);
                    let a = r(rng);
                    let b = r(rng);
                    match rng.gen_range(0, 6) {
                        0 => Instr::Add(rd, a, b),
                        1 => Instr::Sub(rd, a, b),
                        2 => Instr::Xor(rd, a, b),
                        3 => Instr::Mul(rd, a, b),
                        4 => Instr::And(rd, a, b),
                        _ => Instr::Or(rd, a, b),
                    }
                }
                1 => Instr::Addi(r(rng), r(rng), rng.next_u64() as i16),
                // sp-relative accesses stay in mapped stack space.
                2 => Instr::Sd(r(rng), Reg::SP, rng.gen_range(0, 64) as i16 * 8 - 256),
                _ => Instr::Ld(r(rng), Reg::SP, rng.gen_range(0, 64) as i16 * 8 - 256),
            }
        })
        .collect();
    body.push(Instr::Halt);
    Program::from_instrs(body)
}

// Lemma 3: seq(S, n) = S ← Δ(S, n) for arbitrary programs and n.
#[test]
fn lemma3_holds() {
    check(0x3A51_0005, 256, |rng| {
        let p = arb_program(rng);
        let n = rng.gen_range(0, 64);
        let s0 = MachineState::boot(&p);
        let direct = seq_n(&p, s0.clone(), n).unwrap();
        let delta = cumulative_writes(&p, s0.clone(), n).unwrap();
        let mut via = s0;
        via.apply(&delta);
        assert_eq!(direct, via);
    });
}

// Determinism of seq: same state, same program, same result.
#[test]
fn seq_deterministic() {
    check(0x3A51_0006, 256, |rng| {
        let p = arb_program(rng);
        let n = rng.gen_range(0, 64);
        let s0 = MachineState::boot(&p);
        let a = seq_n(&p, s0.clone(), n).unwrap();
        let b = seq_n(&p, s0, n).unwrap();
        assert_eq!(a, b);
    });
}

// Monotone composition: seq(seq(S, a), b) = seq(S, a + b).
#[test]
fn seq_composes() {
    check(0x3A51_0007, 256, |rng| {
        let p = arb_program(rng);
        let a = rng.gen_range(0, 32);
        let b = rng.gen_range(0, 32);
        let s0 = MachineState::boot(&p);
        let two_step = seq_n(&p, seq_n(&p, s0.clone(), a).unwrap(), b).unwrap();
        let one_step = seq_n(&p, s0, a + b).unwrap();
        assert_eq!(two_step, one_step);
    });
}
