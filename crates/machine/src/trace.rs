//! Execution tracing and trace comparison.
//!
//! A [`Trace`] records `(pc, instruction)` steps with a bounded ring
//! buffer; [`Trace::first_divergence`] finds where two executions part
//! ways. The MSSP debugging workflow is: trace the sequential machine,
//! trace a suspect path (a slave task, the master), and diff — the first
//! divergent step names the misprediction or the interpreter bug.

use std::collections::VecDeque;
use std::fmt;

use crate::StepInfo;

/// One recorded execution step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Address of the executed instruction.
    pub pc: u64,
    /// The instruction.
    pub instr: mssp_isa::Instr,
    /// Address of the next instruction.
    pub next_pc: u64,
}

impl From<&StepInfo> for TraceStep {
    fn from(info: &StepInfo) -> TraceStep {
        TraceStep {
            pc: info.pc,
            instr: info.instr,
            next_pc: info.next_pc,
        }
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#08x}: {} -> {:#x}", self.pc, self.instr, self.next_pc)
    }
}

/// A bounded execution trace (ring buffer of the most recent steps).
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_machine::{SeqMachine, Trace};
///
/// let p = assemble("main: addi a0, zero, 3\n addi a0, a0, -1\n halt").unwrap();
/// let mut trace = Trace::with_capacity(16);
/// let mut m = SeqMachine::boot(&p);
/// m.run_observed(100, |info| trace.record(info)).unwrap();
/// assert_eq!(trace.len(), 3); // two ALU steps + the halt observation
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    steps: VecDeque<TraceStep>,
    capacity: usize,
    /// Total steps ever recorded (≥ `len()` once the ring wraps).
    recorded: u64,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` recent steps
    /// (`0` means unbounded).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            steps: VecDeque::new(),
            capacity,
            recorded: 0,
        }
    }

    /// Records one step.
    pub fn record(&mut self, info: &StepInfo) {
        if self.capacity != 0 && self.steps.len() == self.capacity {
            self.steps.pop_front();
        }
        self.steps.push_back(TraceStep::from(info));
        self.recorded += 1;
    }

    /// Steps currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total steps ever recorded (ignores ring eviction).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Iterates over retained steps, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter()
    }

    /// Index (within the retained windows) of the first step at which the
    /// two traces diverge, comparing oldest-first. Returns `None` if the
    /// shorter trace is a prefix of the longer.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::asm::assemble;
    /// use mssp_machine::{SeqMachine, Trace};
    ///
    /// let a = assemble("main: addi a0, zero, 1\n halt").unwrap();
    /// let b = assemble("main: addi a0, zero, 2\n halt").unwrap();
    /// let run = |p| {
    ///     let mut t = Trace::with_capacity(0);
    ///     let mut m = SeqMachine::boot(p);
    ///     m.run_observed(10, |i| t.record(i)).unwrap();
    ///     t
    /// };
    /// assert_eq!(run(&a).first_divergence(&run(&b)), Some(0));
    /// assert_eq!(run(&a).first_divergence(&run(&a)), None);
    /// ```
    #[must_use]
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        self.steps
            .iter()
            .zip(other.steps.iter())
            .position(|(a, b)| a != b)
    }

    /// Renders the last `n` steps, one per line.
    #[must_use]
    pub fn tail(&self, n: usize) -> String {
        let skip = self.steps.len().saturating_sub(n);
        self.steps
            .iter()
            .skip(skip)
            .map(|s| format!("{s}\n"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqMachine;
    use mssp_isa::asm::assemble;

    fn trace_of(src: &str, cap: usize) -> Trace {
        let p = assemble(src).unwrap();
        let mut t = Trace::with_capacity(cap);
        let mut m = SeqMachine::boot(&p);
        m.run_observed(10_000, |i| t.record(i)).unwrap();
        t
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = trace_of(
            "main: addi a0, zero, 50
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
            8,
        );
        assert_eq!(t.len(), 8);
        assert_eq!(t.recorded(), 1 + 100 + 1); // init + 50*(addi,bnez) + halt
                                               // The retained tail ends with the halt observation.
        let last = t.iter().last().unwrap();
        assert!(last.instr.is_halt());
    }

    #[test]
    fn unbounded_capacity_keeps_everything() {
        let t = trace_of("main: addi a0, zero, 1\n addi a0, a0, 1\n halt", 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn divergence_found_at_data_dependent_branch() {
        // Identical code, different *data*: traces match instruction for
        // instruction until the loop branch goes the other way.
        let src = |n: u64| {
            format!(
                ".data
                 n: .dword {n}
                 .text
                 main: la a0, n
                       ld a0, 0(a0)
                 loop: addi a0, a0, -1
                       bnez a0, loop
                       halt"
            )
        };
        let a = trace_of(&src(2), 0);
        let b = trace_of(&src(3), 0);
        // Steps: lui, addi (la), ld, then (addi, bnez) pairs. The second
        // bnez (index 6) falls through in `a` but loops in `b`.
        assert_eq!(a.first_divergence(&b), Some(6));
    }

    #[test]
    fn tail_formats_requested_suffix() {
        let t = trace_of("main: addi a0, zero, 1\n addi a1, zero, 2\n halt", 0);
        let s = t.tail(2);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("halt"));
    }
}
