//! Partial machine states and the formal operators of the MSSP model.
//!
//! A [`Delta`] is a finite partial map from [`Cell`]s to values — the
//! paper's notion of a machine state "holding members for only a subset of
//! all ISA-visible cells". Live-in sets, live-out sets, master checkpoints
//! and cumulative-write sets (`Δ(S, n)`) are all `Delta`s.
//!
//! Memory cells are tracked at **byte granularity** via per-cell masks:
//! a task that stores one byte of a word records (and is verified
//! against) only that byte. Coarser, whole-word tracking would create
//! false dependencies between adjacent tasks writing neighbouring bytes —
//! the classic false-sharing problem, which the paper's verify/commit
//! hardware likewise avoided by checking at fine granularity. Register
//! and PC cells always carry a full mask.
//!
//! Two operators come straight from the formal model:
//!
//! * **Superimposition** `S₀ ← S₁` ([`Delta::superimpose`] /
//!   [`crate::MachineState::apply`]): overwrite `S₀` with every binding of
//!   `S₁` (byte-wise). The commit step of MSSP is exactly a
//!   superimposition of a task's live-outs onto architected state.
//! * **Consistency** `S₁ ⊑ S₂` ([`Delta::consistent_with`]): every bound
//!   byte of `S₁` is present in `S₂` with the same value. Task
//!   verification is a consistency check of recorded live-ins against
//!   architected state.
//!
//! The algebraic laws of Definition 8 (associativity, containment,
//! idempotency) are verified by unit and property tests in this crate and
//! re-checked end-to-end by the `t10_formal` experiment.
//!
//! # Representation
//!
//! A `Delta` is stored as a single sorted `Vec<(Cell, MaskedVal)>` rather
//! than a node-based tree: lookups are binary searches, iteration is a
//! linear slice walk, and — crucially for the threaded executor's
//! allocation-free hot path — [`Delta::clear`] retains the buffer's
//! capacity, so a recycled delta (see [`crate::DeltaArena`]) performs no
//! heap allocation in steady state. Typical live-in/live-out sets are
//! tens of cells, where a flat sorted vector also beats a B-tree on both
//! cache behaviour and constant factors.

use std::fmt;

use crate::{Cell, MachineState};

/// A partially-defined 64-bit value: `mask` bit *i* set means byte *i*
/// (little-endian) of `value` is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskedVal {
    /// The value; bytes outside `mask` are zero.
    pub value: u64,
    /// Byte-validity mask.
    pub mask: u8,
}

/// Expands a byte mask to a per-bit mask (`0b101` → `0x00FF_00FF`-style).
#[must_use]
pub fn expand_mask(mask: u8) -> u64 {
    let mut out = 0u64;
    for i in 0..8 {
        if mask & (1 << i) != 0 {
            out |= 0xFFu64 << (i * 8);
        }
    }
    out
}

impl MaskedVal {
    /// A fully-defined value.
    #[must_use]
    pub fn full(value: u64) -> MaskedVal {
        MaskedVal { value, mask: 0xFF }
    }

    /// A partially-defined value (bytes outside the mask are cleared).
    #[must_use]
    pub fn partial(value: u64, mask: u8) -> MaskedVal {
        MaskedVal {
            value: value & expand_mask(mask),
            mask,
        }
    }

    /// Whether every byte is defined.
    #[must_use]
    pub fn is_full(self) -> bool {
        self.mask == 0xFF
    }

    /// Overwrites `self` with the defined bytes of `newer`.
    #[must_use]
    pub fn overwrite_with(self, newer: MaskedVal) -> MaskedVal {
        let nm = expand_mask(newer.mask);
        MaskedVal {
            value: (self.value & !nm) | (newer.value & nm),
            mask: self.mask | newer.mask,
        }
    }

    /// Fills *undefined* bytes of `self` from `older` (first-writer-wins
    /// merge used when recording live-ins).
    #[must_use]
    pub fn backfill_with(self, older: MaskedVal) -> MaskedVal {
        older.overwrite_with(self)
    }
}

/// A partial machine state: a finite map from cells to (byte-masked)
/// values.
///
/// Iteration order is deterministic (cells are ordered), which keeps every
/// downstream consumer — hashing, verification, serialization — stable
/// across runs.
///
/// # Examples
///
/// ```
/// use mssp_machine::{Cell, Delta};
/// use mssp_isa::Reg;
///
/// let mut a = Delta::new();
/// a.set(Cell::Reg(Reg::A0), 1);
/// let mut b = Delta::new();
/// b.set(Cell::Reg(Reg::A0), 2);
/// b.set(Cell::Reg(Reg::A1), 3);
///
/// let c = a.superimpose(&b); // b wins on conflicts
/// assert_eq!(c.get(Cell::Reg(Reg::A0)), Some(2));
/// assert_eq!(c.get(Cell::Reg(Reg::A1)), Some(3));
/// ```
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Sorted by cell, one entry per bound cell.
    cells: Vec<(Cell, MaskedVal)>,
}

impl Clone for Delta {
    fn clone(&self) -> Delta {
        Delta {
            cells: self.cells.clone(),
        }
    }

    /// Clones into an existing delta, **reusing its buffer capacity** —
    /// the copy a recycled arena buffer wants (no allocation once the
    /// buffer has grown to steady-state size).
    fn clone_from(&mut self, source: &Delta) {
        self.cells.clone_from(&source.cells);
    }
}

impl Delta {
    /// Creates an empty partial state (`∅`).
    #[must_use]
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Creates an empty partial state with room for `capacity` cells.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Delta {
        Delta {
            cells: Vec::with_capacity(capacity),
        }
    }

    /// Removes every binding, **retaining the allocated capacity** so the
    /// buffer can be recycled without touching the heap.
    pub fn clear(&mut self) {
        self.cells.clear();
    }

    /// The index of `cell` in the sorted vector, or the insertion point.
    #[inline]
    fn find(&self, cell: Cell) -> Result<usize, usize> {
        self.cells.binary_search_by(|&(c, _)| c.cmp(&cell))
    }

    /// Binds `cell` fully to `value`, returning the previous fully-bound
    /// value if there was one.
    pub fn set(&mut self, cell: Cell, value: u64) -> Option<u64> {
        match self.find(cell) {
            Ok(i) => {
                let old = self.cells[i].1;
                self.cells[i].1 = MaskedVal::full(value);
                old.is_full().then_some(old.value)
            }
            Err(i) => {
                self.cells.insert(i, (cell, MaskedVal::full(value)));
                None
            }
        }
    }

    /// Overwrites the masked bytes of `cell` (newest-wins merge with any
    /// existing binding).
    pub fn set_bytes(&mut self, cell: Cell, value: u64, mask: u8) {
        if mask == 0 {
            return;
        }
        let new = MaskedVal::partial(value, mask);
        match self.find(cell) {
            Ok(i) => self.cells[i].1 = self.cells[i].1.overwrite_with(new),
            Err(i) => self.cells.insert(i, (cell, new)),
        }
    }

    /// Records the masked bytes of `cell` *only where not already bound*
    /// (first-observation-wins; used for live-in recording so re-reads
    /// stay repeatable).
    pub fn record_bytes(&mut self, cell: Cell, value: u64, mask: u8) {
        if mask == 0 {
            return;
        }
        let new = MaskedVal::partial(value, mask);
        match self.find(cell) {
            Ok(i) => self.cells[i].1 = self.cells[i].1.backfill_with(new),
            Err(i) => self.cells.insert(i, (cell, new)),
        }
    }

    /// The fully-bound value of `cell` (`None` if absent or partial).
    #[must_use]
    pub fn get(&self, cell: Cell) -> Option<u64> {
        self.get_masked(cell)
            .and_then(|m| m.is_full().then_some(m.value))
    }

    /// The masked binding of `cell`, if any.
    #[must_use]
    pub fn get_masked(&self, cell: Cell) -> Option<MaskedVal> {
        self.find(cell).ok().map(|i| self.cells[i].1)
    }

    /// Whether `cell` has any bound byte.
    #[must_use]
    pub fn contains(&self, cell: Cell) -> bool {
        self.find(cell).is_ok()
    }

    /// Removes a binding, returning it if present.
    pub fn remove(&mut self, cell: Cell) -> Option<u64> {
        self.find(cell).ok().map(|i| self.cells.remove(i).1.value)
    }

    /// Number of bound cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over fully- and partially-bound cells as
    /// `(cell, masked value)` in cell order.
    pub fn iter_masked(&self) -> impl Iterator<Item = (Cell, MaskedVal)> + '_ {
        self.cells.iter().copied()
    }

    /// Iterates over `(cell, value)` bindings in cell order. Partial
    /// bindings yield their value with unbound bytes as zero.
    pub fn iter(&self) -> impl Iterator<Item = (Cell, u64)> + '_ {
        self.cells.iter().map(|&(c, m)| (c, m.value))
    }

    /// Number of bound *memory* cells (useful for bandwidth accounting).
    #[must_use]
    pub fn mem_cells(&self) -> usize {
        self.cells.iter().filter(|(c, _)| c.is_mem()).count()
    }

    /// Number of bound *register* cells.
    #[must_use]
    pub fn reg_cells(&self) -> usize {
        self.cells.iter().filter(|(c, _)| c.is_reg()).count()
    }

    /// Superimposition `self ← other`: a new delta containing every binding
    /// of `self` overwritten (byte-wise) by every binding of `other`.
    ///
    /// # Examples
    ///
    /// See the [type-level example](Delta).
    #[must_use]
    pub fn superimpose(&self, other: &Delta) -> Delta {
        let mut out = self.clone();
        out.superimpose_in_place(other);
        out
    }

    /// In-place superimposition `self ← other`.
    pub fn superimpose_in_place(&mut self, other: &Delta) {
        for (c, m) in other.iter_masked() {
            self.set_bytes(c, m.value, m.mask);
        }
    }

    /// Consistency `self ⊑ other` between partial states: every bound byte
    /// of `self` is bound identically in `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_machine::{Cell, Delta};
    /// let mut small = Delta::new();
    /// small.set(Cell::Mem(1), 5);
    /// let mut big = small.clone();
    /// big.set(Cell::Mem(2), 6);
    /// assert!(small.consistent_with(&big));
    /// assert!(!big.consistent_with(&small));
    /// ```
    #[must_use]
    pub fn consistent_with(&self, other: &Delta) -> bool {
        self.iter_masked().all(|(c, m)| match other.get_masked(c) {
            Some(o) => (o.mask & m.mask) == m.mask && (o.value & expand_mask(m.mask)) == m.value,
            None => false,
        })
    }

    /// Consistency `self ⊑ S` against a *full* machine state: every bound
    /// byte of `self` equals the corresponding byte `S` holds.
    ///
    /// Because a full state is total (unwritten memory reads as zero),
    /// every cell is considered present in it. This is exactly the check
    /// the verify unit performs on a task's recorded live-ins.
    #[must_use]
    pub fn consistent_with_state(&self, state: &MachineState) -> bool {
        self.iter_masked()
            .all(|(c, m)| state.read_cell(c) & expand_mask(m.mask) == m.value)
    }

    /// The cells whose bound bytes disagree with `state` — the diagnostic
    /// counterpart of [`Delta::consistent_with_state`]. Reports
    /// `(cell, bound value, architected value)` with both masked to the
    /// bound bytes.
    #[must_use]
    pub fn mismatches_against(&self, state: &MachineState) -> Vec<(Cell, u64, u64)> {
        self.mismatches_iter(state).collect()
    }

    /// The first bound cell disagreeing with `state`, or `None` if the
    /// delta is consistent. Unlike [`Delta::mismatches_against`] this
    /// allocates nothing and stops at the first disagreement — it is the
    /// right shape for verify-path squash diagnostics, where only one
    /// offending cell needs naming.
    #[must_use]
    pub fn first_mismatch_against(&self, state: &MachineState) -> Option<(Cell, u64, u64)> {
        self.mismatches_iter(state).next()
    }

    fn mismatches_iter<'a>(
        &'a self,
        state: &'a MachineState,
    ) -> impl Iterator<Item = (Cell, u64, u64)> + 'a {
        self.iter_masked().filter_map(move |(c, m)| {
            let actual = state.read_cell(c) & expand_mask(m.mask);
            (actual != m.value).then_some((c, m.value, actual))
        })
    }

    /// Whether any cell bound in `self` is also bound in `other` — the
    /// commit-path conflict test. Probes the smaller set's sorted keys
    /// into the larger, so the common disjoint case costs
    /// O(min·log max) with no allocation.
    #[must_use]
    pub fn intersects(&self, other: &Delta) -> bool {
        let (probe, index) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        probe.cells.iter().any(|&(c, _)| index.contains(c))
    }

    /// The cells bound in both `self` and `other`, in `self`'s cell
    /// order. Byte masks are deliberately ignored: for conflict detection
    /// a cell-granular answer is conservative and cheap.
    pub fn intersecting_cells<'a>(&'a self, other: &'a Delta) -> impl Iterator<Item = Cell> + 'a {
        self.cells
            .iter()
            .map(|&(c, _)| c)
            .filter(|&c| other.contains(c))
    }
}

impl FromIterator<(Cell, u64)> for Delta {
    fn from_iter<I: IntoIterator<Item = (Cell, u64)>>(iter: I) -> Delta {
        let mut cells: Vec<(Cell, MaskedVal)> = iter
            .into_iter()
            .map(|(c, v)| (c, MaskedVal::full(v)))
            .collect();
        // Stable sort + keep-last dedup reproduces map-insert semantics
        // (the latest binding for a repeated cell wins).
        cells.sort_by_key(|&(c, _)| c);
        cells.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                *earlier = *later;
                true
            } else {
                false
            }
        });
        Delta { cells }
    }
}

impl Extend<(Cell, u64)> for Delta {
    fn extend<I: IntoIterator<Item = (Cell, u64)>>(&mut self, iter: I) {
        for (c, v) in iter {
            self.set(c, v);
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, m)) in self.iter_masked().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if m.is_full() {
                write!(f, "{c}={:#x}", m.value)?;
            } else {
                write!(f, "{c}={:#x}/{:#04x}", m.value, m.mask)?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::Reg;

    fn d(pairs: &[(Cell, u64)]) -> Delta {
        pairs.iter().copied().collect()
    }

    #[test]
    fn superimpose_right_bias() {
        let a = d(&[(Cell::Mem(0), 1), (Cell::Mem(1), 2)]);
        let b = d(&[(Cell::Mem(1), 9), (Cell::Mem(2), 3)]);
        let c = a.superimpose(&b);
        assert_eq!(c.get(Cell::Mem(0)), Some(1));
        assert_eq!(c.get(Cell::Mem(1)), Some(9));
        assert_eq!(c.get(Cell::Mem(2)), Some(3));
    }

    #[test]
    fn superimpose_associativity() {
        // Definition 8, property 1.
        let s1 = d(&[(Cell::Mem(0), 1), (Cell::Reg(Reg::A0), 2)]);
        let s2 = d(&[(Cell::Mem(0), 3), (Cell::Mem(1), 4)]);
        let s3 = d(&[(Cell::Mem(1), 5), (Cell::Pc, 6)]);
        assert_eq!(
            s1.superimpose(&s2).superimpose(&s3),
            s1.superimpose(&s2.superimpose(&s3))
        );
    }

    #[test]
    fn consistency_containment() {
        // Definition 8, property 2: S1 ⊑ S2 implies (S1 ← S3) ⊑ (S2 ← S3).
        let s1 = d(&[(Cell::Mem(0), 1)]);
        let s2 = d(&[(Cell::Mem(0), 1), (Cell::Mem(1), 2)]);
        let s3 = d(&[(Cell::Mem(0), 7), (Cell::Mem(9), 8)]);
        assert!(s1.consistent_with(&s2));
        assert!(s1.superimpose(&s3).consistent_with(&s2.superimpose(&s3)));
    }

    #[test]
    fn superimpose_idempotency() {
        // Definition 8, property 3: S2 ⊑ S1 implies S1 ← S2 = S1.
        let s1 = d(&[(Cell::Mem(0), 1), (Cell::Mem(1), 2), (Cell::Pc, 3)]);
        let s2 = d(&[(Cell::Mem(1), 2), (Cell::Pc, 3)]);
        assert!(s2.consistent_with(&s1));
        assert_eq!(s1.superimpose(&s2), s1);
    }

    #[test]
    fn empty_delta_is_identity() {
        let s = d(&[(Cell::Mem(4), 4)]);
        assert_eq!(s.superimpose(&Delta::new()), s);
        assert_eq!(Delta::new().superimpose(&s), s);
        assert!(Delta::new().consistent_with(&s));
    }

    #[test]
    fn consistency_against_full_state_treats_memory_as_total() {
        let state = MachineState::new();
        // Unwritten memory reads as zero, so a zero binding is consistent...
        assert!(d(&[(Cell::Mem(1000), 0)]).consistent_with_state(&state));
        // ...and a nonzero one is not.
        assert!(!d(&[(Cell::Mem(1000), 1)]).consistent_with_state(&state));
    }

    #[test]
    fn mismatches_reports_cell_and_both_values() {
        let mut state = MachineState::new();
        state.set_reg(Reg::A0, 5);
        let probe = d(&[(Cell::Reg(Reg::A0), 6), (Cell::Reg(Reg::A1), 0)]);
        let mm = probe.mismatches_against(&state);
        assert_eq!(mm, vec![(Cell::Reg(Reg::A0), 6, 5)]);
    }

    #[test]
    fn first_mismatch_matches_full_report() {
        let mut state = MachineState::new();
        state.set_reg(Reg::A0, 5);
        state.store_word(7, 70);
        let probe = d(&[
            (Cell::Reg(Reg::A0), 6),
            (Cell::Reg(Reg::A1), 0),
            (Cell::Mem(7), 71),
        ]);
        let all = probe.mismatches_against(&state);
        assert_eq!(all.len(), 2);
        assert_eq!(probe.first_mismatch_against(&state), Some(all[0]));
        let consistent = d(&[(Cell::Reg(Reg::A1), 0)]);
        assert_eq!(consistent.first_mismatch_against(&state), None);
        assert!(consistent.mismatches_against(&state).is_empty());
    }

    #[test]
    fn intersects_is_cell_granular_and_symmetric() {
        let a = d(&[(Cell::Mem(0), 1), (Cell::Reg(Reg::A0), 2)]);
        let b = d(&[(Cell::Mem(0), 9), (Cell::Mem(5), 3)]);
        let c = d(&[(Cell::Mem(1), 4), (Cell::Pc, 5)]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
        assert!(!a.intersects(&Delta::new()));
        assert!(!Delta::new().intersects(&a));
        // Different byte masks on the same cell still intersect.
        let mut lo = Delta::new();
        lo.set_bytes(Cell::Mem(8), 0x11, 0x01);
        let mut hi = Delta::new();
        hi.set_bytes(Cell::Mem(8), 0x2200, 0x02);
        assert!(lo.intersects(&hi));
    }

    #[test]
    fn intersecting_cells_lists_common_cells_in_order() {
        let a = d(&[(Cell::Mem(0), 1), (Cell::Mem(2), 2), (Cell::Pc, 3)]);
        let b = d(&[(Cell::Mem(2), 9), (Cell::Pc, 8), (Cell::Mem(9), 7)]);
        let common: Vec<Cell> = a.intersecting_cells(&b).collect();
        assert_eq!(common, vec![Cell::Pc, Cell::Mem(2)]);
        assert_eq!(a.intersecting_cells(&Delta::new()).count(), 0);
    }

    #[test]
    fn counts_by_kind() {
        let s = d(&[
            (Cell::Mem(0), 1),
            (Cell::Mem(1), 2),
            (Cell::Reg(Reg::A0), 3),
            (Cell::Pc, 4),
        ]);
        assert_eq!(s.mem_cells(), 2);
        assert_eq!(s.reg_cells(), 1);
        assert_eq!(s.len(), 4);
    }

    // ---- byte-masked behaviour -----------------------------------------

    #[test]
    fn masked_writes_merge_newest_wins() {
        let mut delta = Delta::new();
        delta.set_bytes(Cell::Mem(0), 0x1111_1111_1111_1111, 0x0F);
        delta.set_bytes(Cell::Mem(0), 0x22_0000, 0x04); // overwrite byte 2
        let m = delta.get_masked(Cell::Mem(0)).unwrap();
        assert_eq!(m.mask, 0x0F);
        assert_eq!(m.value, 0x1122_1111); // byte 2 replaced, others kept
    }

    #[test]
    fn record_bytes_is_first_observation_wins() {
        let mut delta = Delta::new();
        delta.record_bytes(Cell::Mem(0), 0xAA, 0x01);
        delta.record_bytes(Cell::Mem(0), 0xBB, 0x01); // ignored: already bound
        delta.record_bytes(Cell::Mem(0), 0xCC00, 0x02); // new byte: recorded
        let m = delta.get_masked(Cell::Mem(0)).unwrap();
        assert_eq!(m.mask, 0x03);
        assert_eq!(m.value, 0xCCAA);
    }

    #[test]
    fn partial_binding_is_not_a_full_get() {
        let mut delta = Delta::new();
        delta.set_bytes(Cell::Mem(0), 0xFF, 0x01);
        assert_eq!(delta.get(Cell::Mem(0)), None);
        assert!(delta.contains(Cell::Mem(0)));
        delta.set_bytes(Cell::Mem(0), u64::MAX, 0xFE);
        assert!(delta.get(Cell::Mem(0)).is_some());
    }

    #[test]
    fn masked_consistency_ignores_unbound_bytes() {
        let mut state = MachineState::new();
        state.store_word(0, 0xDEAD_BEEF_0000_0011);
        let mut probe = Delta::new();
        probe.set_bytes(Cell::Mem(0), 0x11, 0x01); // matches byte 0 only
        assert!(probe.consistent_with_state(&state));
        probe.set_bytes(Cell::Mem(0), 0x9900, 0x02); // byte 1 differs (0x00)
        assert!(!probe.consistent_with_state(&state));
    }

    #[test]
    fn masked_superimpose_onto_state_via_apply() {
        let mut state = MachineState::new();
        state.store_word(3, 0x8877_6655_4433_2211);
        let mut delta = Delta::new();
        delta.set_bytes(Cell::Mem(3), 0xAA00, 0x02); // replace byte 1
        state.apply(&delta);
        assert_eq!(state.load_word(3), 0x8877_6655_4433_AA11);
    }

    #[test]
    fn expand_mask_examples() {
        assert_eq!(expand_mask(0x00), 0);
        assert_eq!(expand_mask(0x01), 0xFF);
        assert_eq!(expand_mask(0x80), 0xFF00_0000_0000_0000);
        assert_eq!(expand_mask(0xFF), u64::MAX);
    }

    #[test]
    fn masked_consistency_between_deltas() {
        let mut small = Delta::new();
        small.set_bytes(Cell::Mem(0), 0x34, 0x01);
        let mut big = Delta::new();
        big.set_bytes(Cell::Mem(0), 0x1234, 0x03);
        assert!(small.consistent_with(&big));
        assert!(!big.consistent_with(&small)); // byte 1 unbound in small
    }
}
