//! The instruction interpreter — one `next(S)` step of the formal model.
//!
//! [`step`] executes a single instruction against any [`Storage`], so the
//! same semantics drive the sequential reference machine, MSSP slaves
//! (through a layered, live-in-recording storage) and the master
//! (executing the distilled program over its private state). Determinism
//! of this function is the property the formal model calls *determinism of
//! `δ`*: consistent, complete states stepped once produce identical writes.

use std::fmt;

use mssp_isa::{Instr, Program, INSTR_BYTES};

use crate::Storage;

/// An execution fault.
///
/// The sequential machine never faults on well-formed programs; MSSP
/// slaves, executing from *predicted* state, can be steered to an illegal
/// PC — the engine treats that as a failed task, never as an error of the
/// whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The PC does not address an instruction in the text segment.
    IllegalPc(u64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IllegalPc(pc) => write!(f, "illegal program counter {pc:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// A memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Everything observable about one executed instruction.
///
/// Consumers: the profiler (edge counts from `pc` → `next_pc`), the timing
/// model (memory addresses, branch outcomes), and the MSSP engine (halts,
/// control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Address of the executed instruction.
    pub pc: u64,
    /// The executed instruction.
    pub instr: Instr,
    /// Address of the next instruction (equals `pc` when halted).
    pub next_pc: u64,
    /// Whether the instruction was `halt`.
    pub halted: bool,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
    /// For loads and stores, the access performed.
    pub mem: Option<MemAccess>,
}

/// Executes the instruction at `pc` against `storage`.
///
/// # Errors
///
/// Returns [`Fault::IllegalPc`] if `pc` does not address an instruction of
/// `program` (out of range or misaligned).
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_machine::{step, MachineState};
///
/// let p = assemble("main: addi a0, zero, 3\n halt").unwrap();
/// let mut s = MachineState::boot(&p);
/// let info = step(&mut s, &p, p.entry()).unwrap();
/// assert_eq!(info.next_pc, p.entry() + 4);
/// ```
pub fn step<S: Storage>(storage: &mut S, program: &Program, pc: u64) -> Result<StepInfo, Fault> {
    use Instr::*;

    let instr = program.fetch(pc).ok_or(Fault::IllegalPc(pc))?;
    let fall = pc.wrapping_add(INSTR_BYTES);
    let mut next_pc = fall;
    let mut taken = None;
    let mut mem = None;
    let mut halted = false;

    // Helpers defined as closures so they can borrow `storage` serially.
    macro_rules! alu {
        ($rd:expr, $a:expr, $b:expr, $f:expr) => {{
            let x = storage.read_reg($a);
            let y = storage.read_reg($b);
            let v = $f(x, y);
            storage.write_reg($rd, v);
        }};
    }
    macro_rules! alu_imm {
        ($rd:expr, $a:expr, $imm:expr, $f:expr) => {{
            let x = storage.read_reg($a);
            let v = $f(x, $imm);
            storage.write_reg($rd, v);
        }};
    }
    macro_rules! load {
        ($rd:expr, $base:expr, $off:expr, $len:expr, $signed:expr) => {{
            let addr = storage.read_reg($base).wrapping_add($off as i64 as u64);
            let raw = storage.load_bytes(addr, $len);
            let v = if $signed { sign_extend(raw, $len) } else { raw };
            storage.write_reg($rd, v);
            mem = Some(MemAccess {
                addr,
                bytes: $len,
                is_store: false,
            });
        }};
    }
    macro_rules! store {
        ($src:expr, $base:expr, $off:expr, $len:expr) => {{
            let addr = storage.read_reg($base).wrapping_add($off as i64 as u64);
            let v = storage.read_reg($src);
            storage.store_bytes(addr, $len, v);
            mem = Some(MemAccess {
                addr,
                bytes: $len,
                is_store: true,
            });
        }};
    }
    macro_rules! branch {
        ($a:expr, $b:expr, $off:expr, $cmp:expr) => {{
            let x = storage.read_reg($a);
            let y = storage.read_reg($b);
            let t = $cmp(x, y);
            taken = Some(t);
            if t {
                next_pc = fall.wrapping_add($off as i64 as u64);
            }
        }};
    }

    match instr {
        Add(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x.wrapping_add(y)),
        Sub(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x.wrapping_sub(y)),
        And(rd, a, b) => alu!(rd, a, b, |x, y| x & y),
        Or(rd, a, b) => alu!(rd, a, b, |x, y| x | y),
        Xor(rd, a, b) => alu!(rd, a, b, |x, y| x ^ y),
        Sll(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x.wrapping_shl((y & 63) as u32)),
        Srl(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x.wrapping_shr((y & 63) as u32)),
        Sra(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| {
            ((x as i64).wrapping_shr((y & 63) as u32)) as u64
        }),
        Slt(rd, a, b) => alu!(rd, a, b, |x, y| ((x as i64) < (y as i64)) as u64),
        Sltu(rd, a, b) => alu!(rd, a, b, |x, y| (x < y) as u64),
        Mul(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x.wrapping_mul(y)),
        Div(rd, a, b) => alu!(rd, a, b, |x, y| signed_div(x as i64, y as i64) as u64),
        Divu(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| x
            .checked_div(y)
            .unwrap_or(u64::MAX)),
        Rem(rd, a, b) => alu!(rd, a, b, |x, y| signed_rem(x as i64, y as i64) as u64),
        Remu(rd, a, b) => alu!(rd, a, b, |x: u64, y: u64| if y == 0 { x } else { x % y }),

        Addi(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| x.wrapping_add(i as i64 as u64)),
        // Logical immediates zero-extend (MIPS-style; see mssp-isa docs).
        Andi(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| x & (i as u16 as u64)),
        Ori(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| x | (i as u16 as u64)),
        Xori(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| x ^ (i as u16 as u64)),
        Slti(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| {
            ((x as i64) < i as i64) as u64
        }),
        Sltiu(rd, a, i) => alu_imm!(rd, a, i, |x: u64, i: i16| {
            (x < (i as i64 as u64)) as u64
        }),
        Slli(rd, a, s) => alu_imm!(rd, a, s, |x: u64, s: u8| x.wrapping_shl(s as u32)),
        Srli(rd, a, s) => alu_imm!(rd, a, s, |x: u64, s: u8| x.wrapping_shr(s as u32)),
        Srai(rd, a, s) => alu_imm!(rd, a, s, |x: u64, s: u8| {
            ((x as i64).wrapping_shr(s as u32)) as u64
        }),
        Lui(rd, i) => storage.write_reg(rd, ((i as i64) << 16) as u64),

        Lb(rd, b, o) => load!(rd, b, o, 1, true),
        Lbu(rd, b, o) => load!(rd, b, o, 1, false),
        Lh(rd, b, o) => load!(rd, b, o, 2, true),
        Lhu(rd, b, o) => load!(rd, b, o, 2, false),
        Lw(rd, b, o) => load!(rd, b, o, 4, true),
        Lwu(rd, b, o) => load!(rd, b, o, 4, false),
        Ld(rd, b, o) => load!(rd, b, o, 8, false),
        Sb(s, b, o) => store!(s, b, o, 1),
        Sh(s, b, o) => store!(s, b, o, 2),
        Sw(s, b, o) => store!(s, b, o, 4),
        Sd(s, b, o) => store!(s, b, o, 8),

        Beq(a, b, o) => branch!(a, b, o, |x, y| x == y),
        Bne(a, b, o) => branch!(a, b, o, |x, y| x != y),
        Blt(a, b, o) => branch!(a, b, o, |x, y| (x as i64) < (y as i64)),
        Bge(a, b, o) => branch!(a, b, o, |x, y| (x as i64) >= (y as i64)),
        Bltu(a, b, o) => branch!(a, b, o, |x: u64, y: u64| x < y),
        Bgeu(a, b, o) => branch!(a, b, o, |x: u64, y: u64| x >= y),
        Jal(rd, o) => {
            storage.write_reg(rd, fall);
            next_pc = fall.wrapping_add(o as i64 as u64);
        }
        Jalr(rd, base, o) => {
            let target = storage.read_reg(base).wrapping_add(o as i64 as u64);
            storage.write_reg(rd, fall);
            next_pc = target;
        }
        Halt => {
            halted = true;
            next_pc = pc;
        }
    }

    Ok(StepInfo {
        pc,
        instr,
        next_pc,
        halted,
        taken,
        mem,
    })
}

fn sign_extend(v: u64, bytes: u8) -> u64 {
    let bits = bytes as u32 * 8;
    if bits >= 64 {
        v
    } else {
        let shift = 64 - bits;
        (((v << shift) as i64) >> shift) as u64
    }
}

fn signed_div(x: i64, y: i64) -> i64 {
    if y == 0 {
        -1
    } else if x == i64::MIN && y == -1 {
        i64::MIN
    } else {
        x / y
    }
}

fn signed_rem(x: i64, y: i64) -> i64 {
    if y == 0 {
        x
    } else if x == i64::MIN && y == -1 {
        0
    } else {
        x % y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineState;
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;

    fn run_asm(src: &str) -> MachineState {
        let p = assemble(src).unwrap();
        let mut m = crate::SeqMachine::boot(&p);
        m.run_to_halt(100_000).expect("fixture halts cleanly");
        m.into_state()
    }

    #[test]
    fn arithmetic_basics() {
        let s = run_asm(
            "main:
                addi a0, zero, 7
                addi a1, zero, -3
                add  a2, a0, a1     ; 4
                sub  a3, a0, a1     ; 10
                mul  a4, a0, a1     ; -21
                halt",
        );
        assert_eq!(s.reg(Reg::A2), 4);
        assert_eq!(s.reg(Reg::A3), 10);
        assert_eq!(s.reg(Reg::A4) as i64, -21);
    }

    #[test]
    fn division_special_cases() {
        let s = run_asm(
            "main:
                addi a0, zero, 10
                addi a1, zero, 0
                div  a2, a0, a1     ; -1
                rem  a3, a0, a1     ; 10
                divu a4, a0, a1     ; u64::MAX
                remu a5, a0, a1     ; 10
                halt",
        );
        assert_eq!(s.reg(Reg::A2) as i64, -1);
        assert_eq!(s.reg(Reg::A3), 10);
        assert_eq!(s.reg(Reg::A4), u64::MAX);
        assert_eq!(s.reg(Reg::A5), 10);
    }

    #[test]
    fn shifts_and_logicals() {
        let s = run_asm(
            "main:
                addi a0, zero, 1
                slli a1, a0, 40
                srli a2, a1, 8
                addi a3, zero, -1
                srai a4, a3, 63     ; still -1
                andi a5, a3, 0xFF   ; zero-extended mask
                halt",
        );
        assert_eq!(s.reg(Reg::A1), 1 << 40);
        assert_eq!(s.reg(Reg::A2), 1 << 32);
        assert_eq!(s.reg(Reg::A4) as i64, -1);
        assert_eq!(s.reg(Reg::A5), 0xFF);
    }

    #[test]
    fn loads_sign_extend_correctly() {
        let s = run_asm(
            ".data
             v: .byte 0xFF
             .align 8
             w: .word 0x80000000
             .text
             main:
                la  a0, v
                lb  a1, 0(a0)       ; -1
                lbu a2, 0(a0)       ; 255
                la  a0, w
                lw  a3, 0(a0)       ; sign-extended
                lwu a4, 0(a0)       ; zero-extended
                halt",
        );
        assert_eq!(s.reg(Reg::A1) as i64, -1);
        assert_eq!(s.reg(Reg::A2), 255);
        assert_eq!(s.reg(Reg::A3), 0xFFFF_FFFF_8000_0000);
        assert_eq!(s.reg(Reg::A4), 0x8000_0000);
    }

    #[test]
    fn store_then_load_round_trips_all_widths() {
        let s = run_asm(
            "main:
                li  a0, 0x200000
                li  a1, 0x1122334455667788
                sd  a1, 0(a0)
                ld  a2, 0(a0)
                sw  a1, 16(a0)
                lwu a3, 16(a0)
                sh  a1, 32(a0)
                lhu a4, 32(a0)
                sb  a1, 48(a0)
                lbu a5, 48(a0)
                halt",
        );
        assert_eq!(s.reg(Reg::A2), 0x1122_3344_5566_7788);
        assert_eq!(s.reg(Reg::A3), 0x5566_7788);
        assert_eq!(s.reg(Reg::A4), 0x7788);
        assert_eq!(s.reg(Reg::A5), 0x88);
    }

    #[test]
    fn call_and_return() {
        let s = run_asm(
            "main:
                addi a0, zero, 5
                call double
                halt
             double:
                add a0, a0, a0
                ret",
        );
        assert_eq!(s.reg(Reg::A0), 10);
    }

    #[test]
    fn branches_take_correct_paths() {
        let s = run_asm(
            "main:
                addi a0, zero, -5
                addi a1, zero, 5
                blt  a0, a1, signed_ok
                addi a7, zero, 1    ; should be skipped
             signed_ok:
                bltu a0, a1, bad    ; -5 as unsigned is huge: not taken
                addi a6, zero, 1
             bad:
                halt",
        );
        assert_eq!(s.reg(Reg::A7), 0);
        assert_eq!(s.reg(Reg::A6), 1);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let s = run_asm(
            "main:
                addi a0, zero, 10
                addi a1, zero, 0
             loop:
                add  a1, a1, a0
                addi a0, a0, -1
                bnez a0, loop
                halt",
        );
        assert_eq!(s.reg(Reg::A1), 55);
    }

    #[test]
    fn illegal_pc_faults() {
        let p = assemble("main: halt").unwrap();
        let mut s = MachineState::boot(&p);
        assert_eq!(step(&mut s, &p, 0), Err(Fault::IllegalPc(0)));
        assert_eq!(
            step(&mut s, &p, p.entry() + 2),
            Err(Fault::IllegalPc(p.entry() + 2))
        );
    }

    #[test]
    fn halt_reports_halted_and_stays() {
        let p = assemble("main: halt").unwrap();
        let mut s = MachineState::boot(&p);
        let info = step(&mut s, &p, p.entry()).unwrap();
        assert!(info.halted);
        assert_eq!(info.next_pc, p.entry());
    }

    #[test]
    fn mem_access_reported() {
        let p = assemble("main: sd a0, 8(sp)\n halt").unwrap();
        let mut s = MachineState::boot(&p);
        let info = step(&mut s, &p, p.entry()).unwrap();
        let m = info.mem.unwrap();
        assert!(m.is_store);
        assert_eq!(m.bytes, 8);
        assert_eq!(m.addr, s.reg(Reg::SP) + 8);
    }

    #[test]
    fn branch_outcome_reported() {
        let p = assemble("main: beq zero, zero, main\n halt").unwrap();
        let mut s = MachineState::boot(&p);
        let info = step(&mut s, &p, p.entry()).unwrap();
        assert_eq!(info.taken, Some(true));
        assert_eq!(info.next_pc, p.entry());
    }
}
