//! A recycling pool for [`Delta`] buffers.
//!
//! The threaded MSSP executor creates and discards a `Delta` for every
//! task it dispatches (the committed-state view), every task a worker
//! runs (live-ins, writes), and every commit it logs. With a naive
//! allocate-per-task scheme those maps dominate the hot path's heap
//! traffic. [`DeltaArena`] turns that traffic into pointer swaps: a
//! bounded free list of cleared-but-capacitated `Delta`s that callers
//! [`take`](DeltaArena::take) from and [`put`](DeltaArena::put) back.
//!
//! # Lifetime and recycling invariants
//!
//! * A `Delta` handed out by [`take`](DeltaArena::take) is always
//!   empty (`is_empty()`), but retains whatever backing capacity it
//!   accumulated in previous lives — after warm-up, steady-state
//!   `take`/fill/`put` cycles perform **zero heap allocations**.
//! * [`put`](DeltaArena::put) clears the buffer immediately, so the
//!   pool never holds stale bindings and dropping the arena drops only
//!   empty vectors.
//! * The pool is bounded ([`DeltaArena::with_limit`]); `put` beyond the
//!   limit simply drops the buffer. This caps worst-case memory at
//!   `limit × max observed delta size` even under bursty speculation.
//! * The arena is deliberately **not** thread-safe: each thread owns
//!   its own arena and buffers migrate between threads *inside* the
//!   messages that carry them (a take on thread A, a put on thread B is
//!   fine — the buffer just joins B's pool). No locks, no atomics.

use crate::delta::Delta;

/// Default bound on the number of pooled buffers.
const DEFAULT_LIMIT: usize = 256;

/// A bounded free list of reusable [`Delta`] buffers.
///
/// ```
/// use mssp_machine::{Cell, DeltaArena};
/// use mssp_isa::Reg;
///
/// let mut arena = DeltaArena::new();
/// let mut d = arena.take();
/// d.set(Cell::Reg(Reg::A0), 7);
/// arena.put(d);
///
/// // The recycled buffer comes back empty but keeps its capacity.
/// let d = arena.take();
/// assert!(d.is_empty());
/// assert_eq!(arena.recycled(), 1);
/// ```
#[derive(Debug)]
pub struct DeltaArena {
    free: Vec<Delta>,
    limit: usize,
    /// Buffers handed out that came from the pool (vs freshly made).
    recycled: u64,
    /// Buffers handed out that had to be freshly allocated.
    fresh: u64,
}

impl Default for DeltaArena {
    fn default() -> Self {
        DeltaArena::new()
    }
}

impl DeltaArena {
    /// An empty arena with the default pool bound.
    #[must_use]
    pub fn new() -> DeltaArena {
        DeltaArena::with_limit(DEFAULT_LIMIT)
    }

    /// An empty arena keeping at most `limit` buffers pooled.
    #[must_use]
    pub fn with_limit(limit: usize) -> DeltaArena {
        DeltaArena {
            free: Vec::new(),
            limit,
            recycled: 0,
            fresh: 0,
        }
    }

    /// Take an empty `Delta`, reusing a pooled buffer when one exists.
    #[must_use]
    pub fn take(&mut self) -> Delta {
        match self.free.pop() {
            Some(d) => {
                debug_assert!(d.is_empty(), "pooled deltas are cleared on put");
                self.recycled += 1;
                d
            }
            None => {
                self.fresh += 1;
                Delta::default()
            }
        }
    }

    /// Return a buffer to the pool. Clears it; drops it if the pool is
    /// at its bound.
    pub fn put(&mut self, mut d: Delta) {
        d.clear();
        if self.free.len() < self.limit {
            self.free.push(d);
        }
    }

    /// Buffers currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// How many `take`s were satisfied from the pool.
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// How many `take`s had to allocate a fresh buffer.
    #[must_use]
    pub fn fresh(&self) -> u64 {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use mssp_isa::Reg;

    #[test]
    fn take_put_recycles_capacity() {
        let mut arena = DeltaArena::new();
        let mut d = arena.take();
        assert_eq!(arena.fresh(), 1);
        for i in 0..64 {
            d.set(Cell::Mem(i), i);
        }
        arena.put(d);
        assert_eq!(arena.pooled(), 1);

        let d = arena.take();
        assert!(d.is_empty(), "recycled buffers come back cleared");
        assert_eq!(arena.recycled(), 1);
        assert_eq!(arena.fresh(), 1, "no second allocation");
    }

    #[test]
    fn pool_bound_is_respected() {
        let mut arena = DeltaArena::with_limit(2);
        let (a, b, c) = (arena.take(), arena.take(), arena.take());
        arena.put(a);
        arena.put(b);
        arena.put(c);
        assert_eq!(arena.pooled(), 2, "third put drops past the bound");
    }

    #[test]
    fn put_clears_before_pooling() {
        let mut arena = DeltaArena::new();
        let mut d = arena.take();
        d.set(Cell::Reg(Reg::A0), 42);
        d.set(Cell::Pc, 8);
        arena.put(d);
        let d = arena.take();
        assert!(d.is_empty());
        assert_eq!(d.get(Cell::Reg(Reg::A0)), None);
    }

    #[test]
    fn cross_arena_migration_is_fine() {
        // A buffer taken from one arena may be put into another — the
        // executor does exactly this when deltas ride messages between
        // the coordinator and workers.
        let mut a = DeltaArena::new();
        let mut b = DeltaArena::new();
        let d = a.take();
        b.put(d);
        assert_eq!(a.pooled(), 0);
        assert_eq!(b.pooled(), 1);
    }
}
