//! Straight-line slice evaluation.
//!
//! Pre-computation slices (see `mssp-distill`) are tiny straight-line
//! programs the master evaluates against its checkpoint view at spawn
//! time: spawn guards end in the guarded branch (the caller wants its
//! outcome), live-in slices end in `halt` (the caller wants a register).
//! This evaluator runs such a program from a seeded register file; loads
//! read through the caller-supplied `load` view (the master's
//! spawn-time memory), stores are discarded — the `slice-unsound` lint
//! only admits slices whose reads are spawn-available. A slice that
//! nevertheless faults or fails to terminate inside the step budget
//! simply yields `None`; slice results only ever steer performance, so
//! "no answer" is always an acceptable answer.

use mssp_isa::{Program, Reg, NUM_REGS};

use crate::exec::step;
use crate::Storage;

/// Result of evaluating one slice program to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceEval {
    /// Outcome of the final executed instruction when it was a
    /// conditional branch (spawn guards), `None` when the program ran to
    /// `halt` (live-in slices).
    pub taken: Option<bool>,
    regs: [u64; NUM_REGS],
}

impl SliceEval {
    /// The final value of `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }
}

/// A register file over a read-only memory view; stores are discarded.
struct SliceStorage<F> {
    regs: [u64; NUM_REGS],
    load: F,
}

impl<F: FnMut(u64) -> u64> Storage for SliceStorage<F> {
    fn read_reg(&mut self, r: Reg) -> u64 {
        self.regs[r.index()]
    }
    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }
    fn load_word(&mut self, widx: u64) -> u64 {
        (self.load)(widx)
    }
    fn store_word(&mut self, _widx: u64, _value: u64) {}
}

/// Evaluates a slice program from its entry with the given register
/// seeds, stopping at `halt` or at the first conditional branch
/// (inclusive — its outcome is reported, its target never followed).
/// `load` answers word-indexed memory reads; pass `|_| 0` for slices
/// known to be register-only.
///
/// Returns `None` if the program faults or exceeds `max_steps`.
#[must_use]
pub fn eval_slice(
    program: &Program,
    inputs: &[(Reg, u64)],
    max_steps: u64,
    load: impl FnMut(u64) -> u64,
) -> Option<SliceEval> {
    let mut storage = SliceStorage {
        regs: [0; NUM_REGS],
        load,
    };
    for &(r, v) in inputs {
        storage.write_reg(r, v);
    }
    let mut pc = program.entry();
    for _ in 0..max_steps {
        let info = step(&mut storage, program, pc).ok()?;
        if info.halted || info.taken.is_some() {
            return Some(SliceEval {
                taken: info.taken,
                regs: storage.regs,
            });
        }
        pc = info.next_pc;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::Instr;

    #[test]
    fn guard_slice_reports_branch_outcome() {
        // addi t0, t0, 1; blt t0, s4, ...
        let p = Program::from_instrs(vec![
            Instr::Addi(Reg::T0, Reg::T0, 1),
            Instr::Blt(Reg::T0, Reg::S4, -4),
        ]);
        let taken = eval_slice(&p, &[(Reg::T0, 5), (Reg::S4, 10)], 8, |_| 0)
            .unwrap()
            .taken;
        assert_eq!(taken, Some(true));
        let taken = eval_slice(&p, &[(Reg::T0, 9), (Reg::S4, 10)], 8, |_| 0)
            .unwrap()
            .taken;
        assert_eq!(taken, Some(false));
    }

    #[test]
    fn live_in_slice_runs_to_halt_and_exposes_registers() {
        let p = Program::from_instrs(vec![Instr::Add(Reg::A0, Reg::T0, Reg::T1), Instr::Halt]);
        let eval = eval_slice(&p, &[(Reg::T0, 40), (Reg::T1, 2)], 8, |_| 0).unwrap();
        assert_eq!(eval.taken, None);
        assert_eq!(eval.reg(Reg::A0), 42);
    }

    #[test]
    fn loads_read_through_the_supplied_view() {
        // ld t0, 0(t0); bne t0, zero — one step of a pointer chase.
        let p = Program::from_instrs(vec![
            Instr::Ld(Reg::T0, Reg::T0, 0),
            Instr::Bne(Reg::T0, Reg::ZERO, -4),
        ]);
        let eval = eval_slice(
            &p,
            &[(Reg::T0, 64)],
            8,
            |widx| {
                if widx == 8 {
                    128
                } else {
                    0
                }
            },
        )
        .unwrap();
        assert_eq!(eval.reg(Reg::T0), 128);
        assert_eq!(eval.taken, Some(true));
        // A chain that ends: the load answers zero.
        let eval = eval_slice(&p, &[(Reg::T0, 24)], 8, |_| 0).unwrap();
        assert_eq!(eval.taken, Some(false));
    }

    #[test]
    fn budget_exhaustion_and_faults_yield_none() {
        let p = Program::from_instrs(vec![
            Instr::Addi(Reg::T0, Reg::T0, 1),
            Instr::Addi(Reg::T1, Reg::T1, 1),
            Instr::Halt,
        ]);
        assert!(eval_slice(&p, &[], 2, |_| 0).is_none());
        assert!(eval_slice(&p, &[], 3, |_| 0).is_some());
    }
}
