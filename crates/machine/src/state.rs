//! Full machine state and the [`Storage`] abstraction the interpreter
//! executes against.

use mssp_isa::{Reg, NUM_REGS, STACK_TOP};

use crate::{Cell, Delta, SparseMem};

/// A complete architectural machine state: 32 registers, the PC, and
/// sparse memory.
///
/// This is the paper's architected state — the "pristine" state held in the
/// shared L2 in a real MSSP machine. It is *total*: every cell has a value
/// (unwritten memory reads as zero).
///
/// # Examples
///
/// ```
/// use mssp_machine::MachineState;
/// use mssp_isa::Reg;
///
/// let mut s = MachineState::new();
/// s.set_reg(Reg::A0, 42);
/// assert_eq!(s.reg(Reg::A0), 42);
/// assert_eq!(s.reg(Reg::ZERO), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineState {
    regs: [u64; NUM_REGS],
    pc: u64,
    mem: SparseMem,
}

impl MachineState {
    /// Creates an all-zero machine state.
    #[must_use]
    pub fn new() -> MachineState {
        MachineState::default()
    }

    /// Creates the boot state for a program: data segment loaded, PC at the
    /// entry point, stack pointer at [`STACK_TOP`], all other cells zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_isa::asm::assemble;
    /// use mssp_machine::MachineState;
    ///
    /// let p = assemble(".data\nv: .dword 7\n.text\nmain: halt").unwrap();
    /// let s = MachineState::boot(&p);
    /// assert_eq!(s.pc(), p.entry());
    /// assert_eq!(s.load_word(p.symbol("v").unwrap() >> 3), 7);
    /// ```
    #[must_use]
    pub fn boot(program: &mssp_isa::Program) -> MachineState {
        let mut s = MachineState::new();
        s.mem.write_image(program.data_base(), program.data());
        s.set_reg(Reg::SP, STACK_TOP);
        s.set_pc(program.entry());
        s
    }

    /// Reads a register (the zero register always reads zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to the zero register are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Loads the 64-bit word at word index `widx`.
    #[must_use]
    pub fn load_word(&self, widx: u64) -> u64 {
        self.mem.load(widx)
    }

    /// Stores a 64-bit word at word index `widx`.
    pub fn store_word(&mut self, widx: u64, value: u64) {
        self.mem.store(widx, value);
    }

    /// Read access to the underlying sparse memory.
    #[must_use]
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Reads any cell uniformly.
    #[must_use]
    pub fn read_cell(&self, cell: Cell) -> u64 {
        match cell {
            Cell::Reg(r) => self.reg(r),
            Cell::Pc => self.pc,
            Cell::Mem(w) => self.mem.load(w),
        }
    }

    /// Writes any cell uniformly.
    pub fn write_cell(&mut self, cell: Cell, value: u64) {
        match cell {
            Cell::Reg(r) => self.set_reg(r, value),
            Cell::Pc => self.pc = value,
            Cell::Mem(w) => self.mem.store(w, value),
        }
    }

    /// Superimposes a partial state onto this state (`self ← delta`) —
    /// the commit operation of MSSP.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_machine::{Cell, Delta, MachineState};
    ///
    /// let mut s = MachineState::new();
    /// let mut d = Delta::new();
    /// d.set(Cell::Mem(3), 99);
    /// s.apply(&d);
    /// assert_eq!(s.load_word(3), 99);
    /// ```
    pub fn apply(&mut self, delta: &Delta) {
        for (c, m) in delta.iter_masked() {
            if m.is_full() {
                self.write_cell(c, m.value);
            } else {
                let em = crate::expand_mask(m.mask);
                let old = self.read_cell(c);
                self.write_cell(c, (old & !em) | m.value);
            }
        }
    }

    /// Applies a run of deltas as **one** superimposition:
    /// `self ← d₁ ← d₂ ← …` collapses to `self ← (d₁ ← d₂ ← …)` by the
    /// associativity of superimposition (Definition 8), so a burst of
    /// consecutive clean commits touches each affected cell once instead
    /// of once per commit. A single delta is applied directly with no
    /// intermediate merge.
    pub fn apply_batch<'a>(&mut self, deltas: impl IntoIterator<Item = &'a Delta>) {
        let mut it = deltas.into_iter();
        let Some(first) = it.next() else { return };
        let Some(second) = it.next() else {
            self.apply(first);
            return;
        };
        let mut merged = first.superimpose(second);
        for d in it {
            merged.superimpose_in_place(d);
        }
        self.apply(&merged);
    }

    /// Captures the current values of the cells bound in `cells` — the
    /// projection of this state onto a cell set.
    #[must_use]
    pub fn project(&self, cells: impl IntoIterator<Item = Cell>) -> Delta {
        cells.into_iter().map(|c| (c, self.read_cell(c))).collect()
    }
}

/// The storage interface the interpreter executes against.
///
/// The sequential machine implements it directly over [`MachineState`];
/// the MSSP engine implements it with a layered view (task-local writes →
/// master checkpoint → architected state) that records live-ins as a side
/// effect. Read methods take `&mut self` precisely so implementations can
/// record what was read.
///
/// Byte-granular accesses are provided methods built on the word-granular
/// primitives, so every implementation inherits identical sub-word and
/// unaligned semantics (little-endian, read-modify-write of containing
/// words).
pub trait Storage {
    /// Reads a register. Must return 0 for [`Reg::ZERO`].
    fn read_reg(&mut self, r: Reg) -> u64;
    /// Writes a register. Must discard writes to [`Reg::ZERO`].
    fn write_reg(&mut self, r: Reg, value: u64);
    /// Reads the 64-bit word at word index `widx`.
    fn load_word(&mut self, widx: u64) -> u64;
    /// Writes the 64-bit word at word index `widx`.
    fn store_word(&mut self, widx: u64, value: u64);

    /// Reads the word at `widx` needing only the bytes in `mask`.
    ///
    /// The default reads the whole word; live-in-recording storages
    /// override this so a one-byte load records a one-byte live-in instead
    /// of a false whole-word dependency.
    fn load_word_masked(&mut self, widx: u64, mask: u8) -> u64 {
        let _ = mask;
        self.load_word(widx)
    }

    /// Writes the bytes of `value` selected by `mask` into the word at
    /// `widx`, leaving other bytes untouched.
    ///
    /// The default performs read-modify-write; buffering storages override
    /// it to record a byte-masked write without reading (avoiding a false
    /// dependency on the untouched bytes).
    fn store_word_masked(&mut self, widx: u64, value: u64, mask: u8) {
        if mask == 0xFF {
            self.store_word(widx, value);
        } else {
            let em = crate::expand_mask(mask);
            let old = self.load_word(widx);
            self.store_word(widx, (old & !em) | (value & em));
        }
    }

    /// Loads `len ∈ {1,2,4,8}` bytes at byte address `addr`, little-endian,
    /// zero-extended into a `u64`.
    fn load_bytes(&mut self, addr: u64, len: u8) -> u64 {
        let mut out = 0u64;
        let mut done = 0u64; // bytes gathered so far
        while done < len as u64 {
            let a = addr.wrapping_add(done);
            let widx = a >> 3;
            let first = a & 7; // first byte within this word
            let take = (8 - first).min(len as u64 - done);
            let mask = (((1u16 << take) - 1) as u8) << first;
            let word = self.load_word_masked(widx, mask);
            let chunk = (word >> (first * 8)) & ones(take);
            out |= chunk << (done * 8);
            done += take;
        }
        out
    }

    /// Stores the low `len ∈ {1,2,4,8}` bytes of `value` at byte address
    /// `addr`, little-endian.
    fn store_bytes(&mut self, addr: u64, len: u8, value: u64) {
        let mut done = 0u64;
        while done < len as u64 {
            let a = addr.wrapping_add(done);
            let widx = a >> 3;
            let first = a & 7;
            let take = (8 - first).min(len as u64 - done);
            let mask = (((1u16 << take) - 1) as u8) << first;
            let chunk = ((value >> (done * 8)) & ones(take)) << (first * 8);
            self.store_word_masked(widx, chunk, mask);
            done += take;
        }
    }
}

/// A value with the low `n` bytes set.
fn ones(n: u64) -> u64 {
    if n >= 8 {
        u64::MAX
    } else {
        (1u64 << (n * 8)) - 1
    }
}

impl Storage for MachineState {
    fn read_reg(&mut self, r: Reg) -> u64 {
        self.reg(r)
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        self.set_reg(r, value);
    }

    fn load_word(&mut self, widx: u64) -> u64 {
        self.mem.load(widx)
    }

    fn store_word(&mut self, widx: u64, value: u64) {
        self.mem.store(widx, value);
    }
}

/// A [`Storage`] adaptor that records every write into a [`Delta`] while
/// forwarding to an inner storage.
///
/// Wrapping the sequential machine in a `Recording` storage computes the
/// paper's cumulative-writes function `Δ(S, n)` — used by the formal-model
/// tests to check Lemma 3 (`seq(S, n) = S ← Δ(S, n)`).
#[derive(Debug)]
pub struct Recording<'a, S> {
    inner: &'a mut S,
    writes: Delta,
}

impl<'a, S: Storage> Recording<'a, S> {
    /// Wraps `inner`, starting with an empty write set.
    pub fn new(inner: &'a mut S) -> Recording<'a, S> {
        Recording {
            inner,
            writes: Delta::new(),
        }
    }

    /// The writes recorded so far (the cumulative `Δ`).
    #[must_use]
    pub fn writes(&self) -> &Delta {
        &self.writes
    }

    /// Consumes the adaptor, returning the recorded writes.
    #[must_use]
    pub fn into_writes(self) -> Delta {
        self.writes
    }
}

impl<S: Storage> Storage for Recording<'_, S> {
    fn read_reg(&mut self, r: Reg) -> u64 {
        self.inner.read_reg(r)
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.writes.set(Cell::Reg(r), value);
        }
        self.inner.write_reg(r, value);
    }

    fn load_word(&mut self, widx: u64) -> u64 {
        self.inner.load_word(widx)
    }

    fn store_word(&mut self, widx: u64, value: u64) {
        self.writes.set(Cell::Mem(widx), value);
        self.inner.store_word(widx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut s = MachineState::new();
        s.set_reg(Reg::ZERO, 77);
        assert_eq!(s.reg(Reg::ZERO), 0);
        Storage::write_reg(&mut s, Reg::ZERO, 77);
        assert_eq!(s.reg(Reg::ZERO), 0);
    }

    #[test]
    fn cell_read_write_round_trip() {
        let mut s = MachineState::new();
        for (cell, v) in [
            (Cell::Reg(Reg::A3), 11u64),
            (Cell::Pc, 0x4000),
            (Cell::Mem(99), 123),
        ] {
            s.write_cell(cell, v);
            assert_eq!(s.read_cell(cell), v);
        }
    }

    #[test]
    fn apply_matches_write_cell() {
        let mut a = MachineState::new();
        let mut b = MachineState::new();
        let delta: Delta = [(Cell::Reg(Reg::T0), 5u64), (Cell::Mem(1), 6)]
            .into_iter()
            .collect();
        a.apply(&delta);
        for (c, v) in delta.iter() {
            b.write_cell(c, v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn apply_batch_equals_sequential_applies() {
        let mut d1 = Delta::new();
        d1.set(Cell::Reg(Reg::A0), 1);
        d1.set(Cell::Mem(3), 30);
        d1.set_bytes(Cell::Mem(4), 0xAA, 0x01);
        let mut d2 = Delta::new();
        d2.set(Cell::Reg(Reg::A0), 2); // overwrites d1's binding
        d2.set_bytes(Cell::Mem(4), 0xBB00, 0x02); // different byte of same word
        let mut d3 = Delta::new();
        d3.set(Cell::Mem(9), 90);

        let mut one_by_one = MachineState::new();
        one_by_one.store_word(4, 0x1122_3344);
        let mut batched = one_by_one.clone();
        for d in [&d1, &d2, &d3] {
            one_by_one.apply(d);
        }
        batched.apply_batch([&d1, &d2, &d3]);
        assert_eq!(one_by_one, batched);

        // Degenerate arities.
        let mut empty = MachineState::new();
        empty.apply_batch(std::iter::empty::<&Delta>());
        assert_eq!(empty, MachineState::new());
        let mut single = MachineState::new();
        single.apply_batch([&d1]);
        let mut direct = MachineState::new();
        direct.apply(&d1);
        assert_eq!(single, direct);
    }

    #[test]
    fn byte_helpers_little_endian_and_unaligned() {
        let mut s = MachineState::new();
        s.store_bytes(13, 4, 0xDDCC_BBAA);
        assert_eq!(s.load_bytes(13, 4), 0xDDCC_BBAA);
        assert_eq!(s.load_bytes(13, 1), 0xAA);
        assert_eq!(s.load_bytes(14, 1), 0xBB);
        // Crossing a word boundary.
        s.store_bytes(6, 8, 0x1122_3344_5566_7788);
        assert_eq!(s.load_bytes(6, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn recording_captures_writes_only() {
        let mut s = MachineState::new();
        let mut rec = Recording::new(&mut s);
        let _ = rec.load_word(4); // reads are not recorded
        rec.store_word(4, 9);
        rec.write_reg(Reg::A0, 3);
        rec.write_reg(Reg::ZERO, 8); // discarded
        let w = rec.into_writes();
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(Cell::Mem(4)), Some(9));
        assert_eq!(w.get(Cell::Reg(Reg::A0)), Some(3));
    }

    #[test]
    fn project_extracts_named_cells() {
        let mut s = MachineState::new();
        s.set_reg(Reg::A0, 1);
        s.store_word(2, 7);
        let d = s.project([Cell::Reg(Reg::A0), Cell::Mem(2), Cell::Mem(3)]);
        assert_eq!(d.get(Cell::Reg(Reg::A0)), Some(1));
        assert_eq!(d.get(Cell::Mem(2)), Some(7));
        assert_eq!(d.get(Cell::Mem(3)), Some(0));
    }
}
