//! The sequential reference machine — the paper's `SEQ` model.
//!
//! `SEQ` is the specification MSSP must be equivalent to: executing `n`
//! instructions from state `S` yields `seq(S, n)`. This module provides
//! both an ergonomic machine wrapper ([`SeqMachine`]) and the formal
//! functions [`seq_n`] and [`cumulative_writes`] (`Δ(S, n)`) used by the
//! equivalence tests.

use std::fmt;

use mssp_isa::Program;

use crate::{step, Delta, Fault, MachineState, Recording, StepInfo};

/// Why a sequential run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// The step limit was reached first.
    StepLimit,
}

/// Summary of a completed sequential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Error from a sequential run: the machine faulted.
///
/// A fault in `SEQ` indicates a malformed program (the reference semantics
/// are total otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqError {
    /// The fault encountered.
    pub fault: Fault,
    /// Instructions retired before the fault.
    pub instructions: u64,
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequential machine faulted after {} instructions: {}",
            self.instructions, self.fault
        )
    }
}

impl std::error::Error for SeqError {}

/// Error from [`SeqMachine::run_to_halt`]: the program either faulted or
/// exhausted its step budget without executing `halt`.
///
/// This is the typed replacement for the old "run N steps then panic"
/// pattern in test helpers: callers that *require* termination get a
/// value they can propagate or assert on instead of a panic deep in
/// library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltError {
    /// The machine faulted (a malformed program).
    Fault(SeqError),
    /// The step budget ran out before `halt`.
    DidNotHalt {
        /// Instructions retired within the budget.
        instructions: u64,
    },
}

impl fmt::Display for HaltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaltError::Fault(e) => write!(f, "{e}"),
            HaltError::DidNotHalt { instructions } => {
                write!(f, "program did not halt within {instructions} instructions")
            }
        }
    }
}

impl std::error::Error for HaltError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HaltError::Fault(e) => Some(e),
            HaltError::DidNotHalt { .. } => None,
        }
    }
}

/// A sequential machine: a [`MachineState`] bound to a [`Program`].
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_isa::Reg;
/// use mssp_machine::SeqMachine;
///
/// let p = assemble(
///     "main: addi a0, zero, 4
///      loop: addi a0, a0, -1
///            bnez a0, loop
///            halt",
/// ).unwrap();
/// let mut m = SeqMachine::boot(&p);
/// let summary = m.run(1_000).unwrap();
/// assert_eq!(m.state().reg(Reg::A0), 0);
/// assert_eq!(summary.instructions, 1 + 4 * 2); // halt itself does not retire
/// ```
#[derive(Debug, Clone)]
pub struct SeqMachine<'p> {
    program: &'p Program,
    state: MachineState,
    instructions: u64,
    halted: bool,
}

impl<'p> SeqMachine<'p> {
    /// Creates a machine booted at the program's entry point.
    #[must_use]
    pub fn boot(program: &'p Program) -> SeqMachine<'p> {
        SeqMachine {
            program,
            state: MachineState::boot(program),
            instructions: 0,
            halted: false,
        }
    }

    /// Creates a machine resuming from an arbitrary state (the state's PC
    /// is used as-is).
    #[must_use]
    pub fn resume(program: &'p Program, state: MachineState) -> SeqMachine<'p> {
        SeqMachine {
            program,
            state,
            instructions: 0,
            halted: false,
        }
    }

    /// The current machine state.
    #[must_use]
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Consumes the machine, returning its state.
    #[must_use]
    pub fn into_state(self) -> MachineState {
        self.state
    }

    /// Dynamic instructions retired so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults. Stepping a halted machine is a no-op
    /// returning the halt info again.
    pub fn step(&mut self) -> Result<StepInfo, Fault> {
        let pc = self.state.pc();
        let info = step(&mut self.state, self.program, pc)?;
        self.state.set_pc(info.next_pc);
        if info.halted {
            self.halted = true;
        } else {
            self.instructions += 1;
        }
        Ok(info)
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] if the machine faults.
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, SeqError> {
        self.run_observed(max_steps, |_| {})
    }

    /// Runs until `halt`, treating failure to halt within `max_steps` as
    /// an error — for callers that require termination.
    ///
    /// # Errors
    ///
    /// Returns [`HaltError::Fault`] if the machine faults and
    /// [`HaltError::DidNotHalt`] if the budget runs out first.
    pub fn run_to_halt(&mut self, max_steps: u64) -> Result<RunSummary, HaltError> {
        let summary = self.run(max_steps).map_err(HaltError::Fault)?;
        match summary.stop {
            StopReason::Halted => Ok(summary),
            StopReason::StepLimit => Err(HaltError::DidNotHalt {
                instructions: summary.instructions,
            }),
        }
    }

    /// Runs like [`SeqMachine::run`], invoking `observer` after every
    /// retired instruction — the hook the profiler and characterization
    /// experiments use.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] if the machine faults.
    pub fn run_observed(
        &mut self,
        max_steps: u64,
        mut observer: impl FnMut(&StepInfo),
    ) -> Result<RunSummary, SeqError> {
        let start = self.instructions;
        while !self.halted && self.instructions - start < max_steps {
            let info = self.step().map_err(|fault| SeqError {
                fault,
                instructions: self.instructions,
            })?;
            observer(&info);
            if info.halted {
                break;
            }
        }
        Ok(RunSummary {
            instructions: self.instructions - start,
            stop: if self.halted {
                StopReason::Halted
            } else {
                StopReason::StepLimit
            },
        })
    }
}

/// The formal `seq(S, n)`: the state after executing `n` instructions from
/// `S`. Executing past a `halt` is a fixpoint (the state stops changing),
/// mirroring the model's treatment of `seq` as total.
///
/// # Errors
///
/// Returns the fault if execution leaves the text segment.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_machine::{seq_n, MachineState};
///
/// let p = assemble("main: addi a0, a0, 1\n j main").unwrap();
/// let s0 = MachineState::boot(&p);
/// let s4 = seq_n(&p, s0.clone(), 4).unwrap();
/// assert_eq!(s4.reg(mssp_isa::Reg::A0), 2); // two addi + two jumps
/// ```
pub fn seq_n(program: &Program, state: MachineState, n: u64) -> Result<MachineState, Fault> {
    let mut m = SeqMachine::resume(program, state);
    for _ in 0..n {
        if m.halted() {
            break;
        }
        m.step()?;
    }
    Ok(m.into_state())
}

/// The formal cumulative-writes function `Δ(S, n)`: every cell written in
/// the first `n` steps from `S`, with its final value. PC is included as a
/// written cell on every step, mirroring the model where the program
/// counter is part of machine state.
///
/// # Errors
///
/// Returns the fault if execution leaves the text segment.
pub fn cumulative_writes(
    program: &Program,
    mut state: MachineState,
    n: u64,
) -> Result<Delta, Fault> {
    let mut writes = Delta::new();
    for _ in 0..n {
        let pc = state.pc();
        let info = {
            let mut rec = Recording::new(&mut state);
            let info = step(&mut rec, program, pc)?;
            writes.superimpose_in_place(rec.writes());
            info
        };
        if info.halted {
            break;
        }
        state.set_pc(info.next_pc);
        writes.set(crate::Cell::Pc, info.next_pc);
    }
    Ok(writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;

    #[test]
    fn run_to_halt_counts_instructions() {
        let p = assemble("main: addi a0, zero, 3\n addi a1, zero, 4\n halt").unwrap();
        let mut m = SeqMachine::boot(&p);
        let summary = m.run(100).unwrap();
        assert_eq!(summary.instructions, 2);
        assert_eq!(summary.stop, StopReason::Halted);
        assert!(m.halted());
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let p = assemble("main: j main").unwrap();
        let mut m = SeqMachine::boot(&p);
        let summary = m.run(50).unwrap();
        assert_eq!(summary.instructions, 50);
        assert_eq!(summary.stop, StopReason::StepLimit);
        assert!(!m.halted());
    }

    #[test]
    fn run_resumes_after_step_limit() {
        let p = assemble(
            "main: addi a0, zero, 6
             loop: addi a0, a0, -1
                   bnez a0, loop
                   halt",
        )
        .unwrap();
        let mut m = SeqMachine::boot(&p);
        let _ = m.run(3).unwrap();
        let _ = m.run(1_000).unwrap();
        assert!(m.halted());
        assert_eq!(m.state().reg(Reg::A0), 0);
    }

    #[test]
    fn lemma3_seq_equals_superimposed_cumulative_writes() {
        // seq(S, n) = S ← Δ(S, n) for a range of n.
        let p = assemble(
            "main: addi a0, zero, 8
                   li   a2, 0x300000
             loop: sd   a0, 0(a2)
                   addi a2, a2, 8
                   addi a0, a0, -1
                   bnez a0, loop
                   halt",
        )
        .unwrap();
        let s0 = MachineState::boot(&p);
        for n in [0u64, 1, 2, 5, 13, 100] {
            let direct = seq_n(&p, s0.clone(), n).unwrap();
            let delta = cumulative_writes(&p, s0.clone(), n).unwrap();
            let mut via_delta = s0.clone();
            via_delta.apply(&delta);
            assert_eq!(direct, via_delta, "Lemma 3 violated at n={n}");
        }
    }

    #[test]
    fn observer_sees_every_instruction() {
        let p = assemble("main: addi a0, zero, 2\n addi a0, a0, 2\n halt").unwrap();
        let mut m = SeqMachine::boot(&p);
        let mut pcs = Vec::new();
        m.run_observed(100, |info| pcs.push(info.pc)).unwrap();
        // Two instructions plus the halt observation.
        assert_eq!(pcs.len(), 3);
        assert_eq!(pcs[0], p.entry());
    }

    #[test]
    fn run_to_halt_reports_non_termination_as_typed_error() {
        let p = assemble("main: j main").unwrap();
        let mut m = SeqMachine::boot(&p);
        assert_eq!(
            m.run_to_halt(25),
            Err(HaltError::DidNotHalt { instructions: 25 })
        );
    }

    #[test]
    fn run_to_halt_propagates_faults_as_typed_error() {
        let p = assemble("main: li a0, 0x900000\n jalr ra, 0(a0)\n halt").unwrap();
        let mut m = SeqMachine::boot(&p);
        match m.run_to_halt(100) {
            Err(HaltError::Fault(e)) => assert_eq!(e.fault, Fault::IllegalPc(0x900000)),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn run_to_halt_succeeds_on_terminating_programs() {
        let p = assemble("main: addi a0, zero, 3\n halt").unwrap();
        let mut m = SeqMachine::boot(&p);
        let summary = m.run_to_halt(100).unwrap();
        assert_eq!(summary.stop, StopReason::Halted);
    }

    #[test]
    fn fault_is_reported_with_progress() {
        // jalr to a wild address.
        let p = assemble("main: li a0, 0x900000\n jalr ra, 0(a0)\n halt").unwrap();
        let mut m = SeqMachine::boot(&p);
        let err = m.run(100).unwrap_err();
        assert_eq!(err.fault, Fault::IllegalPc(0x900000));
    }
}
