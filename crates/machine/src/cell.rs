//! Storage cells: the addressable units of machine state.
//!
//! The formal MSSP model treats a machine state as a partial map from
//! *cells* to values. This crate uses three kinds of cell:
//!
//! * one per general-purpose register,
//! * one per aligned 64-bit memory word (the unit at which the MSSP
//!   verify/commit hardware checks live-ins — the paper's implementation
//!   likewise verified at a fixed sub-line granularity rather than per
//!   byte), and
//! * the program counter.
//!
//! Program text is immutable in this model and therefore not part of the
//! mutable cell space (self-modifying code is out of scope, as in the
//! paper's evaluation).

use std::fmt;

use mssp_isa::Reg;

/// An addressable unit of machine state.
///
/// Memory cells are identified by *word index*: byte address divided by 8.
/// Sub-word accesses read and write the containing word(s), which is also
/// the granularity at which live-ins are recorded and verified.
///
/// # Examples
///
/// ```
/// use mssp_machine::Cell;
/// use mssp_isa::Reg;
///
/// let c = Cell::mem_at(0x1008);
/// assert_eq!(c, Cell::Mem(0x201));
/// assert!(Cell::Reg(Reg::A0) < Cell::Mem(0)); // registers order first
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// A general-purpose register.
    Reg(Reg),
    /// The program counter.
    Pc,
    /// An aligned 64-bit memory word, identified by `byte_address / 8`.
    Mem(u64),
}

impl Cell {
    /// The memory cell containing byte address `addr`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_machine::Cell;
    /// assert_eq!(Cell::mem_at(0), Cell::Mem(0));
    /// assert_eq!(Cell::mem_at(7), Cell::Mem(0));
    /// assert_eq!(Cell::mem_at(8), Cell::Mem(1));
    /// ```
    #[must_use]
    pub fn mem_at(addr: u64) -> Cell {
        Cell::Mem(addr >> 3)
    }

    /// Whether this cell is a memory word.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Cell::Mem(_))
    }

    /// Whether this cell is a register.
    #[must_use]
    pub fn is_reg(self) -> bool {
        matches!(self, Cell::Reg(_))
    }

    /// The first byte address covered by a memory cell, or `None` for
    /// non-memory cells.
    ///
    /// # Examples
    ///
    /// ```
    /// use mssp_machine::Cell;
    /// assert_eq!(Cell::Mem(2).byte_addr(), Some(16));
    /// assert_eq!(Cell::Pc.byte_addr(), None);
    /// ```
    #[must_use]
    pub fn byte_addr(self) -> Option<u64> {
        match self {
            Cell::Mem(w) => Some(w << 3),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Reg(r) => write!(f, "{r}"),
            Cell::Pc => f.write_str("pc"),
            Cell::Mem(w) => write!(f, "[{:#x}]", w << 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_at_floors_to_word() {
        for b in 0..8 {
            assert_eq!(Cell::mem_at(0x100 + b), Cell::Mem(0x20));
        }
    }

    #[test]
    fn byte_addr_inverts_mem_at() {
        let c = Cell::mem_at(0x1238);
        assert_eq!(c.byte_addr(), Some(0x1238));
    }

    #[test]
    fn ordering_groups_registers_before_memory() {
        assert!(Cell::Reg(Reg::S11) < Cell::Pc);
        assert!(Cell::Pc < Cell::Mem(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cell::Reg(Reg::A0).to_string(), "a0");
        assert_eq!(Cell::Pc.to_string(), "pc");
        assert_eq!(Cell::Mem(2).to_string(), "[0x10]");
    }
}
